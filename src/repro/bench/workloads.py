"""Workload generators.

The paper's evaluation object is deliberately plain: "a list with 1000
objects (all with the same size)", where the measured method "performs an
access to a variable of the object, so it is not an empty method".
:class:`PayloadNode` reproduces that object: a linked-list node carrying
a byte payload that sets its serialized size.

Trees and meshes are provided for tests and ablations beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.obicomp import compile_class
from repro.serial.measure import encoded_size


@compile_class
class PayloadNode:
    """A linked-list node of configurable wire size (the paper's object)."""

    def __init__(self, index: int = 0, payload: bytes = b"", nxt: "PayloadNode | None" = None):
        self.index = index
        self.payload = payload
        self.next = nxt

    def get_index(self) -> int:
        """The measured method: reads a field (paper footnote 4)."""
        return self.index

    def get_next(self) -> "PayloadNode | None":
        return self.next

    def set_payload(self, payload: bytes) -> None:
        self.payload = payload

    def payload_size(self) -> int:
        return len(self.payload)


@compile_class
class TreeNode:
    """A binary-tree node, for graph-shaped tests and ablations."""

    def __init__(self, index: int = 0, payload: bytes = b""):
        self.index = index
        self.payload = payload
        self.left: "TreeNode | None" = None
        self.right: "TreeNode | None" = None

    def get_index(self) -> int:
        return self.index

    def get_left(self) -> "TreeNode | None":
        return self.left

    def get_right(self) -> "TreeNode | None":
        return self.right


@dataclass(frozen=True, slots=True)
class ListSpec:
    """Parameters of a list workload."""

    length: int
    object_size: int

    def __str__(self) -> str:
        return f"{self.length} objects x {self.object_size} B"


def payload_for_size(object_size: int) -> bytes:
    """A payload that makes one ``PayloadNode`` serialize to roughly
    ``object_size`` bytes.

    The node's fixed fields (index, id, reference envelope) cost a few
    tens of bytes; the payload absorbs the rest.  Sizes smaller than the
    fixed overhead get an empty payload — the paper's 64-byte objects are
    near the envelope floor in Java serialization too.
    """
    overhead = _node_overhead()
    return b"\xa5" * max(0, object_size - overhead)


_NODE_OVERHEAD_CACHE: list[int] = []


def _node_overhead() -> int:
    if not _NODE_OVERHEAD_CACHE:
        from repro.core.meta import obi_id_of

        probe = PayloadNode(index=1, payload=b"")
        obi_id_of(probe)
        _NODE_OVERHEAD_CACHE.append(encoded_size(probe))
    return _NODE_OVERHEAD_CACHE[0]


def make_linked_list(spec: ListSpec) -> PayloadNode:
    """Build the paper's list workload; returns the head node."""
    payload = payload_for_size(spec.object_size)
    head: PayloadNode | None = None
    for index in range(spec.length - 1, -1, -1):
        head = PayloadNode(index=index, payload=bytes(payload), nxt=head)
    assert head is not None
    return head


def make_tree(depth: int, object_size: int = 64) -> TreeNode:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    payload = payload_for_size(object_size)
    counter = [0]

    def build(level: int) -> TreeNode:
        node = TreeNode(index=counter[0], payload=bytes(payload))
        counter[0] += 1
        if level < depth:
            node.left = build(level + 1)
            node.right = build(level + 1)
        return node

    return build(0)


def list_values_sum(length: int) -> int:
    """The expected sum of ``get_index`` over a full list traversal."""
    return length * (length - 1) // 2
