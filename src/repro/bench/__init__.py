"""Benchmark harness: regenerate every figure of the paper's evaluation.

The paper's Section 4 contains three experiments plus two anchor
measurements; each has a regenerator here (see DESIGN.md Section 4 for
the experiment index):

* **E1 / anchors** — LMI = 2 µs, RMI = 2.8 ms
  (:func:`~repro.bench.figures.experiment_anchors`);
* **E2 / Figure 4** — RMI vs LMI total cost against invocation count for
  five object sizes (:func:`~repro.bench.figures.fig4_series`);
* **E3 / Figure 5** — incremental replication of a 1000-object list,
  per-object proxy pairs, six chunk sizes, three object sizes
  (:func:`~repro.bench.figures.fig5_series`);
* **E4 / Figure 6** — the same sweep with clustering
  (:func:`~repro.bench.figures.fig6_series`).

All runs use the loopback transport on simulated time with the
calibrated cost model, so the output is deterministic.  The CLI prints
paper-style tables and ASCII plots::

    python -m repro.bench anchors
    python -m repro.bench fig4
    python -m repro.bench fig5
    python -m repro.bench fig6
    python -m repro.bench ablate-proxy | ablate-prefetch | ablate-consistency | ablate-transport
    python -m repro.bench all
"""

from repro.bench.figures import (
    experiment_anchors,
    fig4_series,
    fig5_series,
    fig6_series,
)
from repro.bench.harness import (
    FIG4_INVOCATIONS,
    FIG4_SIZES,
    FIG56_CHUNKS,
    FIG56_LIST_LENGTH,
    FIG56_SIZES,
    Series,
)
from repro.bench.workloads import ListSpec, make_linked_list, make_tree

__all__ = [
    "experiment_anchors",
    "fig4_series",
    "fig5_series",
    "fig6_series",
    "Series",
    "FIG4_SIZES",
    "FIG4_INVOCATIONS",
    "FIG56_SIZES",
    "FIG56_CHUNKS",
    "FIG56_LIST_LENGTH",
    "ListSpec",
    "make_linked_list",
    "make_tree",
]
