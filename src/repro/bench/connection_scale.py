"""PR-9 experiment: how many consumers can one provider site hold?

Two phases, both against a single provider site running a trivial echo
handler over real loopback TCP:

* **sustain** (reactor only) — open N multiplexed consumer channels
  (default 5,000, ``OBIWAN_CONNECTION_SCALE`` overrides), pipeline one
  request down every one of them, and hold them all open while the
  requests complete.  The thread-per-connection backend cannot play this
  game at all: N connections would cost N serving threads before the
  first byte moves.
* **race** (reactor vs threaded) — N consumers (default 1,000,
  ``OBIWAN_CONNECTION_RACE`` overrides) each put
  ``REQUESTS_PER_CONSUMER`` echo requests in flight *concurrently*, the
  ``invoke_batch``-style fan-out the pipelined wire exists for.  The
  threaded backend can only express R in-flight requests as R blocking
  threads each holding its own pooled socket, with a serving thread per
  accepted connection on the far side.  The reactor submits every
  request as a pipelined future from one thread — R correlation ids
  share one channel per consumer, and no side of the wire spends a
  thread per connection.  The acceptance claim is a >= 3x wall-clock
  win for the reactor.

Wall time is measured with ``time.perf_counter`` because both phases
run real sockets and real threads — there is no simulated clock to
read.  The file-descriptor soft limit is raised (within the hard limit)
before the sustain phase; two fds per held connection.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.simnet.reactor import ReactorNetwork
from repro.simnet.tcp import TcpNetwork
from repro.util.clock import WallClock

DEFAULT_SUSTAIN_CONNECTIONS = 5000
DEFAULT_RACE_CONNECTIONS = 1000
REQUESTS_PER_CONSUMER = 8
#: Wall-clock trials per backend; the report keeps each backend's best
#: (minimum) time, the usual least-scheduler-noise estimate.
RACE_TRIALS = 3
SCALE_ENV = "OBIWAN_CONNECTION_SCALE"
RACE_ENV = "OBIWAN_CONNECTION_RACE"
#: Per-request timeout; generous because the threaded race deliberately
#: convoys a thousand threads through one accept loop.
TIMEOUT = 120.0


def _echo(message):
    return b"ok:" + message.payload


def _raise_fd_limit(needed: int) -> None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))


@dataclass(frozen=True, slots=True)
class SustainPoint:
    """One provider holding every consumer channel open at once."""

    connections: int
    accepted: int
    open_at_peak: int
    wall_ms: float
    frames_pipelined: int
    loop_lag_max_ms: float


@dataclass(frozen=True, slots=True)
class RacePoint:
    """Reactor vs thread-per-connection on the same echo workload."""

    connections: int
    requests_per_consumer: int
    threaded_ms: float
    reactor_ms: float
    speedup: float


@dataclass(frozen=True, slots=True)
class ConnectionScaleReport:
    """The PR-9 acceptance numbers."""

    sustain: SustainPoint
    race: RacePoint

    def jsonable(self) -> dict:
        return {
            "experiment": "connection_scale",
            "sustain": {
                "connections": self.sustain.connections,
                "accepted": self.sustain.accepted,
                "open_at_peak": self.sustain.open_at_peak,
                "wall_ms": round(self.sustain.wall_ms, 1),
                "frames_pipelined": self.sustain.frames_pipelined,
                "loop_lag_max_ms": round(self.sustain.loop_lag_max_ms, 3),
            },
            "race": {
                "connections": self.race.connections,
                "requests_per_consumer": self.race.requests_per_consumer,
                "threaded_ms": round(self.race.threaded_ms, 1),
                "reactor_ms": round(self.race.reactor_ms, 1),
                "speedup": round(self.race.speedup, 3),
            },
        }


def sustain_run(connections: int = DEFAULT_SUSTAIN_CONNECTIONS) -> SustainPoint:
    """Hold ``connections`` consumer channels open against one provider."""
    _raise_fd_limit(2 * connections + 256)
    net = ReactorNetwork(WallClock(), timeout=TIMEOUT)
    try:
        net.attach("provider", _echo)
        # One up-front call settles the pipelining verdict for the site, so
        # every consumer below goes straight to a multiplexed channel.  The
        # consumers themselves stay unattached: submit() needs no return
        # listener, which is exactly how a mobile consumer behind NAT-ish
        # conditions would drive a provider.
        net.attach("warmup", _echo)
        net.call("warmup", "provider", b"hello")
        start = time.perf_counter()  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        replies = [
            net.submit(f"consumer-{i}", "provider", b"ping", timeout=TIMEOUT)
            for i in range(connections)
        ]
        for reply in replies:
            assert reply.result(TIMEOUT) == b"ok:ping"
        wall_ms = (time.perf_counter() - start) * 1000.0  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        stats = net.reactor_stats.snapshot()
        return SustainPoint(
            connections=connections,
            # the warmup consumer's channel and the legacy probe carrier
            # are also in these counters; claims use >= on purpose
            accepted=int(stats["connections_accepted"]),
            open_at_peak=int(stats["connections_high_water"]),
            wall_ms=wall_ms,
            frames_pipelined=int(stats["frames_pipelined"]),
            loop_lag_max_ms=stats["loop_lag_max_s"] * 1000.0,
        )
    finally:
        net.close()


def _race_threaded(connections: int, requests: int) -> float:
    """A blocking thread per in-flight request — the seed's only way to
    keep ``requests`` concurrent round trips outstanding per consumer."""
    net = TcpNetwork(WallClock(), timeout=TIMEOUT)
    try:
        net.attach("provider", _echo)
        # One consumer site id is enough: TcpNetwork pools sockets per
        # destination, so concurrent blocking calls each hold their own
        # connection — the in-flight count, not the site id, drives the
        # connection count here.
        net.attach("driver", _echo)
        barrier = threading.Barrier(connections * requests + 1)
        failures: list[BaseException] = []

        def one_request(index: int, seq: int) -> None:
            barrier.wait()
            try:
                payload = b"c%d:%d" % (index, seq)
                assert net.call("driver", "provider", payload) == (
                    b"ok:" + payload
                )
            except BaseException as exc:  # obilint: disable=OBI107 -- collected and re-raised on the bench thread below
                failures.append(exc)

        pool = [
            threading.Thread(
                target=one_request, args=(i, j), name=f"race-threaded-{i}-{j}"
            )
            for i in range(connections)
            for j in range(requests)
        ]
        # Threads are created (and parked on the barrier) before the clock
        # starts — generous to the threaded side, whose per-request thread
        # spawn is real issuance cost the reactor never pays.  The barrier
        # is the point of the workload: all in-flight requests really are
        # concurrent, exactly what the reactor holds as correlation ids.
        for thread in pool:
            thread.start()
        barrier.wait()
        start = time.perf_counter()  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        if failures:
            raise failures[0]
        return elapsed * 1000.0
    finally:
        net.close()


def _race_reactor(connections: int, requests: int) -> float:
    """Every request a pipelined future; no per-connection threads."""
    net = ReactorNetwork(WallClock(), timeout=TIMEOUT)
    try:
        net.attach("provider", _echo)
        net.attach("warmup", _echo)
        net.call("warmup", "provider", b"hello")  # settle the verdict
        start = time.perf_counter()  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        replies = []
        for index in range(connections):
            for seq in range(requests):
                payload = b"c%d:%d" % (index, seq)
                replies.append(
                    (payload, net.submit(f"consumer-{index}", "provider", payload, timeout=TIMEOUT))
                )
        for payload, reply in replies:
            assert reply.result(TIMEOUT) == b"ok:" + payload
        elapsed = time.perf_counter() - start  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        return elapsed * 1000.0
    finally:
        net.close()


def race_run(
    connections: int = DEFAULT_RACE_CONNECTIONS,
    requests: int = REQUESTS_PER_CONSUMER,
) -> RacePoint:
    _raise_fd_limit(2 * connections * requests + 256)
    threaded_ms = min(
        _race_threaded(connections, requests) for _ in range(RACE_TRIALS)
    )
    reactor_ms = min(
        _race_reactor(connections, requests) for _ in range(RACE_TRIALS)
    )
    return RacePoint(
        connections=connections,
        requests_per_consumer=requests,
        threaded_ms=threaded_ms,
        reactor_ms=reactor_ms,
        speedup=threaded_ms / reactor_ms if reactor_ms else float("inf"),
    )


def connection_scale_report(
    sustain_connections: int | None = None,
    race_connections: int | None = None,
) -> ConnectionScaleReport:
    """Run both phases; env knobs shrink them for CI smoke runs."""
    if sustain_connections is None:
        sustain_connections = int(os.environ.get(SCALE_ENV, DEFAULT_SUSTAIN_CONNECTIONS))
    if race_connections is None:
        race_connections = int(os.environ.get(RACE_ENV, DEFAULT_RACE_CONNECTIONS))
    return ConnectionScaleReport(
        sustain=sustain_run(sustain_connections),
        race=race_run(race_connections),
    )
