"""Access-strategy study: when is which invocation mode the right call?

The paper's thesis is that the *application* should choose, at run
time, between remote invocation and replication — because neither
dominates.  This study makes that quantitative on synthetic
collaborative sessions: a workspace of documents, a session of skewed
reads/writes, and three strategies an application could adopt:

* ``rmi-only`` — every operation is a remote invocation;
* ``replicate-on-use`` — replicate a document on first touch, work
  locally, push writes immediately;
* ``hoard-all`` — replicate the whole workspace up front, work locally,
  push writes immediately.

With skewed access (a Zipf-ish distribution), short sessions favour
RMI, long sessions favour replication, and hoard-all only pays off when
the session actually touches most of the workspace — the crossovers the
paper argues applications must be free to pick per situation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.workloads import PayloadNode, payload_for_size
from repro.core.runtime import World
from repro.simnet.link import LAN_10MBPS, Link


@dataclass(frozen=True, slots=True)
class SessionSpec:
    """A synthetic collaborative session."""

    documents: int = 40
    operations: int = 200
    write_ratio: float = 0.2
    document_size: int = 2048
    #: Zipf-like skew: probability mass concentrates on few documents.
    skew: float = 1.2
    seed: int = 7


@dataclass
class StrategyResult:
    strategy: str
    simulated_ms: float
    network_bytes: int
    documents_touched: int
    documents_moved: int


def generate_session(spec: SessionSpec) -> list[tuple[int, str]]:
    """(document index, 'read' | 'write') per operation, deterministic."""
    rng = random.Random(spec.seed)
    weights = [1.0 / (rank + 1) ** spec.skew for rank in range(spec.documents)]
    ops = []
    for _ in range(spec.operations):
        doc = rng.choices(range(spec.documents), weights=weights)[0]
        kind = "write" if rng.random() < spec.write_ratio else "read"
        ops.append((doc, kind))
    return ops


def _workspace(spec: SessionSpec, link: Link) -> tuple[World, object, object]:
    world = World.loopback(link=link)
    server = world.create_site("server")
    client = world.create_site("client")
    payload = payload_for_size(spec.document_size)
    for index in range(spec.documents):
        server.export(PayloadNode(index=index, payload=payload), name=f"doc:{index}")
    return world, server, client


def run_strategy(
    strategy: str, spec: SessionSpec, *, link: Link = LAN_10MBPS
) -> StrategyResult:
    """Replay the session under one strategy; returns cost and coverage."""
    ops = generate_session(spec)
    world, _server, client = _workspace(spec, link)
    stats = world.network.stats
    touched: set[int] = set()
    moved: set[int] = set()
    start = world.clock.now()
    bytes_before = stats.total_bytes

    if strategy == "rmi-only":
        stubs: dict[int, object] = {}
        for doc, kind in ops:
            touched.add(doc)
            stub = stubs.get(doc)
            if stub is None:
                stub = client.remote_stub(f"doc:{doc}")
                stubs[doc] = stub
            if kind == "read":
                stub.get_index()
            else:
                stub.set_payload(b"w" * 32)

    elif strategy == "replicate-on-use":
        replicas: dict[int, object] = {}
        for doc, kind in ops:
            touched.add(doc)
            replica = replicas.get(doc)
            if replica is None:
                replica = client.replicate(f"doc:{doc}")
                replicas[doc] = replica
                moved.add(doc)
            if kind == "read":
                client.invoke_local(replica, "get_index")
            else:
                client.invoke_local(replica, "set_payload", b"w" * 32)
                client.put_back(replica)

    elif strategy == "hoard-all":
        replicas = {
            index: client.replicate(f"doc:{index}") for index in range(spec.documents)
        }
        moved.update(replicas)
        for doc, kind in ops:
            touched.add(doc)
            replica = replicas[doc]
            if kind == "read":
                client.invoke_local(replica, "get_index")
            else:
                client.invoke_local(replica, "set_payload", b"w" * 32)
                client.put_back(replica)

    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    result = StrategyResult(
        strategy=strategy,
        simulated_ms=(world.clock.now() - start) * 1e3,
        network_bytes=stats.total_bytes - bytes_before,
        documents_touched=len(touched),
        documents_moved=len(moved),
    )
    world.close()
    return result


STRATEGIES = ("rmi-only", "replicate-on-use", "hoard-all")


def strategy_study(spec: SessionSpec | None = None) -> list[StrategyResult]:
    """All strategies on one session spec."""
    spec = spec if spec is not None else SessionSpec()
    return [run_strategy(name, spec) for name in STRATEGIES]


def session_length_sweep(
    lengths: tuple[int, ...] = (5, 20, 100, 500), base: SessionSpec | None = None
) -> dict[int, list[StrategyResult]]:
    """How the winner changes with session length."""
    base = base if base is not None else SessionSpec()
    sweep = {}
    for length in lengths:
        spec = SessionSpec(
            documents=base.documents,
            operations=length,
            write_ratio=base.write_ratio,
            document_size=base.document_size,
            skew=base.skew,
            seed=base.seed,
        )
        sweep[length] = strategy_study(spec)
    return sweep
