"""Result recording: persist benchmark output next to the repo.

``python -m repro.bench all`` writes one JSON file per experiment under
``results/`` so EXPERIMENTS.md numbers can be regenerated and diffed.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Default output directory, resolved relative to the working directory.
RESULTS_DIR = Path("results")


def save_json(name: str, data: object, *, directory: Path | None = None) -> Path:
    """Write ``data`` as ``<directory>/<name>.json``; returns the path."""
    target_dir = directory if directory is not None else RESULTS_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return path


def series_to_jsonable(series) -> dict:
    """Flatten a :class:`~repro.bench.harness.Series` for JSON."""
    return {"label": series.label, "points": series.points}
