"""Figure regenerators and the paper's qualitative claims.

Each ``figN_series`` function returns the curves of the corresponding
paper figure, computed on simulated time.  The ``claims_*`` helpers
extract the statements the paper draws from each figure so the benchmark
tests can assert that our reproduction preserves them (shape fidelity,
per DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import (
    FIG4_INVOCATIONS,
    FIG4_SIZES,
    FIG56_CHUNKS,
    FIG56_LIST_LENGTH,
    FIG56_SIZES,
    Series,
    fresh_world,
    run_fig5_cell,
    run_fig6_cell,
    run_lmi_invocations,
    run_rmi_invocations,
)


# ----------------------------------------------------------------------
# E1: the anchor measurements of Section 4.1
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AnchorResults:
    """LMI / RMI single-invocation costs (paper: 2 µs and 2.8 ms)."""

    lmi_seconds: float
    rmi_seconds: float

    @property
    def lmi_microseconds(self) -> float:
        return self.lmi_seconds * 1e6

    @property
    def rmi_milliseconds(self) -> float:
        return self.rmi_seconds * 1e3


def experiment_anchors() -> AnchorResults:
    """Measure one LMI and one minimal RMI on simulated time."""
    from repro.bench.workloads import PayloadNode

    world, provider, consumer = fresh_world()
    node = PayloadNode(index=1)
    provider.export(node, name="anchor")

    replica = consumer.replicate("anchor")
    start = world.clock.now()
    consumer.invoke_local(replica, "get_index")
    lmi = world.clock.now() - start

    stub = consumer.remote_stub("anchor")
    start = world.clock.now()
    stub.get_index()
    rmi = world.clock.now() - start
    return AnchorResults(lmi_seconds=lmi, rmi_seconds=rmi)


# ----------------------------------------------------------------------
# E2: Figure 4 — RMI vs LMI
# ----------------------------------------------------------------------
def fig4_series(
    sizes: tuple[int, ...] = FIG4_SIZES,
    invocations: tuple[int, ...] = FIG4_INVOCATIONS,
) -> dict[str, Series]:
    """All Figure 4 curves: one RMI curve plus one LMI curve per size.

    The paper plots RMI once because "with RMI, the object size has no
    influence on the invocations time".
    """
    max_n = max(invocations)
    curves: dict[str, Series] = {}

    rmi_full = run_rmi_invocations(sizes[0], max_n)
    curves["RMI"] = _sample(rmi_full, invocations, label="RMI")

    for size in sizes:
        lmi_full = run_lmi_invocations(size, max_n)
        curves[f"LMI {size}"] = _sample(lmi_full, invocations, label=f"LMI {size}")
    return curves


def crossover_invocations(curves: dict[str, Series], size: int) -> float | None:
    """The smallest sampled invocation count where LMI beats RMI."""
    rmi = curves["RMI"]
    lmi = curves[f"LMI {size}"]
    for x in rmi.xs:
        if lmi.at(x) < rmi.at(x):
            return x
    return None


# ----------------------------------------------------------------------
# E3/E4: Figures 5 and 6
# ----------------------------------------------------------------------
def fig5_series(
    sizes: tuple[int, ...] = FIG56_SIZES,
    chunks: tuple[int, ...] = FIG56_CHUNKS,
    length: int = FIG56_LIST_LENGTH,
) -> dict[int, dict[int, Series]]:
    """Figure 5: ``{object_size: {chunk: series}}``, per-object pairs."""
    return {
        size: {chunk: run_fig5_cell(size, chunk, length) for chunk in chunks}
        for size in sizes
    }


def fig6_series(
    sizes: tuple[int, ...] = FIG56_SIZES,
    chunks: tuple[int, ...] = FIG56_CHUNKS,
    length: int = FIG56_LIST_LENGTH,
) -> dict[int, dict[int, Series]]:
    """Figure 6: the same sweep, clustered (one proxy pair per fetch)."""
    return {
        size: {chunk: run_fig6_cell(size, chunk, length) for chunk in chunks}
        for size in sizes
    }


def total_times_ms(panel: dict[int, Series]) -> dict[int, float]:
    """Chunk → total traversal time (the curves' right-hand ends)."""
    return {chunk: series.final_ms() for chunk, series in panel.items()}


def spread_ratio(panel: dict[int, Series]) -> float:
    """max/min total time across chunk sizes."""
    totals = list(total_times_ms(panel).values())
    return max(totals) / min(totals)


def spread_absolute_ms(panel: dict[int, Series]) -> float:
    """max - min total time across chunk sizes, in ms — Figure 6's
    'the curves are closer' claim is about this visual distance."""
    totals = list(total_times_ms(panel).values())
    return max(totals) - min(totals)


def staircase_step_count(series: Series, *, min_jump_ms: float) -> int:
    """Number of visible steps (jumps ≥ ``min_jump_ms``) in a curve —
    the paper: "the steps observed are due to the creation and
    transference of replicas along with the proxy pairs"."""
    ys = series.ys_ms
    return sum(1 for a, b in zip(ys, ys[1:]) if b - a >= min_jump_ms)


def _sample(full: Series, xs: tuple[int, ...], *, label: str) -> Series:
    sampled = Series(label=label)
    want = set(xs)
    for x, y in full.points:
        if x in want:
            sampled.points.append((x, y))
    return sampled
