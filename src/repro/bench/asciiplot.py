"""ASCII rendering of benchmark output: tables and line plots.

Good enough to eyeball the paper's figure shapes in a terminal or in
``bench_output.txt`` — staircases, crossovers and curve spreads are all
visible.
"""

from __future__ import annotations

from repro.bench.harness import Series


def render_table(headers: list[str], rows: list[list[object]]) -> str:
    """A boxless fixed-width table."""
    columns = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(row[i])) for row in columns) for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row[i]).rjust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def render_plot(
    series_list: list[Series],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "invocations",
    y_label: str = "time (ms)",
) -> str:
    """Plot several curves on shared axes with one glyph per curve."""
    glyphs = "*o+x#@%&"
    xs = [x for s in series_list for x in s.xs]
    ys = [y for s in series_list for y in s.ys_ms]
    if not xs:
        return "(no data)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = 0.0, max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        col = 0 if x_max == x_min else int((x - x_min) / (x_max - x_min) * (width - 1))
        row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
        grid[row][col] = glyph

    for index, series in enumerate(series_list):
        glyph = glyphs[index % len(glyphs)]
        for x, y in series.points:
            place(x, y, glyph)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  (top = {y_max:.1f} ms)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {s.label}" for i, s in enumerate(series_list)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
