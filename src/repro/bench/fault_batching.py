"""PR-2 experiment: batched demand & read-ahead prefetch on the list walk.

Replays the paper's Figure-5 workload (a 1000-object linked list,
chunk-1 incremental replication) twice — once demand-driven exactly as
the paper describes it, once with the ``prefetch`` knob on — and counts
what the fast path actually saves: demand round trips, simulated wall
clock, and bytes moved.  Round trips come from the network stats, not
from instrumentation inside the fault path, so the numbers hold the
resolver honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import ListSpec, list_values_sum, make_linked_list
from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from repro.simnet.link import LAN_10MBPS, Link

#: The acceptance configuration: read ahead 16 objects per demand.
DEFAULT_PREFETCH = 16
DEFAULT_LENGTH = 1000
DEFAULT_OBJECT_SIZE = 64


@dataclass(frozen=True, slots=True)
class WalkResult:
    """One full list traversal, measured."""

    label: str
    prefetch: int
    #: Demand round trips taken by faults (excludes the initial replicate).
    fault_round_trips: int
    #: All request messages consumer→provider, replicate included.
    total_round_trips: int
    wall_clock_ms: float
    bytes_sent: int
    bytes_received: int
    demands_batched: int
    prefetch_hits: int

    def jsonable(self) -> dict:
        return {
            "label": self.label,
            "prefetch": self.prefetch,
            "fault_round_trips": self.fault_round_trips,
            "total_round_trips": self.total_round_trips,
            "wall_clock_ms": round(self.wall_clock_ms, 3),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "demands_batched": self.demands_batched,
            "prefetch_hits": self.prefetch_hits,
        }


def run_walk(
    prefetch: int,
    *,
    length: int = DEFAULT_LENGTH,
    object_size: int = DEFAULT_OBJECT_SIZE,
    link: Link = LAN_10MBPS,
    compiled_codec: bool = False,
) -> WalkResult:
    """Traverse the full list under chunk-1 incremental replication.

    ``compiled_codec`` turns on obicodec negotiation on both sites.  The
    list node carries an object reference, so its frames stay reflective
    either way — the knob measures pure negotiation overhead here (the
    widened mode tuple on each demand), which PR 7 requires to be noise.
    """
    world = World.loopback(link=link)
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.compiled_codec = compiled_codec
    consumer.compiled_codec = compiled_codec
    provider.export(make_linked_list(ListSpec(length, object_size)), name="list")

    stats = world.network.stats
    start = world.clock.now()
    node: object = consumer.replicate("list", mode=Incremental(1, prefetch=prefetch))
    after_replicate = stats.link(consumer.name, provider.name).messages
    total = 0
    while node is not None:
        total += consumer.invoke_local(node, "get_index")
        node = consumer.invoke_local(node, "get_next")
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    elapsed_ms = (world.clock.now() - start) * 1e3
    if total != list_values_sum(length):
        raise AssertionError(f"traversal sum {total} wrong for length {length}")

    outbound = stats.link(consumer.name, provider.name)
    inbound = stats.link(provider.name, consumer.name)
    world.close()
    return WalkResult(
        label=f"prefetch={prefetch}" if prefetch else "demand-driven",
        prefetch=prefetch,
        fault_round_trips=outbound.messages - after_replicate,
        total_round_trips=outbound.messages,
        wall_clock_ms=elapsed_ms,
        bytes_sent=outbound.bytes,
        bytes_received=inbound.bytes,
        demands_batched=consumer.fault_stats.demands_batched,
        prefetch_hits=consumer.fault_stats.prefetch_hits,
    )


def fault_batching_report(
    prefetch: int = DEFAULT_PREFETCH,
    *,
    length: int = DEFAULT_LENGTH,
    object_size: int = DEFAULT_OBJECT_SIZE,
    compiled_codec: bool = False,
) -> dict:
    """Before/after comparison for the PR-2 acceptance numbers."""
    baseline = run_walk(
        0, length=length, object_size=object_size, compiled_codec=compiled_codec
    )
    batched = run_walk(
        prefetch, length=length, object_size=object_size, compiled_codec=compiled_codec
    )
    return {
        "workload": f"{length} objects x {object_size} B, chunk 1",
        "baseline": baseline.jsonable(),
        "prefetch": batched.jsonable(),
        "round_trip_reduction": round(
            baseline.fault_round_trips / max(1, batched.fault_round_trips), 2
        ),
        "wall_clock_speedup": round(
            baseline.wall_clock_ms / max(1e-9, batched.wall_clock_ms), 2
        ),
    }
