"""Benchmark CLI: ``python -m repro.bench <command>``.

Commands: ``anchors``, ``fig4``, ``fig5``, ``fig6``, ``ablate-proxy``,
``ablate-prefetch``, ``ablate-consistency``, ``ablate-transport``,
``all``.  Each prints the paper-style rows (and an ASCII plot where the
paper has a chart) and saves JSON under ``results/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import ablations
from repro.bench.asciiplot import render_plot, render_table
from repro.bench.figures import (
    crossover_invocations,
    experiment_anchors,
    fig4_series,
    fig5_series,
    fig6_series,
    total_times_ms,
)
from repro.bench.harness import FIG4_SIZES, FIG56_CHUNKS
from repro.bench.record import save_json, series_to_jsonable
from repro.util.sizes import format_bytes


def cmd_anchors() -> None:
    anchors = experiment_anchors()
    print("E1 — Section 4.1 anchor measurements")
    print(
        render_table(
            ["metric", "paper", "measured (simulated)"],
            [
                ["LMI (one invocation)", "2 us", f"{anchors.lmi_microseconds:.2f} us"],
                ["RMI (round trip)", "2.8 ms", f"{anchors.rmi_milliseconds:.3f} ms"],
            ],
        )
    )
    save_json(
        "anchors",
        {"lmi_us": anchors.lmi_microseconds, "rmi_ms": anchors.rmi_milliseconds},
    )


def cmd_fig4() -> None:
    curves = fig4_series()
    print("E2 — Figure 4: RMI vs LMI (totals include replica creation + put-back)")
    headers = ["invocations", "RMI (ms)"] + [f"LMI {format_bytes(s)}" for s in FIG4_SIZES]
    rows = []
    for x in curves["RMI"].xs:
        rows.append(
            [int(x), curves["RMI"].at(x)]
            + [curves[f"LMI {s}"].at(x) for s in FIG4_SIZES]
        )
    print(render_table(headers, rows))
    print()
    for size in FIG4_SIZES:
        print(
            f"  crossover (LMI {format_bytes(size)} beats RMI) at "
            f"n = {crossover_invocations(curves, size)}"
        )
    print()
    print(render_plot(list(curves.values()), title="Figure 4 (log-x sampled)"))
    save_json("fig4", {k: series_to_jsonable(v) for k, v in curves.items()})


def _print_fig56(name: str, data: dict[int, dict[int, "object"]]) -> None:
    for size, panel in data.items():
        totals = total_times_ms(panel)
        print(f"\n{name} — {format_bytes(size)} objects, total traversal time:")
        print(
            render_table(
                ["chunk/cluster size"] + [str(c) for c in FIG56_CHUNKS],
                [["time (ms)"] + [f"{totals[c]:.0f}" for c in FIG56_CHUNKS]],
            )
        )
        print(render_plot(list(panel.values()), title=f"{name}, {format_bytes(size)} objects"))


def cmd_fig5() -> None:
    print("E3 — Figure 5: incremental replication, per-object proxy pairs")
    data = fig5_series()
    _print_fig56("Figure 5", data)
    save_json(
        "fig5",
        {
            str(size): {str(c): series_to_jsonable(s) for c, s in panel.items()}
            for size, panel in data.items()
        },
    )


def cmd_fig6() -> None:
    print("E4 — Figure 6: incremental replication with clustering")
    data = fig6_series()
    _print_fig56("Figure 6", data)
    save_json(
        "fig6",
        {
            str(size): {str(c): series_to_jsonable(s) for c, s in panel.items()}
            for size, panel in data.items()
        },
    )


def cmd_ablate_proxy() -> None:
    print("A1 — proxy-pair overhead (per-object pairs vs one pair per cluster)")
    rows = ablations.ablate_proxy_pairs()
    print(
        render_table(
            ["chunk", "per-object (ms)", "clustered (ms)", "ratio"],
            [
                [r.chunk, r.per_object_ms, r.clustered_ms, f"{r.overhead_ratio:.2f}x"]
                for r in rows
            ],
        )
    )
    save_json("ablate_proxy", [vars(r) for r in rows])


def cmd_ablate_prefetch() -> None:
    print("A2 — prefetching vs demand-driven faulting")
    result = ablations.ablate_prefetch()
    print(
        render_table(
            ["strategy", "total (ms)", "worst invocation (ms)"],
            [
                ["demand-driven", result.demand_total_ms, result.demand_worst_invocation_ms],
                ["prefetched", result.prefetch_total_ms, result.prefetch_worst_invocation_ms],
            ],
        )
    )
    print(f"  fault latency eliminated from invocation path: {result.latency_eliminated}")
    save_json("ablate_prefetch", vars(result))


def cmd_ablate_consistency() -> None:
    print("A3 — consistency protocol cost (50 writes x 5 reads)")
    rows = ablations.ablate_consistency()
    print(
        render_table(
            ["protocol", "time (ms)", "network bytes", "stale reads"],
            [[r.protocol, r.total_ms, r.network_bytes, r.stale_reads] for r in rows],
        )
    )
    save_json("ablate_consistency", [vars(r) for r in rows])


def cmd_ablate_transport() -> None:
    print("A4 — transport sanity (same workload, three transports)")
    rows = ablations.ablate_transport()
    print(
        render_table(
            ["transport", "wall (s)", "sum", "correct"],
            [[r.transport, f"{r.wall_seconds:.3f}", r.traversal_sum, r.correct] for r in rows],
        )
    )
    save_json("ablate_transport", [vars(r) for r in rows])


def cmd_future_networks() -> None:
    from repro.bench.future_work import network_conditions_study

    print("F1 — network-conditions study (paper Section 6 future work)")
    rows = network_conditions_study()
    print(
        render_table(
            ["network", "best chunk", "best chunk (ms)", "best cluster", "best cluster (ms)"],
            [
                [
                    r.network,
                    r.best_chunk,
                    r.chunk_totals_ms[r.best_chunk],
                    r.best_cluster,
                    r.cluster_totals_ms[r.best_cluster],
                ]
                for r in rows
            ],
        )
    )
    save_json(
        "future_networks",
        [
            {
                "network": r.network,
                "chunks": r.chunk_totals_ms,
                "clusters": r.cluster_totals_ms,
            }
            for r in rows
        ],
    )


def cmd_future_cpu() -> None:
    from repro.bench.future_work import cpu_speed_study

    print("F2 — processor-speed study (paper Section 6 future work)")
    rows = cpu_speed_study()
    print(
        render_table(
            ["cpu slowdown", "RMI/LMI crossover", "best chunk", "LMI setup (ms)"],
            [
                [f"x{r.cpu_factor:g}", r.rmi_vs_lmi_crossover, r.best_chunk, r.lmi_setup_ms]
                for r in rows
            ],
        )
    )
    save_json("future_cpu", [vars(r) for r in rows])


def cmd_strategy_study() -> None:
    from repro.bench.strategies import session_length_sweep

    print("A5 — access-strategy study (the run-time RMI/LMI choice, quantified)")
    sweep = session_length_sweep()
    rows = []
    for length, results in sweep.items():
        for result in results:
            rows.append(
                [
                    length,
                    result.strategy,
                    result.simulated_ms,
                    result.network_bytes,
                    f"{result.documents_touched}/{result.documents_moved}",
                ]
            )
    print(
        render_table(
            ["session ops", "strategy", "time (ms)", "bytes", "touched/moved"], rows
        )
    )
    for length, results in sweep.items():
        winner = min(results, key=lambda r: r.simulated_ms)
        print(f"  {length} ops → {winner.strategy} wins ({winner.simulated_ms:.0f} ms)")
    save_json(
        "strategy_study",
        {str(length): [vars(r) for r in results] for length, results in sweep.items()},
    )


def cmd_fault_batching() -> None:
    from repro.bench.fault_batching import fault_batching_report

    print("P2 — batched demand & prefetching fault resolver")
    report = fault_batching_report()
    baseline, batched = report["baseline"], report["prefetch"]
    print(
        render_table(
            ["walk", "fault round trips", "wall clock (ms)", "bytes sent"],
            [
                [r["label"], r["fault_round_trips"], f"{r['wall_clock_ms']:.1f}", r["bytes_sent"]]
                for r in (baseline, batched)
            ],
        )
    )
    print(
        f"  round trips cut {report['round_trip_reduction']:.1f}x, "
        f"wall clock {report['wall_clock_speedup']:.2f}x"
    )
    save_json("fault_batching", report)


def cmd_delta_sync() -> None:
    from repro.bench.delta_sync import delta_sync_report

    print("P4 — delta-encoded replica synchronization")
    report = delta_sync_report()
    baseline, delta = report["baseline"], report["delta"]
    print(
        render_table(
            ["path", "bytes on wire", "wall clock (ms)", "puts", "refreshes"],
            [
                [
                    r["label"],
                    r["bytes_on_wire"],
                    f"{r['wall_clock_ms']:.1f}",
                    f"{r['puts_delta']}d/{r['puts_full']}f/{r['puts_noop']}n",
                    f"{r['refreshes_delta']}d/{r['refreshes_full']}f",
                ]
                for r in (baseline, delta)
            ],
        )
    )
    print(
        f"  bytes cut {report['bytes_reduction']:.1f}x, "
        f"wall clock {report['wall_clock_speedup']:.2f}x, "
        f"saved ~{delta['delta_bytes_saved']} B of full-state payloads"
    )
    save_json("delta_sync", report)


def cmd_codec_throughput() -> None:
    from repro.bench.codec_throughput import codec_throughput_report

    print("P7 — obicodec schema-compiled serialization fast path")
    report = codec_throughput_report()
    micro = report["micro"]
    print(
        render_table(
            ["codec", "encode MB/s", "decode MB/s", "B/frame"],
            [
                [
                    r["label"],
                    f"{r['encode_mb_s']:.1f}",
                    f"{r['decode_mb_s']:.1f}",
                    r["frame_bytes"] // r["objects"],
                ]
                for r in (micro["reflective"], micro["compiled"])
            ],
        )
    )
    print(
        f"  encode {micro['encode_speedup']:.1f}x, decode "
        f"{micro['decode_speedup']:.1f}x, combined {micro['combined_speedup']:.1f}x"
    )
    walk, sync = report["fault_batching_e2e"], report["delta_sync_e2e"]
    print(
        f"  e2e: fault batching {walk['overhead_pct']:+.2f}% wall clock, "
        f"delta-sync full puts {sync['reflective_ms']:.0f} -> "
        f"{sync['compiled_ms']:.0f} ms ({sync['bytes_reduction']:.2f}x bytes)"
    )
    save_json("codec_throughput", report)


def cmd_tracing_overhead() -> None:
    from repro.bench.tracing_overhead import tracing_overhead_report

    print("P5 — obitrace cost on the fault path (wall clock, not simulated)")
    report = tracing_overhead_report().jsonable()
    print(
        render_table(
            ["tracing", "walk wall clock (ms)", "spans"],
            [
                ["off", f"{report['disabled_wall_ms']:.1f}", 0],
                ["on", f"{report['enabled_wall_ms']:.1f}", report["spans_per_walk"]],
            ],
        )
    )
    print(
        f"  no-op span {report['null_span_ns']:.0f} ns -> est. disabled overhead "
        f"{report['est_disabled_overhead_pct']:.3f}% (< 2% budget); "
        f"enabled overhead {report['enabled_overhead_pct']:.1f}%"
    )
    save_json("tracing_overhead", report)


def cmd_memory_study() -> None:
    from repro.bench.memory_study import memory_study

    print("A6 — memory-footprint study (info-appliance, partial access)")
    rows = memory_study()
    print(
        render_table(
            ["chunk", "time (ms)", "replica memory (B)", "objects held", "overshoot"],
            [
                [r.chunk, r.time_ms, r.memory_bytes, r.objects_held, f"{r.overshoot:.2f}x"]
                for r in rows
            ],
        )
    )
    save_json("memory_study", [vars(r) for r in rows])


def cmd_connection_scale() -> None:
    from repro.bench.connection_scale import connection_scale_report

    print("P9 — connection scale: reactor vs thread-per-connection (wall clock)")
    report = connection_scale_report()
    sustain, race = report.sustain, report.race
    print(
        render_table(
            ["phase", "connections", "result"],
            [
                [
                    "sustain (reactor)",
                    sustain.connections,
                    f"{sustain.wall_ms:.0f} ms, peak {sustain.open_at_peak} open, "
                    f"loop lag max {sustain.loop_lag_max_ms:.2f} ms",
                ],
                [
                    "race (threaded)",
                    race.connections,
                    f"{race.threaded_ms:.0f} ms for {race.requests_per_consumer} req/consumer",
                ],
                [
                    "race (reactor)",
                    race.connections,
                    f"{race.reactor_ms:.0f} ms -> {race.speedup:.2f}x",
                ],
            ],
        )
    )
    save_json("connection_scale", report.jsonable())


COMMANDS = {
    "anchors": cmd_anchors,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "ablate-proxy": cmd_ablate_proxy,
    "ablate-prefetch": cmd_ablate_prefetch,
    "ablate-consistency": cmd_ablate_consistency,
    "ablate-transport": cmd_ablate_transport,
    "future-networks": cmd_future_networks,
    "future-cpu": cmd_future_cpu,
    "strategy-study": cmd_strategy_study,
    "memory-study": cmd_memory_study,
    "fault-batching": cmd_fault_batching,
    "delta-sync": cmd_delta_sync,
    "tracing-overhead": cmd_tracing_overhead,
    "codec-throughput": cmd_codec_throughput,
    "connection-scale": cmd_connection_scale,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument("command", choices=[*COMMANDS, "all"])
    args = parser.parse_args(argv)
    if args.command == "all":
        for name, command in COMMANDS.items():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            command()
    else:
        COMMANDS[args.command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
