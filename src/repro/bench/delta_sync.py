"""PR-4 experiment: delta-encoded replica synchronization.

Replays a mobile write-back/refresh workload twice — once with the
legacy full-state ``put``/``get`` paths, once with the site's
``delta_sync`` knob on — and counts what the delta engine saves: bytes
on the wire, simulated wall clock, and which sync path each operation
actually took.  Bytes come from the network stats, not from the sync
counters, so the numbers hold the delta path honest; at the end both
runs must leave master and replica fingerprints identical (zero drift).

The workload is the delta-friendly shape the paper's mobility scenarios
imply: records dominated by a payload blob that rarely changes, synced
in working sets where only ~1% of the fields mutated since the last
sync.  Full-state put ships the blob every time; the delta path ships
the handful of small fields that changed, skips clean replicas
entirely, and answers clean refreshes with an empty delta.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.meta import obi_id_of
from repro.core.obicomp import compile_class
from repro.core.runtime import World
from repro.simnet.link import LAN_10MBPS, Link

DEFAULT_OBJECTS = 64
DEFAULT_BLOB_SIZE = 2048
DEFAULT_PUT_ROUNDS = 16
DEFAULT_REFRESH_ROUNDS = 8
DEFAULT_SEED = 402

#: Replicas the consumer writes back per round (its session working set).
WORKING_SET = 8
#: Field writes per round: ~1% of the 64 x 8 field slots.
MUTATIONS_PER_ROUND = 5


@compile_class
class SyncRecord:
    """The bench object: one heavy blob plus small mutable counters."""

    def __init__(self, index: int = 0, blob: bytes = b""):
        self.index = index
        self.blob = blob
        self.hits = 0
        self.misses = 0
        self.score = 0
        self.state = 0
        self.ticks = 0
        self.phase = 0

    def poke(self, field: str, value: int) -> None:
        """The measured write: one small field of a blob-heavy record."""
        setattr(self, field, value)


#: The small fields the workload mutates (the blob stays cold).
SCALAR_FIELDS = ("hits", "misses", "score", "state", "ticks", "phase")


@dataclass(frozen=True, slots=True)
class SyncResult:
    """One full put/refresh workload, measured."""

    label: str
    delta_sync: bool
    wall_clock_ms: float
    #: Sync-phase traffic only (initial replication excluded — it is
    #: byte-identical on both paths).
    bytes_on_wire: int
    messages: int
    puts_delta: int
    puts_full: int
    puts_noop: int
    refreshes_delta: int
    refreshes_full: int
    need_full_downgrades: int
    delta_bytes_saved: int
    fingerprints_match: bool

    def jsonable(self) -> dict:
        return {
            "label": self.label,
            "delta_sync": self.delta_sync,
            "wall_clock_ms": round(self.wall_clock_ms, 3),
            "bytes_on_wire": self.bytes_on_wire,
            "messages": self.messages,
            "puts_delta": self.puts_delta,
            "puts_full": self.puts_full,
            "puts_noop": self.puts_noop,
            "refreshes_delta": self.refreshes_delta,
            "refreshes_full": self.refreshes_full,
            "need_full_downgrades": self.need_full_downgrades,
            "delta_bytes_saved": self.delta_bytes_saved,
            "fingerprints_match": self.fingerprints_match,
        }


def run_sync(
    delta_sync: bool,
    *,
    objects: int = DEFAULT_OBJECTS,
    blob_size: int = DEFAULT_BLOB_SIZE,
    put_rounds: int = DEFAULT_PUT_ROUNDS,
    refresh_rounds: int = DEFAULT_REFRESH_ROUNDS,
    seed: int = DEFAULT_SEED,
    link: Link = LAN_10MBPS,
    compiled_codec: bool = False,
) -> SyncResult:
    """Run the put/refresh workload on one sync path.

    The mutation schedule is drawn from a seeded generator, so both
    paths replay the identical sequence of writes.  ``compiled_codec``
    turns on obicodec negotiation on both sites; :class:`SyncRecord` is
    all-scalar, so its full-state frames then travel compiled.
    """
    world = World.loopback(link=link)
    provider = world.create_site("master")
    consumer = world.create_site("mobile")
    provider.delta_sync = delta_sync
    consumer.delta_sync = delta_sync
    provider.compiled_codec = compiled_codec
    consumer.compiled_codec = compiled_codec

    masters = [SyncRecord(index=i, blob=b"\xa5" * blob_size) for i in range(objects)]
    for i, master in enumerate(masters):
        provider.export(master, name=f"rec-{i}")
    replicas = [consumer.replicate(f"rec-{i}") for i in range(objects)]

    outbound = world.network.stats.link(consumer.name, provider.name)
    inbound = world.network.stats.link(provider.name, consumer.name)
    setup_bytes = outbound.bytes + inbound.bytes
    setup_messages = outbound.messages + inbound.messages

    rng = random.Random(seed)
    start = world.clock.now()

    # Phase 1 — write-back: mutate ~1% of the fields, then sync the
    # whole session working set (dirty and clean members alike; the
    # consumer does not know which records changed — that is the delta
    # engine's job).
    for _ in range(put_rounds):
        session = rng.sample(range(objects), WORKING_SET)
        for _ in range(MUTATIONS_PER_ROUND):
            index = rng.choice(session)
            field = rng.choice(SCALAR_FIELDS)
            consumer.invoke_local(replicas[index], "poke", field, rng.randrange(1 << 16))
        for index in session:
            consumer.put_back(replicas[index])

    # Phase 2 — refresh: the master application mutates ~1% of the
    # fields in place (announced via touch), then the consumer pulls
    # its entire replica set back in sync, as a mobile client does on
    # reconnect.
    for _ in range(refresh_rounds):
        touched: dict[int, set[str]] = {}
        for _ in range(MUTATIONS_PER_ROUND):
            index = rng.randrange(objects)
            field = rng.choice(SCALAR_FIELDS)
            masters[index].poke(field, rng.randrange(1 << 16))
            touched.setdefault(index, set()).add(field)
        for index, fields in touched.items():
            provider.touch(masters[index], fields=tuple(sorted(fields)))
        for replica in replicas:
            consumer.refresh(replica)

    elapsed_ms = (world.clock.now() - start) * 1e3

    drift = [
        i
        for i, (master, replica) in enumerate(zip(masters, replicas))
        if provider.fingerprinter.of_object(master)
        != consumer.fingerprinter.of_object(replica)
        or obi_id_of(master) != obi_id_of(replica)
    ]
    if drift:
        raise AssertionError(
            f"post-sync fingerprint drift on records {drift} (delta_sync={delta_sync})"
        )

    sync = consumer.sync_stats.snapshot()
    bytes_on_wire = outbound.bytes + inbound.bytes - setup_bytes
    messages = outbound.messages + inbound.messages - setup_messages
    world.close()
    return SyncResult(
        label="delta" if delta_sync else "full-state",
        delta_sync=delta_sync,
        wall_clock_ms=elapsed_ms,
        bytes_on_wire=bytes_on_wire,
        messages=messages,
        puts_delta=sync["puts_delta"],
        puts_full=sync["puts_full"],
        puts_noop=sync["puts_noop"],
        refreshes_delta=sync["refreshes_delta"],
        refreshes_full=sync["refreshes_full"],
        need_full_downgrades=sync["need_full_downgrades"],
        delta_bytes_saved=sync["delta_bytes_saved"],
        fingerprints_match=True,
    )


def delta_sync_report(
    *,
    objects: int = DEFAULT_OBJECTS,
    blob_size: int = DEFAULT_BLOB_SIZE,
    put_rounds: int = DEFAULT_PUT_ROUNDS,
    refresh_rounds: int = DEFAULT_REFRESH_ROUNDS,
    seed: int = DEFAULT_SEED,
    compiled_codec: bool = False,
) -> dict:
    """Before/after comparison for the PR-4 acceptance numbers."""
    kwargs = dict(
        objects=objects,
        blob_size=blob_size,
        put_rounds=put_rounds,
        refresh_rounds=refresh_rounds,
        seed=seed,
        compiled_codec=compiled_codec,
    )
    baseline = run_sync(False, **kwargs)
    delta = run_sync(True, **kwargs)
    return {
        "workload": (
            f"{objects} records x {len(SCALAR_FIELDS) + 2} fields "
            f"(+{blob_size} B blob), {put_rounds} put rounds x "
            f"{WORKING_SET}-record working set + {refresh_rounds} "
            f"refresh-all rounds, ~1% field mutation per round"
        ),
        "baseline": baseline.jsonable(),
        "delta": delta.jsonable(),
        "bytes_reduction": round(
            baseline.bytes_on_wire / max(1, delta.bytes_on_wire), 2
        ),
        "wall_clock_speedup": round(
            baseline.wall_clock_ms / max(1e-9, delta.wall_clock_ms), 2
        ),
    }
