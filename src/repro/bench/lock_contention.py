"""PR-6 experiment: what does striping buy the fault path under threads?

The workload hammers one site's object tables from many threads with the
fault path's own operation mix — mostly hot lookups (``version_of``,
``local_object_for``), a slice of demand begin/finish cycles, and a
slice of master-version bumps.  Two runtime configurations race:

* **baseline** — ``stripes=1, snapshot_reads=False``: every operation
  funnels through one reentrant lock, reproducing the pre-striping
  ``Site._lock`` runtime exactly;
* **striped** — ``stripes=N, snapshot_reads=True``: reads take no lock
  at all, writes spread over N oid-hashed stripe locks.

Even under the GIL the single lock hurts: a thread preempted inside the
critical section convoys every other thread onto a blocking acquire —
park, unpark, GIL handoff — while the striped runtime's reads never
touch a lock and its writes almost never collide.  The acceptance claim
is a >= 2x wall-clock win at 32 threads.

Per-thread operation sequences are precomputed from seeded
``random.Random`` instances, so both configurations replay the identical
workload and the only variable is the locking regime.
"""

from __future__ import annotations

import random
import sys
import threading
import time
from dataclasses import dataclass

from repro.bench.workloads import PayloadNode
from repro.core.meta import obi_id_of
from repro.core.runtime import World

DEFAULT_THREAD_COUNTS = (16, 32, 64)
DEFAULT_OBJECTS = 512
DEFAULT_OPS_PER_THREAD = 2000
DEFAULT_STRIPES = 32
DEFAULT_REPEATS = 2
#: Operation mix: fraction of reads, demand cycles, version bumps.
READ_FRACTION = 0.9
DEMAND_FRACTION = 0.05
SEED = 0x0B1
#: Interpreter switch interval during the timed region.  The default
#: 5 ms lets one GIL slice span hundreds of operations, hiding the
#: single-lock convoy that real multicore preemption exposes; 0.5 ms
#: restores preemption pressure while charging both configurations the
#: same GIL-handoff cost.
SWITCH_INTERVAL = 0.0005


@dataclass(frozen=True, slots=True)
class ContentionPoint:
    """Baseline-vs-striped wall clock at one thread count."""

    threads: int
    baseline_ms: float
    striped_ms: float
    speedup: float
    #: Contended stripe-lock acquires each configuration suffered.
    baseline_waits: int
    striped_waits: int


@dataclass(frozen=True, slots=True)
class ContentionReport:
    """The PR-6 acceptance numbers."""

    objects: int
    ops_per_thread: int
    stripes: int
    repeats: int
    points: tuple[ContentionPoint, ...]

    def point(self, threads: int) -> ContentionPoint:
        for point in self.points:
            if point.threads == threads:
                return point
        raise KeyError(f"no {threads}-thread point in this report")

    def jsonable(self) -> dict:
        return {
            "experiment": "lock_contention",
            "objects": self.objects,
            "ops_per_thread": self.ops_per_thread,
            "stripes": self.stripes,
            "repeats": self.repeats,
            "read_fraction": READ_FRACTION,
            "demand_fraction": DEMAND_FRACTION,
            "points": [
                {
                    "threads": p.threads,
                    "baseline_ms": round(p.baseline_ms, 3),
                    "striped_ms": round(p.striped_ms, 3),
                    "speedup": round(p.speedup, 3),
                    "baseline_waits": p.baseline_waits,
                    "striped_waits": p.striped_waits,
                }
                for p in self.points
            ],
        }


def _make_plan(threads: int, objects: int, ops_per_thread: int) -> list[list[tuple[str, int]]]:
    """Per-thread operation sequences, identical for both configurations."""
    plans = []
    for t in range(threads):
        rng = random.Random(SEED + t)
        ops = []
        for _ in range(ops_per_thread):
            roll = rng.random()
            target = rng.randrange(objects)
            if roll < READ_FRACTION:
                ops.append(("read", target))
            elif roll < READ_FRACTION + DEMAND_FRACTION:
                ops.append(("demand", target))
            else:
                ops.append(("bump", target))
        plans.append(ops)
    return plans


def _run_config(
    threads: int,
    plans: list[list[tuple[str, int]]],
    *,
    stripes: int,
    snapshot_reads: bool,
    objects: int,
) -> tuple[float, int]:
    """One timed run; returns (wall ms, contended acquires)."""
    with World.threaded() as world:
        site = world.create_site(
            "bench", stripes=stripes, snapshot_reads=snapshot_reads
        )
        nodes = [PayloadNode(index=i) for i in range(objects)]
        oids = [obi_id_of(node) for node in nodes]
        for node in nodes:
            site.note_master(node)

        barrier = threading.Barrier(threads + 1)

        def worker(plan):
            barrier.wait()
            for kind, target in plan:
                oid = oids[target]
                if kind == "read":
                    site.version_of(nodes[target])
                    site.local_object_for(oid)
                    site.is_master(oid)
                    site.master_object_for(oid)
                elif kind == "demand":
                    leader, handle = site.begin_demand(oid)
                    if leader:
                        site.finish_demand(oid, handle, result=None)
                else:
                    site.bump_master_version(oid)

        pool = [
            threading.Thread(target=worker, args=(plans[t],))
            for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        previous_interval = sys.getswitchinterval()
        sys.setswitchinterval(SWITCH_INTERVAL)
        try:
            barrier.wait()
            start = time.perf_counter()  # obilint: disable=OBI108 -- wall-clock benchmark measurement
            for thread in pool:
                thread.join()
            elapsed = time.perf_counter() - start  # obilint: disable=OBI108 -- wall-clock benchmark measurement
        finally:
            sys.setswitchinterval(previous_interval)
        return elapsed * 1000.0, site.stripe_metrics()["acquire_waits"]


def lock_contention_report(
    *,
    thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS,
    objects: int = DEFAULT_OBJECTS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    stripes: int = DEFAULT_STRIPES,
    repeats: int = DEFAULT_REPEATS,
) -> ContentionReport:
    """Race the two runtimes across ``thread_counts``; best-of-``repeats``."""
    points = []
    for threads in thread_counts:
        plans = _make_plan(threads, objects, ops_per_thread)
        baseline_ms = float("inf")
        striped_ms = float("inf")
        baseline_waits = 0
        striped_waits = 0
        for _ in range(repeats):
            ms, waits = _run_config(
                threads, plans, stripes=1, snapshot_reads=False, objects=objects
            )
            if ms < baseline_ms:
                baseline_ms, baseline_waits = ms, waits
            ms, waits = _run_config(
                threads, plans, stripes=stripes, snapshot_reads=True, objects=objects
            )
            if ms < striped_ms:
                striped_ms, striped_waits = ms, waits
        points.append(
            ContentionPoint(
                threads=threads,
                baseline_ms=baseline_ms,
                striped_ms=striped_ms,
                speedup=baseline_ms / striped_ms if striped_ms else float("inf"),
                baseline_waits=baseline_waits,
                striped_waits=striped_waits,
            )
        )
    return ContentionReport(
        objects=objects,
        ops_per_thread=ops_per_thread,
        stripes=stripes,
        repeats=repeats,
        points=tuple(points),
    )
