"""Memory-footprint study (the paper's info-appliance conclusion).

Figure 5's last bullet: "for info-appliances with reduced amount of free
memory, when only a part of the objects are effectively needed, it is
clearly advantageous to incrementally replicate a small number of
objects (but more than one each time)."

This study makes the trade-off measurable: an application traverses only
the first ``needed`` objects of a 1000-object list; per fetch size we
report the replica memory the device ends up holding and the simulated
time spent — small chunks hold memory close to what was needed, large
chunks waste device memory on objects never touched, and chunk 1 pays
the full per-fault latency bill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import ListSpec, make_linked_list
from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World


@dataclass
class MemoryStudyRow:
    chunk: int
    time_ms: float
    memory_bytes: int
    objects_held: int
    objects_needed: int

    @property
    def overshoot(self) -> float:
        """Replicated objects per object actually needed (1.0 = perfect)."""
        return self.objects_held / self.objects_needed


def memory_study(
    *,
    length: int = 1000,
    needed: int = 100,
    object_size: int = 1024,
    chunks: tuple[int, ...] = (1, 10, 50, 100, 500, 1000),
) -> list[MemoryStudyRow]:
    """Partial traversal (``needed`` of ``length`` objects) per chunk."""
    if needed > length:
        raise ValueError("cannot need more objects than the list holds")
    rows = []
    for chunk in chunks:
        world = World.loopback()
        provider = world.create_site("S2")
        consumer = world.create_site("S1")
        provider.export(make_linked_list(ListSpec(length, object_size)), name="list")

        start = world.clock.now()
        node: object = consumer.replicate("list", mode=Incremental(chunk))
        for _ in range(needed - 1):
            consumer.invoke_local(node, "get_index")
            node = consumer.invoke_local(node, "get_next")
            if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
                node = node._obi_resolved
        consumer.invoke_local(node, "get_index")
        elapsed = world.clock.now() - start

        held = sum(1 for _ in consumer.iter_replicas())
        rows.append(
            MemoryStudyRow(
                chunk=chunk,
                time_ms=elapsed * 1e3,
                memory_bytes=consumer.memory_footprint(),
                objects_held=held,
                objects_needed=needed,
            )
        )
        world.close()
    return rows
