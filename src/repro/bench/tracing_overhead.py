"""PR-5 experiment: what does obitrace cost the fault path?

Two numbers matter:

* **disabled** — tracing is opt-in, so the instrumented fault path must
  cost ~nothing while it is off.  Every instrumentation point then runs
  ``NULL_TRACER.span(...)`` — one shared no-op context manager — and the
  overhead is *(no-op span cost) × (spans the workload would emit)*,
  reported as a percentage of the measured walk time.  The unit cost is
  measured over a tight loop, the span count from a traced twin run, so
  the estimate is deterministic rather than noise-limited (the per-walk
  delta is far below wall-clock variance — which is the point).
* **enabled** — live spans read the clock twice, allocate, and take the
  collector lock; measured directly as traced vs untraced wall time on
  the same walk.

The workload is the paper's Figure-5 list walk (chunk-1 incremental
replication) on the deterministic loopback world; wall times come from
:class:`~repro.util.clock.WallClock` and take the best of ``repeats``
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import ListSpec, list_values_sum, make_linked_list
from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from repro.obs.context import NULL_TRACER
from repro.util.clock import WallClock

DEFAULT_LENGTH = 1000
DEFAULT_OBJECT_SIZE = 64
DEFAULT_REPEATS = 3
NULL_SPAN_ITERATIONS = 200_000


@dataclass(frozen=True, slots=True)
class TracingOverheadResult:
    """The PR-5 acceptance numbers."""

    length: int
    repeats: int
    #: Best-of-``repeats`` wall time of the walk with tracing off (the
    #: instrumented path running no-op spans).
    disabled_wall_ms: float
    #: Same walk with tracing on at both sites.
    enabled_wall_ms: float
    #: Spans the traced walk recorded across both sites.
    spans_per_walk: int
    #: Measured cost of one disabled ``span()`` enter/exit, nanoseconds.
    null_span_ns: float
    #: ``null_span_ns × spans_per_walk`` as a share of the disabled walk.
    est_disabled_overhead_pct: float
    #: Direct enabled-vs-disabled wall-clock ratio, as a percentage.
    enabled_overhead_pct: float

    def jsonable(self) -> dict:
        return {
            "length": self.length,
            "repeats": self.repeats,
            "disabled_wall_ms": round(self.disabled_wall_ms, 3),
            "enabled_wall_ms": round(self.enabled_wall_ms, 3),
            "spans_per_walk": self.spans_per_walk,
            "null_span_ns": round(self.null_span_ns, 1),
            "est_disabled_overhead_pct": round(self.est_disabled_overhead_pct, 4),
            "enabled_overhead_pct": round(self.enabled_overhead_pct, 2),
        }


def _walk_once(
    *, traced: bool, length: int, object_size: int, wall: WallClock
) -> tuple[float, int]:
    """One full list walk; returns (wall seconds, spans recorded)."""
    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    collectors = []
    if traced:
        collectors = [provider.enable_tracing(), consumer.enable_tracing()]
    provider.export(make_linked_list(ListSpec(length, object_size)), name="list")

    start = wall.now()
    node: object = consumer.replicate("list", mode=Incremental(1))
    total = 0
    while node is not None:
        total += consumer.invoke_local(node, "get_index")
        node = consumer.invoke_local(node, "get_next")
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    elapsed = wall.now() - start
    if total != list_values_sum(length):
        raise AssertionError(f"traversal sum {total} wrong for length {length}")
    spans = sum(collector.stats()["recorded"] for collector in collectors)
    world.close()
    return elapsed, spans


def null_span_cost_ns(iterations: int = NULL_SPAN_ITERATIONS) -> float:
    """Measured wall cost of one disabled span enter/exit, in nanoseconds.

    Exercises exactly what an instrumentation point does while tracing is
    off: call ``NULL_TRACER.span`` with a keyword attribute and enter/exit
    the shared no-op context manager.
    """
    wall = WallClock()
    tracer = NULL_TRACER
    start = wall.now()
    for index in range(iterations):
        with tracer.span("bench.noop", name="x", index=index):
            pass
    return (wall.now() - start) / iterations * 1e9


def tracing_overhead_report(
    length: int = DEFAULT_LENGTH,
    *,
    object_size: int = DEFAULT_OBJECT_SIZE,
    repeats: int = DEFAULT_REPEATS,
) -> TracingOverheadResult:
    """Measure disabled- and enabled-tracing cost on the list walk."""
    wall = WallClock()
    disabled = min(
        _walk_once(traced=False, length=length, object_size=object_size, wall=wall)[0]
        for _ in range(repeats)
    )
    enabled_runs = [
        _walk_once(traced=True, length=length, object_size=object_size, wall=wall)
        for _ in range(repeats)
    ]
    enabled = min(seconds for seconds, _spans in enabled_runs)
    spans_per_walk = enabled_runs[0][1]
    per_span_ns = null_span_cost_ns()

    est_disabled_pct = (per_span_ns * 1e-9 * spans_per_walk) / disabled * 100.0
    enabled_pct = max(0.0, (enabled / disabled - 1.0) * 100.0)
    return TracingOverheadResult(
        length=length,
        repeats=repeats,
        disabled_wall_ms=disabled * 1e3,
        enabled_wall_ms=enabled * 1e3,
        spans_per_walk=spans_per_walk,
        null_span_ns=per_span_ns,
        est_disabled_overhead_pct=est_disabled_pct,
        enabled_overhead_pct=enabled_pct,
    )
