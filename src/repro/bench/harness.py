"""Experiment harness: run one configuration, deterministically.

Every run builds a fresh loopback world (simulated clock, calibrated
costs, the paper's 10 Mb/s LAN link), executes the workload, and samples
the simulated clock.  Results are plain data (:class:`Series`) so the
figure modules, the CLI and the claim-checking benchmark tests all share
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.workloads import ListSpec, make_linked_list
from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental, ReplicationMode
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import Site, World
from repro.simnet.link import LAN_10MBPS, Link

# ----------------------------------------------------------------------
# the paper's sweep parameters (OCR-reconstructed; see DESIGN.md)
# ----------------------------------------------------------------------
#: Figure 4 object sizes in bytes: 16 B … 64 KB.
FIG4_SIZES = (16, 1024, 4096, 16384, 65536)
#: Figure 4 invocation counts (x axis).
FIG4_INVOCATIONS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000)
#: Figures 5/6 object sizes: 64 B, 1 KB, 16 KB.
FIG56_SIZES = (64, 1024, 16384)
#: Figures 5/6 chunk / cluster sizes.
FIG56_CHUNKS = (1, 10, 50, 100, 500, 1000)
#: Figures 5/6 list length.
FIG56_LIST_LENGTH = 1000


@dataclass
class Series:
    """One plotted curve: a label and (x, milliseconds) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, seconds: float) -> None:
        self.points.append((x, seconds * 1e3))

    @property
    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    @property
    def ys_ms(self) -> list[float]:
        return [y for _, y in self.points]

    def final_ms(self) -> float:
        return self.points[-1][1]

    def at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x}")


def fresh_world(
    *,
    link: Link = LAN_10MBPS,
    costs: CostModel | None = None,
) -> tuple[World, Site, Site]:
    """A two-site loopback world: (world, provider S2, consumer S1)."""
    world = World.loopback(link=link, costs=costs)
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    return world, provider, consumer


# ----------------------------------------------------------------------
# experiment runners
# ----------------------------------------------------------------------
def run_rmi_invocations(size: int, invocations: int) -> Series:
    """RMI side of Figure 4: ``n`` remote invocations on one object."""
    from repro.bench.workloads import PayloadNode, payload_for_size

    world, provider, consumer = fresh_world()
    node = PayloadNode(index=7, payload=payload_for_size(size))
    provider.export(node, name="object")
    stub = consumer.remote_stub("object")

    series = Series(label=f"RMI {size}B")
    start = world.clock.now()
    for count in range(1, invocations + 1):
        stub.get_index()
        series.add(count, world.clock.now() - start)
    return series


def run_lmi_invocations(size: int, invocations: int) -> Series:
    """LMI side of Figure 4: replicate, invoke locally ``n`` times, put
    back.  Following the paper, "the execution time of LMI includes the
    cost due to the creation of the replica and to update it back in the
    master site" — so every point includes both end costs.
    """
    from repro.bench.workloads import PayloadNode, payload_for_size

    world, provider, consumer = fresh_world()
    node = PayloadNode(index=7, payload=payload_for_size(size))
    provider.export(node, name="object")

    start = world.clock.now()
    replica = consumer.replicate("object")
    replicate_cost = world.clock.now() - start

    # Measure the put-back cost once (state is unchanged by get_index, so
    # one put is representative and keeps the sweep O(n) not O(n²)).
    put_start = world.clock.now()
    consumer.put_back(replica)
    put_cost = world.clock.now() - put_start

    series = Series(label=f"LMI {size}B")
    invoke_start = world.clock.now()
    for count in range(1, invocations + 1):
        consumer.invoke_local(replica, "get_index")
        elapsed = world.clock.now() - invoke_start
        series.add(count, replicate_cost + elapsed + put_cost)
    return series


def run_list_traversal(
    spec: ListSpec,
    mode: ReplicationMode,
    *,
    link: Link = LAN_10MBPS,
    costs: CostModel | None = None,
) -> Series:
    """Figures 5/6 inner loop: replicate the head under ``mode``, then
    invoke one method per list element; faults auto-replicate the next
    chunk/cluster.  Returns cumulative time after each invocation."""
    world = World.loopback(link=link, costs=costs)
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    head = make_linked_list(spec)
    provider.export(head, name="list")

    style = "cluster" if mode.clustered else "chunk"
    series = Series(label=f"{style} {mode.chunk} ({spec.object_size}B)")

    start = world.clock.now()
    node: object = consumer.replicate("list", mode=mode)
    invocations = 0
    while node is not None:
        consumer.invoke_local(node, "get_index")
        invocations += 1
        series.add(invocations, world.clock.now() - start)
        if isinstance(node, ProxyOutBase):
            node = node._obi_resolved
        node = consumer.invoke_local(node, "get_next")
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    if invocations != spec.length:
        raise AssertionError(
            f"traversal covered {invocations} of {spec.length} objects"
        )
    return series


def run_fig5_cell(size: int, chunk: int, length: int = FIG56_LIST_LENGTH) -> Series:
    """One Figure 5 curve: per-object pairs."""
    return run_list_traversal(ListSpec(length, size), Incremental(chunk))


def run_fig6_cell(size: int, chunk: int, length: int = FIG56_LIST_LENGTH) -> Series:
    """One Figure 6 curve: clustered."""
    return run_list_traversal(ListSpec(length, size), Cluster(size=chunk))
