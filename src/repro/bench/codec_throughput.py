"""PR-7 experiment: obicodec schema-compiled serialization throughput.

Measures the serializer itself, off the network: a registered all-scalar
record class is encoded and decoded in bulk through the reflective codec
and through the compiled ``OBJECT_SCHEMA`` fast path, and the report
compares MB/s, objects/s and bytes per frame.  Correctness rides along —
every compiled roundtrip must rebuild the exact instance dict (insertion
order included) and the exact replica fingerprint the reflective path
produces, because fingerprints are how the delta engine detects drift.

Wall times come from :class:`~repro.util.clock.WallClock` and take the
best of ``repeats`` runs, the standard defence against scheduler noise.

The two e2e reruns PR 7 promises (fault batching with pure negotiation
overhead, delta sync with compiled full-state frames) live in their own
modules — this one re-invokes them with ``compiled_codec=True`` so one
report carries all three acceptance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.obicomp import compile_class
from repro.serial.compiled import codec_for
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.delta import Fingerprinter
from repro.serial.registry import global_registry
from repro.util.clock import WallClock

DEFAULT_OBJECTS = 2000
DEFAULT_REPEATS = 5


@compile_class
class TelemetryRecord:
    """The bench object: ten scalar fields, the obicodec sweet spot.

    Shaped like the per-object telemetry a mobile site would sync —
    fixed-width counters and flags plus two variable-length runs."""

    def __init__(self, index: int = 0):
        self.index = index
        self.samples = 0
        self.errors = 0
        self.watermark = -1
        self.mean = 0.0
        self.variance = 0.0
        self.live = False
        self.station = ""
        self.region = ""
        self.digest = b""

    def fill(self, seed: int) -> "TelemetryRecord":
        self.samples = seed * 7919
        self.errors = seed % 17
        self.watermark = seed * seed
        self.mean = seed * 0.5
        self.variance = seed / 3.0
        self.live = bool(seed % 2)
        self.station = f"station-{seed:04d}"
        self.region = "eu-west" if seed % 2 else "ap-south"
        self.digest = seed.to_bytes(8, "big") * 4
        return self


@dataclass(frozen=True, slots=True)
class CodecResult:
    """One codec's bulk encode/decode, measured."""

    label: str
    objects: int
    frame_bytes: int
    encode_s: float
    decode_s: float

    @property
    def encode_mb_s(self) -> float:
        return self.frame_bytes / max(1e-9, self.encode_s) / 1e6

    @property
    def decode_mb_s(self) -> float:
        return self.frame_bytes / max(1e-9, self.decode_s) / 1e6

    def jsonable(self) -> dict:
        return {
            "label": self.label,
            "objects": self.objects,
            "frame_bytes": self.frame_bytes,
            "encode_s": round(self.encode_s, 6),
            "decode_s": round(self.decode_s, 6),
            "encode_mb_s": round(self.encode_mb_s, 2),
            "decode_mb_s": round(self.decode_mb_s, 2),
            "encode_objs_s": round(self.objects / max(1e-9, self.encode_s)),
            "decode_objs_s": round(self.objects / max(1e-9, self.decode_s)),
        }


def _measure(
    label: str, encoder: Encoder, decoder: Decoder, records: list, repeats: int
) -> tuple[CodecResult, list]:
    """Best-of-``repeats`` bulk encode + decode; returns the last decode."""
    clock = WallClock()
    frames = [encoder.encode(record) for record in records]  # warm + sizes
    frame_bytes = sum(len(frame) for frame in frames)
    encode_s = decode_s = float("inf")
    decoded: list = []
    for _ in range(repeats):
        start = clock.now()
        frames = [encoder.encode(record) for record in records]
        encode_s = min(encode_s, clock.now() - start)
        start = clock.now()
        decoded = [decoder.decode(frame) for frame in frames]
        decode_s = min(decode_s, clock.now() - start)
    return (
        CodecResult(
            label=label,
            objects=len(records),
            frame_bytes=frame_bytes,
            encode_s=encode_s,
            decode_s=decode_s,
        ),
        decoded,
    )


def run_throughput(
    *, objects: int = DEFAULT_OBJECTS, repeats: int = DEFAULT_REPEATS
) -> dict:
    """The serializer microbenchmark: reflective vs compiled, one class."""
    assert codec_for(TelemetryRecord) is not None, "bench class must compile a codec"
    records = [TelemetryRecord(index=i).fill(i) for i in range(objects)]

    reflective, decoded_reflective = _measure(
        "reflective", Encoder(global_registry), Decoder(global_registry), records, repeats
    )
    compiled, decoded_compiled = _measure(
        "compiled",
        Encoder(global_registry, compiled=True),
        Decoder(global_registry),
        records,
        repeats,
    )

    fingerprinter = Fingerprinter(global_registry)
    mismatches = [
        i
        for i, (original, fast, slow) in enumerate(
            zip(records, decoded_compiled, decoded_reflective)
        )
        if vars(fast) != vars(original)
        or list(vars(fast)) != list(vars(original))
        or fingerprinter.of_object(fast) != fingerprinter.of_object(slow)
    ]
    if mismatches:
        raise AssertionError(f"compiled roundtrip drift on records {mismatches[:5]}")

    return {
        "workload": (
            f"{objects} TelemetryRecord objects x 10 scalar fields, "
            f"best of {repeats} bulk runs"
        ),
        "reflective": reflective.jsonable(),
        "compiled": compiled.jsonable(),
        "encode_speedup": round(reflective.encode_s / max(1e-9, compiled.encode_s), 2),
        "decode_speedup": round(reflective.decode_s / max(1e-9, compiled.decode_s), 2),
        "combined_speedup": round(
            (reflective.encode_s + reflective.decode_s)
            / max(1e-9, compiled.encode_s + compiled.decode_s),
            2,
        ),
        "bytes_per_frame_reflective": reflective.frame_bytes // objects,
        "bytes_per_frame_compiled": compiled.frame_bytes // objects,
        "roundtrips_verified": objects,
    }


def codec_throughput_report(
    *, objects: int = DEFAULT_OBJECTS, repeats: int = DEFAULT_REPEATS
) -> dict:
    """The PR-7 acceptance report: microbench + both e2e reruns.

    The e2e sections rerun the PR-2 and PR-4 benches with the codec knob
    on and report simulated wall clock against the knob-off numbers from
    the same process — "no slower" is the bar, the byte savings on the
    delta-sync workload (all-scalar records) are the upside.
    """
    from repro.bench.delta_sync import run_sync
    from repro.bench.fault_batching import run_walk

    micro = run_throughput(objects=objects, repeats=repeats)

    walk_off = run_walk(16)
    walk_on = run_walk(16, compiled_codec=True)
    sync_off = run_sync(False)
    sync_on = run_sync(False, compiled_codec=True)

    return {
        "micro": micro,
        "fault_batching_e2e": {
            "reflective_ms": round(walk_off.wall_clock_ms, 3),
            "compiled_ms": round(walk_on.wall_clock_ms, 3),
            "overhead_pct": round(
                (walk_on.wall_clock_ms / max(1e-9, walk_off.wall_clock_ms) - 1) * 100, 2
            ),
        },
        "delta_sync_e2e": {
            "reflective_ms": round(sync_off.wall_clock_ms, 3),
            "compiled_ms": round(sync_on.wall_clock_ms, 3),
            "reflective_bytes": sync_off.bytes_on_wire,
            "compiled_bytes": sync_on.bytes_on_wire,
            "bytes_reduction": round(
                sync_off.bytes_on_wire / max(1, sync_on.bytes_on_wire), 2
            ),
        },
    }
