"""The paper's Section 6 future-work studies, implemented.

The conclusions promise two follow-up experiments the paper never ran:

* **F1 — network conditions**: "We plan to test our prototype on
  several info-appliances under different network conditions (wide-area
  and wireless)."  :func:`network_conditions_study` reruns the list
  workload of Figures 5/6 over the LAN, WAN, 802.11b and GPRS link
  models and reports how the optimal fetch strategy moves.
* **F2 — processor speed**: "We will study how the performance numbers
  depend on the relative speed of the processors involved, for example,
  between a hand-held PC such as Compaq iPaq, and a desktop PC."
  :func:`cpu_speed_study` sweeps a CPU slowdown factor and reports how
  the Figure 4 RMI/LMI crossover and the Figure 5 optimal chunk shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_list_traversal
from repro.bench.workloads import ListSpec, PayloadNode, payload_for_size
from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental
from repro.core.runtime import World
from repro.simnet.link import LAN_10MBPS, WAN, WIRELESS_GPRS, WIRELESS_WLAN, Link

#: The link menu of the F1 study.
NETWORKS: tuple[tuple[str, Link], ...] = (
    ("lan-10mbps", LAN_10MBPS),
    ("wlan-802.11b", WIRELESS_WLAN),
    ("wan", WAN),
    ("gprs", WIRELESS_GPRS),
)


# ----------------------------------------------------------------------
# F1 — network conditions
# ----------------------------------------------------------------------
@dataclass
class NetworkConditionRow:
    network: str
    chunk_totals_ms: dict[int, float]
    cluster_totals_ms: dict[int, float]

    @property
    def best_chunk(self) -> int:
        return min(self.chunk_totals_ms, key=self.chunk_totals_ms.get)

    @property
    def best_cluster(self) -> int:
        return min(self.cluster_totals_ms, key=self.cluster_totals_ms.get)


def network_conditions_study(
    *,
    length: int = 200,
    object_size: int = 1024,
    chunks: tuple[int, ...] = (1, 10, 50, 200),
) -> list[NetworkConditionRow]:
    """The Figure 5/6 workload across four link types.

    Expected physics: as round trips get more expensive (GPRS's 0.5 s
    latency vs the LAN's 1.35 ms), the optimal fetch size grows —
    per-fetch overhead dominates, so fetch more per fault.
    """
    rows = []
    for name, link in NETWORKS:
        chunk_totals = {
            chunk: run_list_traversal(
                ListSpec(length, object_size), Incremental(chunk), link=link
            ).final_ms()
            for chunk in chunks
        }
        cluster_totals = {
            chunk: run_list_traversal(
                ListSpec(length, object_size), Cluster(size=chunk), link=link
            ).final_ms()
            for chunk in chunks
        }
        rows.append(NetworkConditionRow(name, chunk_totals, cluster_totals))
    return rows


# ----------------------------------------------------------------------
# F2 — processor speed
# ----------------------------------------------------------------------
@dataclass
class CpuSpeedRow:
    cpu_factor: float
    rmi_vs_lmi_crossover: int | None
    best_chunk: int
    lmi_setup_ms: float


def cpu_speed_study(
    *,
    factors: tuple[float, ...] = (1.0, 4.0, 8.0, 16.0),
    object_size: int = 1024,
    length: int = 200,
    chunks: tuple[int, ...] = (1, 10, 50, 200),
    invocations: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500),
) -> list[CpuSpeedRow]:
    """Figure 4's crossover and Figure 5's optimal chunk as the consumer
    CPU slows down (desktop → hand-held).

    Expected physics: replica creation is CPU work, so a slower device
    needs more invocations before LMI amortizes — the crossover moves
    right.  Serialization also slows, so big fetch bursts get relatively
    worse.
    """
    rows = []
    for factor in factors:
        costs = CostModel.calibrated_2002().scaled(factor)
        crossover = _crossover(object_size, invocations, costs)
        chunk_totals = {
            chunk: run_list_traversal(
                ListSpec(length, object_size), Incremental(chunk), costs=costs
            ).final_ms()
            for chunk in chunks
        }
        best_chunk = min(chunk_totals, key=chunk_totals.get)
        rows.append(
            CpuSpeedRow(
                cpu_factor=factor,
                rmi_vs_lmi_crossover=crossover,
                best_chunk=best_chunk,
                lmi_setup_ms=_lmi_setup_ms(object_size, costs),
            )
        )
    return rows


def _two_site_world(costs: CostModel | None):
    world = World.loopback(costs=costs)
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    return world, provider, consumer


def _crossover(
    object_size: int, invocations: tuple[int, ...], costs: CostModel
) -> int | None:
    """Smallest sampled n where LMI (incl. setup) beats RMI."""
    world, provider, consumer = _two_site_world(costs)
    node = PayloadNode(index=1, payload=payload_for_size(object_size))
    provider.export(node, name="obj")

    start = world.clock.now()
    replica = consumer.replicate("obj")
    consumer.put_back(replica)
    setup = world.clock.now() - start

    # One RMI round trip, measured on the same world.
    stub = consumer.remote_stub("obj")
    start = world.clock.now()
    stub.get_index()
    rmi_each = world.clock.now() - start

    for n in invocations:
        if setup + n * costs.local_invoke_s < n * rmi_each:
            return n
    return None


def _lmi_setup_ms(object_size: int, costs: CostModel) -> float:
    world, provider, consumer = _two_site_world(costs)
    provider.export(
        PayloadNode(index=1, payload=payload_for_size(object_size)), name="obj"
    )
    start = world.clock.now()
    replica = consumer.replicate("obj")
    consumer.put_back(replica)
    return (world.clock.now() - start) * 1e3
