"""Failover bench: feed lag, live join, promotion MTTR (PR 10).

Three questions about the change-feed layer, on the deterministic
loopback world so every number is exact simulated time:

1. **Steady-state lag** — with a primary and two followers under a
   random-write load, how far behind (in journal serials) do followers
   run?  Pushes are synchronous per event on this transport, so the
   expected answer is zero; any positive lag is a delivery regression.
2. **Live join** — how long does a third follower take to join the
   group *while the write load keeps running*, and does the write path
   observe any of it?
3. **Promotion MTTR** — the primary dies under load; measure the time
   from death to the first write acknowledged by the new primary, and
   assert the headline durability claim: zero acknowledged writes lost
   (an acked write-through survived because its feed echo landed at the
   acking follower before the ack, and the highest-serial follower won
   the election).
"""

from __future__ import annotations

import random

from repro.bench.workloads import PayloadNode, payload_for_size
from repro.core.meta import obi_id_of
from repro.core.runtime import World
from repro.feed.failover import fail_over

DEFAULT_OBJECTS = 32
DEFAULT_WRITES = 150
DEFAULT_OBJECT_SIZE = 64
DEFAULT_SEED = 20021


def failover_report(
    *,
    objects: int = DEFAULT_OBJECTS,
    writes: int = DEFAULT_WRITES,
    object_size: int = DEFAULT_OBJECT_SIZE,
    seed: int = DEFAULT_SEED,
) -> dict:
    """One full run: steady state, live join, crash, promotion, resume."""
    rng = random.Random(seed)
    world = World.loopback(seed=seed)
    world.create_site("NS")  # the name service must outlive the primary
    primary_site = world.create_site("P")
    masters = []
    for index in range(objects):
        node = PayloadNode(index=index, payload=payload_for_size(object_size))
        primary_site.export(node, name=f"node-{index}")
        masters.append(node)
    primary = primary_site.feed_primary()
    f1 = world.create_site("F1").feed_follow("P")
    f2 = world.create_site("F2").feed_follow("P")

    def write_once(round_index: int) -> None:
        node = rng.choice(masters)
        node.set_payload(payload_for_size(object_size))
        node.index = round_index
        primary_site.touch(node)

    def lag_of(follower) -> int:
        return int(follower.site.feed_stats.snapshot()["lag_serials"])

    # -- 1: steady-state lag under load --------------------------------
    max_lag = 0
    for round_index in range(writes):
        write_once(round_index)
        max_lag = max(max_lag, lag_of(f1), lag_of(f2))
    steady = {
        "writes": writes,
        "max_lag_serials": max_lag,
        "final_lag_serials": max(lag_of(f1), lag_of(f2)),
    }

    # -- 2: live join while the writes keep coming ----------------------
    join_start = world.clock.now()
    f3 = world.create_site("F3").feed_follow("P")
    join_ms = (world.clock.now() - join_start) * 1e3
    for round_index in range(writes, writes + 20):
        write_once(round_index)
    live_join = {
        "join_wall_clock_ms": round(join_ms, 3),
        "mirrors_after_join": sum(1 for _ in f3.site.iter_masters()),
        "lag_after_join_serials": lag_of(f3),
    }

    # -- 3: promotion MTTR and acked-write durability -------------------
    # Acknowledge writes *at a follower* (write-through: the ack means
    # the feed echo landed locally), then crash the primary.
    acked_values = []
    for round_index in range(5):
        mirror = f1.site.master_object_for(obi_id_of(masters[round_index]))
        mirror.index = 10_000 + round_index
        f1.put_through(mirror)
        acked_values.append((obi_id_of(mirror), mirror.index))
    primary.detach()  # the crash
    crash = world.clock.now()
    reply = fail_over([f1, f2, f3], reason="bench: primary crashed")
    new_primary_site = world.sites[reply.site_id]
    survivor = next(f for f in (f1, f2, f3) if f.site.name != reply.site_id)
    resumed = new_primary_site.master_object_for(acked_values[0][0])
    resumed.index = 99_999
    new_primary_site.touch(resumed)  # first post-failover write fans out
    mttr_ms = (world.clock.now() - crash) * 1e3
    lost = sum(
        1
        for oid, value in acked_values
        if new_primary_site.master_object_for(oid).index
        not in (value, 99_999)  # the resume write overwrote the first one
    )
    echoed = survivor.site.master_object_for(acked_values[0][0])
    promotion = {
        "new_primary": reply.site_id,
        "epoch": reply.epoch,
        "mttr_ms": round(mttr_ms, 3),
        "acked_writes": len(acked_values),
        "acked_writes_lost": lost,
        "resume_write_fanned_out": bool(echoed is not None and echoed.index == 99_999),
    }

    return {
        "workload": (
            f"{objects} objects x {object_size} B, {writes} random writes, "
            "primary + 2 followers, live join + crash + promotion"
        ),
        "steady_state": steady,
        "live_join": live_join,
        "promotion": promotion,
    }
