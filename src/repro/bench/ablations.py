"""Ablation studies beyond the paper (DESIGN.md experiments A1–A4).

The paper's evaluation motivates three design choices — per-object proxy
pairs, demand-driven faulting, and programmer-chosen consistency — and
one engineering claim (the middleware is transport-agnostic).  Each
ablation isolates one of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.workloads import ListSpec, make_linked_list
from repro.core.interfaces import Cluster, Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World


# ----------------------------------------------------------------------
# A1: proxy-pair overhead, isolated
# ----------------------------------------------------------------------
@dataclass
class ProxyAblationRow:
    chunk: int
    per_object_ms: float
    clustered_ms: float
    pairs_per_object_mode: int
    pairs_cluster_mode: int

    @property
    def overhead_ratio(self) -> float:
        return self.per_object_ms / self.clustered_ms


def ablate_proxy_pairs(
    *, length: int = 1000, object_size: int = 64, chunks: tuple[int, ...] = (10, 100, 1000)
) -> list[ProxyAblationRow]:
    """Same fetch schedule, with and without per-object pairs.

    Everything else — bytes moved, RTTs, replica creation — is identical,
    so the difference is the cost of individually-updatable replicas.
    """
    rows = []
    for chunk in chunks:
        per_object = _timed_fetch(length, object_size, Incremental(chunk))
        clustered = _timed_fetch(length, object_size, Cluster(size=chunk))
        rows.append(
            ProxyAblationRow(
                chunk=chunk,
                per_object_ms=per_object[0],
                clustered_ms=clustered[0],
                pairs_per_object_mode=per_object[1],
                pairs_cluster_mode=clustered[1],
            )
        )
    return rows


def _timed_fetch(length: int, object_size: int, mode) -> tuple[float, int]:
    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.export(make_linked_list(ListSpec(length, object_size)), name="list")
    start = world.clock.now()
    node = consumer.replicate("list", mode=mode)
    pairs = consumer.gc_stats.proxies_created
    while node is not None:
        node = node.get_next()
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    pairs = max(pairs, consumer.gc_stats.proxies_created)
    return (world.clock.now() - start) * 1e3, pairs


# ----------------------------------------------------------------------
# A2: prefetching vs demand-driven faulting
# ----------------------------------------------------------------------
@dataclass
class PrefetchAblation:
    demand_total_ms: float
    demand_worst_invocation_ms: float
    prefetch_total_ms: float
    prefetch_worst_invocation_ms: float

    @property
    def latency_eliminated(self) -> bool:
        """The paper's footnote: perfect prefetching removes fault latency
        from the invocation path entirely."""
        return self.prefetch_worst_invocation_ms < self.demand_worst_invocation_ms / 100


def ablate_prefetch(*, length: int = 200, object_size: int = 1024, chunk: int = 10) -> PrefetchAblation:
    """Traverse a list demand-driven vs fully prefetched."""
    from repro.mobility.hoard import Hoard

    # Demand-driven: faults interleave with invocations.
    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.export(make_linked_list(ListSpec(length, object_size)), name="list")
    start = world.clock.now()
    node = consumer.replicate("list", mode=Incremental(chunk))
    demand_worst = 0.0
    while node is not None:
        before = world.clock.now()
        consumer.invoke_local(node, "get_index")
        demand_worst = max(demand_worst, world.clock.now() - before)
        node = _step(node, consumer)
    demand_total = world.clock.now() - start

    # Prefetched: background resolution first, pure LMI afterwards.
    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.export(make_linked_list(ListSpec(length, object_size)), name="list")
    root = consumer.replicate("list", mode=Incremental(chunk))
    Hoard(consumer).prefetch(root)
    start = world.clock.now()
    node = root
    prefetch_worst = 0.0
    while node is not None:
        before = world.clock.now()
        consumer.invoke_local(node, "get_index")
        prefetch_worst = max(prefetch_worst, world.clock.now() - before)
        node = _step(node, consumer)
    prefetch_total = world.clock.now() - start

    return PrefetchAblation(
        demand_total_ms=demand_total * 1e3,
        demand_worst_invocation_ms=demand_worst * 1e3,
        prefetch_total_ms=prefetch_total * 1e3,
        prefetch_worst_invocation_ms=prefetch_worst * 1e3,
    )


def _step(node: object, consumer) -> object:
    node = consumer.invoke_local(node, "get_next")
    if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
        node = node._obi_resolved
    return node


# ----------------------------------------------------------------------
# A3: consistency protocol cost
# ----------------------------------------------------------------------
@dataclass
class ConsistencyAblationRow:
    protocol: str
    total_ms: float
    network_bytes: int
    stale_reads: int


def ablate_consistency(
    *, writes: int = 50, reads_per_write: int = 5
) -> list[ConsistencyAblationRow]:
    """One writer site, one reader site, under four regimes.

    * ``poll`` — reader refreshes before every read (strong, chatty);
    * ``invalidation`` — reader refreshes only after an invalidation;
    * ``lease`` — reader trusts its replica for a lease window;
    * ``epidemic`` — master pushes every update, reads are always local.
    """
    from repro.bench.workloads import PayloadNode
    from repro.consistency import (
        InvalidationConsumer,
        InvalidationMaster,
        LeaseConsistency,
        ReadPolicy,
        UpdateDisseminator,
        UpdateSubscriber,
    )

    rows: list[ConsistencyAblationRow] = []

    def setup():
        world = World.loopback()
        master_site = world.create_site("M")
        writer = world.create_site("W")
        reader = world.create_site("R")
        node = PayloadNode(index=0, payload=b"x" * 256)
        master_site.export(node, name="obj")
        writer_replica = writer.replicate("obj")
        reader_replica = reader.replicate("obj")
        return world, master_site, writer, reader, writer_replica, reader_replica

    def drive(world, writer, reader, writer_replica, reader_replica, read_fn, after_write_fn=None):
        stale = 0
        start = world.clock.now()
        for i in range(1, writes + 1):
            writer_replica.index = i
            writer.put_back(writer_replica)
            if after_write_fn is not None:
                after_write_fn()
            for _ in range(reads_per_write):
                value = read_fn()
                if value != i:
                    stale += 1
        return (world.clock.now() - start) * 1e3, stale

    # poll
    world, _m, writer, reader, wr, rr = setup()
    bytes_before = world.network.stats.total_bytes

    def poll_read():
        reader.refresh(rr)
        return reader.invoke_local(rr, "get_index")

    total, stale = drive(world, writer, reader, wr, rr, poll_read)
    rows.append(
        ConsistencyAblationRow(
            "poll", total, world.network.stats.total_bytes - bytes_before, stale
        )
    )

    # invalidation
    world, master_site, writer, reader, wr, rr = setup()
    InvalidationMaster.export_on(master_site)
    consumer = InvalidationConsumer(reader, policy=ReadPolicy.REFRESH)
    consumer.track(rr)
    bytes_before = world.network.stats.total_bytes

    def inval_read():
        fresh = consumer.read(rr)
        return reader.invoke_local(fresh, "get_index")

    total, stale = drive(world, writer, reader, wr, rr, inval_read)
    rows.append(
        ConsistencyAblationRow(
            "invalidation", total, world.network.stats.total_bytes - bytes_before, stale
        )
    )

    # lease (short lease => bounded staleness)
    world, _m, writer, reader, wr, rr = setup()
    lease = LeaseConsistency(reader, duration=0.050, policy=ReadPolicy.REFRESH)
    lease.track(rr)
    bytes_before = world.network.stats.total_bytes

    def lease_read():
        fresh = lease.read(rr)
        return reader.invoke_local(fresh, "get_index")

    total, stale = drive(world, writer, reader, wr, rr, lease_read)
    rows.append(
        ConsistencyAblationRow(
            "lease-50ms", total, world.network.stats.total_bytes - bytes_before, stale
        )
    )

    # epidemic
    world, master_site, writer, reader, wr, rr = setup()
    UpdateDisseminator.export_on(master_site)
    subscriber = UpdateSubscriber(reader)
    subscriber.track(rr)
    bytes_before = world.network.stats.total_bytes

    def epidemic_read():
        return reader.invoke_local(rr, "get_index")

    total, stale = drive(world, writer, reader, wr, rr, epidemic_read)
    rows.append(
        ConsistencyAblationRow(
            "epidemic", total, world.network.stats.total_bytes - bytes_before, stale
        )
    )
    return rows


# ----------------------------------------------------------------------
# A4: transport sanity
# ----------------------------------------------------------------------
@dataclass
class TransportAblationRow:
    transport: str
    wall_seconds: float
    traversal_sum: int
    correct: bool


def ablate_transport(*, length: int = 50, object_size: int = 256) -> list[TransportAblationRow]:
    """The same workload on all three transports must agree bit-for-bit."""
    expected = length * (length - 1) // 2
    rows = []
    for name, factory in (
        ("loopback-sim", World.loopback),
        ("threaded", World.threaded),
        ("tcp", World.tcp),
    ):
        world = factory()
        try:
            provider = world.create_site("S2")
            consumer = world.create_site("S1")
            provider.export(make_linked_list(ListSpec(length, object_size)), name="list")
            wall_start = time.perf_counter()  # obilint: disable=OBI108 -- the transport ablation compares true wall time across transports
            node = consumer.replicate("list", mode=Incremental(10))
            total = 0
            while node is not None:
                total += node.get_index()
                node = _step(node, consumer)
            wall = time.perf_counter() - wall_start  # obilint: disable=OBI108 -- the transport ablation compares true wall time across transports
            rows.append(TransportAblationRow(name, wall, total, total == expected))
        finally:
            world.close()
    return rows
