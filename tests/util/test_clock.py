"""Tests for repro.util.clock."""

import time

import pytest

from repro.util.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=42.5).now() == 42.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == pytest.approx(1.75)

    def test_advance_zero_is_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)
        assert clock.now() == 0.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(10)
        clock.reset()
        assert clock.now() == 0.0
        clock.reset(5.0)
        assert clock.now() == 5.0

    def test_elapsed_since(self):
        clock = SimClock()
        start = clock.now()
        clock.advance(3.0)
        assert clock.elapsed_since(start) == pytest.approx(3.0)

    def test_thread_safety_smoke(self):
        import threading

        clock = SimClock()

        def spin():
            for _ in range(1000):
                clock.advance(0.001)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == pytest.approx(4.0)


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_advance_without_sleep_is_noop(self):
        clock = WallClock(sleep=False)
        before = time.perf_counter()
        clock.advance(0.5)
        assert time.perf_counter() - before < 0.1

    def test_advance_with_sleep_sleeps(self):
        clock = WallClock(sleep=True)
        before = time.perf_counter()
        clock.advance(0.02)
        assert time.perf_counter() - before >= 0.015

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1)
