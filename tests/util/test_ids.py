"""Tests for repro.util.ids."""

import threading

from repro.util.ids import IdGenerator, new_object_id, new_request_id, new_site_id


class TestIdGenerator:
    def test_prefix_and_monotonic(self):
        gen = IdGenerator("thing")
        first, second = gen(), gen()
        assert first.startswith("thing:")
        assert first != second
        assert int(first.split(":")[1]) < int(second.split(":")[1])

    def test_reset_restarts(self):
        gen = IdGenerator("x")
        gen()
        gen.reset()
        assert gen() == "x:1"

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator("t")
        seen: list[str] = []
        lock = threading.Lock()

        def take():
            local = [gen() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=take) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 2000


class TestModuleGenerators:
    def test_distinct_prefixes(self):
        assert new_site_id().startswith("site:")
        assert new_object_id().startswith("obj:")
        assert new_request_id().startswith("req:")

    def test_uniqueness_across_calls(self):
        ids = {new_object_id() for _ in range(100)}
        assert len(ids) == 100
