"""Tests for the exception hierarchy."""

import pytest

from repro.util import errors


def test_all_errors_derive_from_obiwan_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj.__module__ == errors.__name__:
            assert issubclass(obj, errors.ObiwanError), name


def test_disconnected_is_transport_error():
    assert issubclass(errors.DisconnectedError, errors.TransportError)


def test_object_fault_is_replication_error():
    assert issubclass(errors.ObjectFaultError, errors.ReplicationError)


def test_stale_replica_is_consistency_error():
    assert issubclass(errors.StaleReplicaError, errors.ConsistencyError)


def test_cluster_error_is_replication_error():
    assert issubclass(errors.ClusterError, errors.ReplicationError)


def test_disconnected_voluntary_flag():
    assert errors.DisconnectedError().voluntary is None
    assert errors.DisconnectedError("x", voluntary=True).voluntary is True
    assert errors.DisconnectedError("x", voluntary=False).voluntary is False


def test_remote_error_carries_remote_context():
    err = errors.RemoteError("boom", remote_type="ValueError", remote_traceback="tb")
    assert err.remote_type == "ValueError"
    assert err.remote_traceback == "tb"
    assert "boom" in str(err)


def test_transaction_aborted_conflicts_are_tuple():
    err = errors.TransactionAborted("no", conflicts=[("a", 1, 2)])
    assert err.conflicts == (("a", 1, 2),)


def test_catching_base_catches_everything():
    with pytest.raises(errors.ObiwanError):
        raise errors.EncapsulationError("nope")
