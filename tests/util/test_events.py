"""Tests for the event bus."""

import pytest

from repro.util.events import EventBus


def test_publish_reaches_subscriber():
    bus = EventBus()
    hits = []
    bus.subscribe("topic", lambda *a, **k: hits.append((a, k)))
    count = bus.publish("topic", 1, key="v")
    assert count == 1
    assert hits == [((1,), {"key": "v"})]


def test_publish_without_subscribers_returns_zero():
    assert EventBus().publish("nobody") == 0


def test_handlers_run_in_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe("t", lambda: order.append("first"))
    bus.subscribe("t", lambda: order.append("second"))
    bus.publish("t")
    assert order == ["first", "second"]


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    hits = []
    unsubscribe = bus.subscribe("t", lambda: hits.append(1))
    bus.publish("t")
    unsubscribe()
    bus.publish("t")
    assert hits == [1]
    unsubscribe()  # second call is harmless


def test_topics_are_independent():
    bus = EventBus()
    hits = []
    bus.subscribe("a", lambda: hits.append("a"))
    bus.subscribe("b", lambda: hits.append("b"))
    bus.publish("a")
    assert hits == ["a"]


def test_handler_exception_propagates():
    bus = EventBus()

    def bad():
        raise RuntimeError("handler bug")

    bus.subscribe("t", bad)
    with pytest.raises(RuntimeError):
        bus.publish("t")


def test_subscriber_count():
    bus = EventBus()
    assert bus.subscriber_count("t") == 0
    bus.subscribe("t", lambda: None)
    bus.subscribe("t", lambda: None)
    assert bus.subscriber_count("t") == 2


def test_mutation_during_publish_is_safe():
    bus = EventBus()
    hits = []

    def self_removing():
        hits.append(1)
        remove()

    remove = bus.subscribe("t", self_removing)
    bus.publish("t")
    bus.publish("t")
    assert hits == [1]
