"""Tests for the site event logger."""

import io

from repro.mobility.connectivity import ConnectivityManager
from repro.util.log import SiteLogger
from tests.models import Counter, make_chain


def test_logs_the_replication_lifecycle(zsites):
    provider, consumer = zsites
    with SiteLogger(consumer) as log:
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.increment()
        consumer.put_back(replica)
        consumer.refresh(replica)

    assert log.matching("replicate")
    assert log.matching("refresh")
    assert len(log) >= 2


def test_provider_side_events(zsites):
    provider, consumer = zsites
    with SiteLogger(provider) as log:
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.increment()
        consumer.put_back(replica)
    assert log.matching("export")
    assert log.matching("put")
    assert "v2" in log.matching("put")[0]


def test_fault_events_logged(zsites):
    provider, consumer = zsites
    provider.export(make_chain(3), name="chain")
    with SiteLogger(consumer) as log:
        head = consumer.replicate("chain")
        head.get_next().get_index()
    assert log.matching("fault")
    assert "resolved" in log.matching("fault")[0]


def test_connectivity_events_logged(zsites):
    _provider, consumer = zsites
    manager = ConnectivityManager(consumer)
    with SiteLogger(consumer) as log:
        manager.go_offline(voluntary=True)
        manager.go_online()
    assert log.matching("offline (voluntary)")
    assert log.matching("online")


def test_stream_output(zsites):
    provider, consumer = zsites
    buffer = io.StringIO()
    with SiteLogger(consumer, stream=buffer):
        provider.export(Counter(0), name="c2")
        consumer.replicate("c2")
    assert "replicate" in buffer.getvalue()
    assert consumer.name in buffer.getvalue()


def test_close_stops_logging(zsites):
    provider, consumer = zsites
    log = SiteLogger(consumer)
    provider.export(Counter(0), name="c3")
    consumer.replicate("c3")
    count = len(log)
    log.close()
    consumer.replicate("c3")
    assert len(log) == count


def test_ring_capacity(zsites):
    provider, consumer = zsites
    master = Counter(0)
    provider.export(master, name="c4")
    with SiteLogger(provider, capacity=5) as log:
        replica = consumer.replicate("c4")
        for _ in range(20):
            consumer.put_back(replica)
        assert len(log) == 5


def test_lines_carry_trace_context_when_tracing(zsites):
    provider, consumer = zsites
    collector = consumer.enable_tracing()
    provider.export(make_chain(3), name="chain-log")
    with SiteLogger(consumer) as log:
        head = consumer.replicate("chain-log")
        head.get_next().get_index()

    [fault_line] = log.matching("fault")
    [fault_span] = [s for s in collector.spans() if s.kind == "fault"]
    # the suffix is the active [trace_id/span_id] — grep-joins with exports
    assert f"[{fault_span.trace_id}/" in fault_line
    assert fault_span.trace_id.startswith("trace:")


def test_lines_plain_without_tracing(zsites):
    provider, consumer = zsites
    with SiteLogger(consumer) as log:
        provider.export(Counter(0), name="c-notrace")
        consumer.replicate("c-notrace")
    assert not any("[trace:" in line for line in log.lines)
