"""Tests for byte-size estimation and formatting."""

import pytest

from repro.util.sizes import estimate_payload_size, format_bytes


class TestEstimate:
    def test_primitives_have_positive_size(self):
        for value in (None, True, False, 0, 3.14, "", "hello", b"bytes"):
            assert estimate_payload_size(value) > 0

    def test_strings_scale_with_content(self):
        assert estimate_payload_size("x" * 1000) > estimate_payload_size("x") + 900

    def test_bytes_scale_with_content(self):
        assert estimate_payload_size(b"\0" * 4096) >= 4096

    def test_unicode_counts_encoded_bytes(self):
        assert estimate_payload_size("é" * 10) >= 20

    def test_containers_sum_members(self):
        single = estimate_payload_size("abcd")
        assert estimate_payload_size(["abcd"] * 10) > 9 * single

    def test_dict_counts_keys_and_values(self):
        d = {"key": "value"}
        assert estimate_payload_size(d) > estimate_payload_size("key")

    def test_object_uses_attributes(self):
        class Thing:
            def __init__(self):
                self.data = "x" * 500

        assert estimate_payload_size(Thing()) > 500

    def test_cycles_terminate(self):
        lst: list = []
        lst.append(lst)
        assert estimate_payload_size(lst) > 0

    def test_big_int_larger_than_small(self):
        assert estimate_payload_size(2**200) > estimate_payload_size(1)


class TestFormatBytes:
    @pytest.mark.parametrize(
        ("count", "expected"),
        [
            (0, "0 B"),
            (64, "64 B"),
            (1023, "1023 B"),
            (1024, "1 KB"),
            (65536, "64 KB"),
            (1024 * 1024, "1 MB"),
            (3 * 1024**3, "3 GB"),
        ],
    )
    def test_exact_values(self, count, expected):
        assert format_bytes(count) == expected

    def test_fractional(self):
        assert format_bytes(1536) == "1.5 KB"
