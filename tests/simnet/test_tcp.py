"""Tests for the localhost TCP transport."""

import os
import threading

import pytest

from repro.simnet.tcp import TcpNetwork
from repro.util.clock import WallClock
from repro.util.errors import DisconnectedError, TransportError


@pytest.fixture
def net():
    network = TcpNetwork(WallClock())
    yield network
    network.close()


def _echo(message):
    return b"echo:" + message.payload


class TestBasics:
    def test_request_response_over_sockets(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"hello") == b"echo:hello"

    def test_large_payload_roundtrip(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        blob = bytes(range(256)) * 4096  # 1 MiB
        assert net.call("a", "b", blob) == b"echo:" + blob

    def test_binary_safety(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", lambda m: m.payload[::-1])
        payload = b"\x00\x01\xff\xfe\n\r\0"
        assert net.call("a", "b", payload) == payload[::-1]

    def test_each_site_gets_a_port(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.port_of("a") != net.port_of("b")
        with pytest.raises(TransportError):
            net.port_of("ghost")

    def test_cast_delivered(self, net):
        received = []
        done = threading.Event()

        def on_cast(message):
            received.append(message.payload)
            done.set()

        net.attach("a", lambda m: None)
        net.attach("b", on_cast)
        net.cast("a", "b", b"fire")
        assert done.wait(2.0)
        assert received == [b"fire"]


class TestFailureModes:
    def test_handler_exception_reported(self, net):
        net.attach("a", lambda m: None)

        def bad(message):
            raise ValueError("remote bug")

        net.attach("b", bad)
        with pytest.raises(TransportError, match="remote bug"):
            net.call("a", "b", b"x")

    def test_detached_site_unreachable(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.detach("b")
        with pytest.raises(TransportError):
            net.call("a", "b", b"x")

    def test_logical_disconnection_enforced(self, net):
        """A 'mobile' site refuses traffic even though the socket works."""
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.disconnect("b", voluntary=True)
        with pytest.raises(DisconnectedError):
            net.call("a", "b", b"x")
        net.reconnect("b")
        assert net.call("a", "b", b"y") == b"echo:y"

    def test_pooled_connection_reused_across_calls(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        for i in range(4):
            assert net.call("a", "b", b"ping%d" % i) == b"echo:ping%d" % i
        assert net.pool_stats.total_created == 1
        assert net.pool_stats.total_reused == 3
        assert net.pool_stats.reused_from("a") == 3
        assert net.pool_stats.reused_from("b") == 0

    def test_reconnect_after_peer_detach_and_reattach(self, net):
        """Pooled sockets to a detached peer are dropped; a re-attached
        peer (new port) is reachable again through a fresh connection."""
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"one") == b"echo:one"
        net.detach("b")
        with pytest.raises(TransportError):
            net.call("a", "b", b"gone")
        net.attach("b", _echo)
        assert net.call("a", "b", b"two") == b"echo:two"
        # Both successful calls opened fresh sockets: the pooled one from
        # before the detach must not have been reused against the new port.
        assert net.pool_stats.total_created == 2

    def test_stale_pooled_socket_retried_transparently(self, net):
        """A pooled connection the server side has since closed must not
        surface as an error: the caller retries on a fresh socket."""
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"one") == b"echo:one"
        # Kill the pooled socket behind the pool's back.
        with net._pool_lock:
            [pooled] = net._pool[("a", "b")]
        pooled.close()
        assert net.call("a", "b", b"two") == b"echo:two"

    def test_concurrent_clients(self, net):
        net.attach("server", _echo)
        results = {}
        errors = []

        def client(name):
            try:
                net.attach(name, lambda m: None)
                results[name] = net.call(name, "server", name.encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(f"c{i}",)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 6


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


class TestShutdownRaces:
    def test_accept_thread_joined_on_detach(self):
        net = TcpNetwork(WallClock())
        try:
            net.attach("a", _echo)
            thread = net._accept_threads["a"]
            assert thread.is_alive()
            net.detach("a")
            assert not thread.is_alive()
            assert "a" not in net._accept_threads
        finally:
            net.close()

    def test_release_refuses_stale_incarnation(self):
        """A socket checked out while its peer detaches and re-attaches
        (new port) must not be pooled on release — it points at a listener
        that no longer exists."""
        net = TcpNetwork(WallClock())
        try:
            net.attach("a", lambda m: None)
            net.attach("b", _echo)
            sock, _reused = net._acquire("a", "b")
            net.detach("b")
            net.attach("b", _echo)  # new incarnation, new port
            net._release("a", "b", sock)
            with net._pool_lock:
                assert not net._pool.get(("a", "b"))
            # A call still works: it opens a fresh socket to the new port.
            assert net.call("a", "b", b"hi") == b"echo:hi"
        finally:
            net.close()

    def test_close_under_load_leaks_no_fds(self):
        """Hammer a network with calls while detaching sites, then close;
        every socket and accept thread must be reclaimed."""
        baseline = _open_fds()
        stop = threading.Event()
        for _round in range(3):
            net = TcpNetwork(WallClock())
            net.attach("server", _echo)
            errors = []

            def client(name, network=net):
                network.attach(name, lambda m: None)
                while not stop.is_set():
                    try:
                        network.call(name, "server", b"x", timeout=2.0)
                    except TransportError:
                        return  # server detached/closed under us: expected

            threads = [
                threading.Thread(target=client, args=(f"c{i}",), daemon=True)
                for i in range(4)
            ]
            for t in threads:
                t.start()
            # Let some traffic flow, then tear down mid-flight.
            deadline = 50
            while net.pool_stats.total_created + net.pool_stats.total_reused < 8:
                deadline -= 1
                if deadline <= 0:
                    break
                threading.Event().wait(0.01)
            net.detach("server")
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
            net.close()
            stop.clear()
            assert not errors
            accept_threads = [
                t
                for t in threading.enumerate()
                if t.name.startswith("tcp-") and not t.name.startswith("tcp-conn-")
            ]
            assert not accept_threads
        # Allow a little slack for interpreter-internal fds, but pooled
        # sockets and listeners (dozens across three rounds) must be gone.
        assert _open_fds() <= baseline + 3
