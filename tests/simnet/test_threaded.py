"""Tests for the threaded transport."""

import threading
import time

import pytest

from repro.simnet.threaded import ThreadedNetwork
from repro.util.clock import WallClock
from repro.util.errors import DisconnectedError, TransportError


@pytest.fixture
def net():
    network = ThreadedNetwork(WallClock())
    yield network
    network.close()


def _echo(message):
    return b"echo:" + message.payload


class TestBasics:
    def test_request_response(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"hi") == b"echo:hi"

    def test_many_sequential_calls(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        for index in range(50):
            payload = f"m{index}".encode()
            assert net.call("a", "b", payload) == b"echo:" + payload

    def test_cast_delivered(self, net):
        received = []
        done = threading.Event()

        def on_cast(message):
            received.append(message.payload)
            done.set()

        net.attach("a", lambda m: None)
        net.attach("b", on_cast)
        net.cast("a", "b", b"fire")
        assert done.wait(2.0)
        assert received == [b"fire"]

    def test_handler_exception_becomes_transport_error(self, net):
        net.attach("a", lambda m: None)

        def bad(message):
            raise ValueError("server bug")

        net.attach("b", bad)
        with pytest.raises(TransportError, match="server bug"):
            net.call("a", "b", b"x")

    def test_handler_none_response_is_error(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", lambda m: None)
        with pytest.raises(TransportError):
            net.call("a", "b", b"x")


class TestConcurrency:
    def test_parallel_callers(self, net):
        calls = []

        def slowish(message):
            time.sleep(0.01)
            calls.append(message.payload)
            return message.payload.upper()

        net.attach("server", slowish)
        results: dict[str, bytes] = {}
        errors: list[Exception] = []

        def client(name: str):
            try:
                net.attach(name, lambda m: None)
                results[name] = net.call(name, "server", name.encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(f"c{i}",)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == {f"c{i}": f"c{i}".upper().encode() for i in range(8)}

    def test_reentrant_call_from_handler(self, net):
        """b's handler calls c while serving a — must not deadlock."""
        net.attach("a", lambda m: None)
        net.attach("c", _echo)

        def relay(message):
            inner = net.call("b", "c", b"inner:" + message.payload)
            return b"relay:" + inner

        net.attach("b", relay)
        assert net.call("a", "b", b"x") == b"relay:echo:inner:x"


class TestFailureModes:
    def test_timeout_when_handler_hangs(self, net):
        net.attach("a", lambda m: None)

        def hang(message):
            time.sleep(5)
            return b""

        net.attach("b", hang)
        with pytest.raises(TransportError, match="timed out"):
            net.call("a", "b", b"x", timeout=0.1)

    def test_disconnection_respected(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.disconnect("b")
        with pytest.raises(DisconnectedError):
            net.call("a", "b", b"x")

    def test_close_unblocks_waiters(self, net):
        net.attach("a", lambda m: None)

        def hang(message):
            time.sleep(5)
            return b""

        net.attach("b", hang)
        failure: list[Exception] = []

        def caller():
            try:
                net.call("a", "b", b"x", timeout=4)
            except TransportError as exc:
                failure.append(exc)

        thread = threading.Thread(target=caller)
        thread.start()
        time.sleep(0.05)
        net.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert failure
