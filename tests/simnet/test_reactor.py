"""Tests for the obireactor transport: loop, pipelining, negotiation."""

import threading
import time

import pytest

from repro.simnet import tcp as tcp_module
from repro.simnet.message import MessageKind
from repro.simnet.reactor import (
    _PERROR,
    _PREQUEST,
    _PRESPONSE,
    ReactorNetwork,
    _FrameParser,
    _pack_frame,
)
from repro.simnet.tcp import TcpNetwork
from repro.util.clock import WallClock
from repro.util.errors import TransportError


@pytest.fixture
def net():
    network = ReactorNetwork(WallClock())
    yield network
    network.close()


def _echo(message):
    return b"echo:" + message.payload


class TestFrameParser:
    def test_single_frame(self):
        parser = _FrameParser()
        frames = parser.feed(_pack_frame(_PREQUEST, "req:1", "a", "b", b"hello"))
        assert frames == [(_PREQUEST, "req:1", "a", "b", b"hello")]

    def test_split_delivery(self):
        data = _pack_frame(_PRESPONSE, "req:2", "b", "a", b"x" * 1000)
        parser = _FrameParser()
        for i in range(0, len(data), 7):
            frames = parser.feed(data[i : i + 7])
        assert frames == [(_PRESPONSE, "req:2", "b", "a", b"x" * 1000)]

    def test_coalesced_frames(self):
        one = _pack_frame(_PREQUEST, "req:1", "a", "b", b"1")
        two = _pack_frame(_PERROR, "req:2", "a", "b", b"2")
        parser = _FrameParser()
        assert len(parser.feed(one + two)) == 2

    def test_empty_payload(self):
        parser = _FrameParser()
        [(_, rid, _, _, payload)] = parser.feed(
            _pack_frame(_PREQUEST, "req:3", "a", "b", b"")
        )
        assert rid == "req:3" and payload == b""


class TestBasics:
    def test_request_response(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"hello") == b"echo:hello"

    def test_first_call_probes_then_pipelines(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert not net.supports_pipelining("a", "b")
        net.call("a", "b", b"probe")
        assert net.supports_pipelining("a", "b")
        before = net.reactor_stats.snapshot()["frames_pipelined"]
        net.call("a", "b", b"fast")
        assert net.reactor_stats.snapshot()["frames_pipelined"] == before + 1

    def test_large_payload_roundtrip(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        blob = bytes(range(256)) * 4096  # 1 MiB
        assert net.call("a", "b", blob) == b"echo:" + blob
        assert net.call("a", "b", blob) == b"echo:" + blob  # pipelined round

    def test_handler_exception_reported(self, net):
        net.attach("a", lambda m: None)

        def bad(message):
            raise ValueError("remote bug")

        net.attach("b", bad)
        with pytest.raises(TransportError, match="remote bug"):
            net.call("a", "b", b"x")
        # And again on the pipelined path.
        with pytest.raises(TransportError, match="remote bug"):
            net.call("a", "b", b"x")

    def test_cast_delivered_both_paths(self, net):
        received = []
        done = threading.Event()

        def on_cast(message):
            if message.kind is MessageKind.CAST:
                received.append(message.payload)
                if len(received) == 2:
                    done.set()
            return b"ok"

        net.attach("a", lambda m: None)
        net.attach("b", on_cast)
        net.cast("a", "b", b"legacy-path")  # verdict unknown: pooled cast
        net.call("a", "b", b"confirm")  # probe: turns pipelining on
        assert net.supports_pipelining("a", "b")
        net.cast("a", "b", b"pipelined-path")
        assert done.wait(5.0)
        assert set(received) == {b"legacy-path", b"pipelined-path"}

    def test_nested_rmi_from_handler(self, net):
        """Dispatch runs off the loop thread, so a handler can call back
        out through the same network without deadlocking the loop."""
        net.attach("a", lambda m: None)
        net.attach("leaf", _echo)

        def relay(message):
            return net.call("relay", "leaf", message.payload)

        net.attach("relay", relay)
        assert net.call("a", "relay", b"deep") == b"echo:deep"
        # Again once every hop is pipelined.
        assert net.call("a", "relay", b"deeper") == b"echo:deeper"

    def test_detach_then_reattach(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.call("a", "b", b"one")
        net.detach("b")
        with pytest.raises(TransportError):
            net.call("a", "b", b"gone")
        net.attach("b", _echo)
        assert net.call("a", "b", b"two") == b"echo:two"


class TestPipelinedSemantics:
    def test_out_of_order_completion(self, net):
        """A slow request must not hold back later requests on the same
        channel; replies complete in server finish order, matched by id."""
        release = threading.Event()

        def handler(message):
            if message.payload == b"slow":
                release.wait(10.0)
            return b"done:" + message.payload

        net.attach("a", lambda m: None)
        net.attach("b", handler)
        net.call("a", "b", b"warm")  # confirm pipelining
        slow = net.submit("a", "b", b"slow")
        fast = net.submit("a", "b", b"fast")
        assert fast.result(5.0) == b"done:fast"
        assert not slow.done()
        release.set()
        assert slow.result(5.0) == b"done:slow"

    def test_timeout_poisons_only_its_own_request(self, net):
        release = threading.Event()

        def handler(message):
            if message.payload == b"stuck":
                release.wait(10.0)
            return message.payload

        net.attach("a", lambda m: None)
        net.attach("b", handler)
        net.call("a", "b", b"warm")
        stuck = net.submit("a", "b", b"stuck")
        sibling = net.submit("a", "b", b"sibling")
        with pytest.raises(TransportError, match="timed out"):
            stuck.result(0.2)
        # The sibling on the same channel is unharmed...
        assert sibling.result(5.0) == b"sibling"
        # ...and so is the channel itself: new requests still flow, and
        # the stuck request's straggling response is dropped silently.
        release.set()
        assert net.submit("a", "b", b"after").result(5.0) == b"after"

    def test_cancellation_mid_flight(self, net):
        release = threading.Event()

        def handler(message):
            release.wait(10.0)
            return message.payload

        net.attach("a", lambda m: None)
        net.attach("b", handler)
        release.set()
        net.call("a", "b", b"warm")
        release.clear()
        doomed = net.submit("a", "b", b"doomed")
        witness = net.submit("a", "b", b"witness")
        assert doomed.cancel()
        with pytest.raises(TransportError, match="cancelled"):
            doomed.result(1.0)
        release.set()
        assert witness.result(5.0) == b"witness"
        # Cancelling a settled reply is a no-op.
        assert not witness.cancel()

    def test_channel_failure_fails_all_pending(self, net):
        hold = threading.Event()

        def handler(message):
            hold.wait(10.0)
            return message.payload

        net.attach("a", lambda m: None)
        net.attach("b", handler)
        hold.set()
        net.call("a", "b", b"warm")
        hold.clear()
        pendings = [net.submit("a", "b", b"p%d" % i) for i in range(4)]
        net.detach("b")  # tears the channel down under the pending requests
        hold.set()
        for pending in pendings:
            with pytest.raises(TransportError):
                pending.result(5.0)

    def test_many_in_flight_on_one_connection(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.call("a", "b", b"warm")  # probe + confirm
        net.call("a", "b", b"open")  # first pipelined call opens the channel
        before = net.reactor_stats.snapshot()["connections_accepted"]
        replies = [net.submit("a", "b", b"n%d" % i) for i in range(200)]
        for i, reply in enumerate(replies):
            assert reply.result(10.0) == b"echo:n%d" % i
        stats = net.reactor_stats.snapshot()
        # All 200 shared the already-accepted channel: no new connections.
        assert stats["connections_accepted"] == before
        assert stats["frames_pipelined"] >= 200


class TestInterop:
    """Un-upgraded peers must never see a correlation-ID frame."""

    def test_legacy_server_never_sees_pipelined_kinds(self, monkeypatch):
        """Wire-level proof: record every frame kind the legacy
        thread-per-connection server decodes; none may be >= 5."""
        seen_kinds = []
        real_recv = tcp_module._recv_frame

        def spying_recv(sock):
            message = real_recv(sock)
            seen_kinds.append(message.kind)
            return message

        monkeypatch.setattr(tcp_module, "_recv_frame", spying_recv)
        net = ReactorNetwork(WallClock(), legacy_server_sites=("old",))
        try:
            net.attach("new", lambda m: None)
            net.attach("old", _echo)
            for i in range(5):
                assert net.call("new", "old", b"n%d" % i) == b"echo:n%d" % i
            net.cast("new", "old", b"fire")
            time.sleep(0.1)
        finally:
            net.close()
        assert seen_kinds, "spy never saw traffic"
        # The legacy decoder would KeyError on kinds 5-7 before this
        # assert could even run; the verdict cache is the second witness.
        assert not net.supports_pipelining("new", "old")
        assert "pipelined_frames" in net.peer_caps.snapshot().get("old", ())

    def test_legacy_peer_request_ids_round_trip_unmarked(self):
        """The probe marker lives inside the request id, which a legacy
        server already echoes verbatim — handlers see the marked id, but
        the response correlates fine and later calls drop the marker."""
        net = ReactorNetwork(WallClock(), legacy_server_sites=("old",))
        try:
            rids = []

            def recorder(message):
                rids.append(message.request_id)
                return b"ok"

            net.attach("new", lambda m: None)
            net.attach("old", recorder)
            net.call("new", "old", b"one")
            net.call("new", "old", b"two")
        finally:
            net.close()
        assert rids[0].startswith("pf?")  # the one-time probe
        assert not rids[1].startswith("pf?")  # verdict cached: no marker

    def test_plain_tcp_client_against_reactor_server(self):
        """A wholly un-upgraded client network (plain TcpNetwork) can
        call into a reactor-served site: the loop speaks legacy kinds."""
        server_net = ReactorNetwork(WallClock())
        client_net = TcpNetwork(WallClock())
        try:
            server_net.attach("provider", _echo)
            client_net.attach("consumer", lambda m: None)
            # Point the client's port directory at the reactor's listener.
            client_net._ports["provider"] = server_net.port_of("provider")
            client_net._handlers["provider"] = _echo  # route check only
            assert client_net.call("consumer", "provider", b"hi") == b"echo:hi"
            assert client_net.call("consumer", "provider", b"again") == b"echo:again"
        finally:
            client_net.close()
            server_net.close()

    def test_upgraded_peers_negotiate_exactly_once(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        for i in range(10):
            net.call("a", "b", b"n%d" % i)
        # One probe on the pooled path, everything after is pipelined.
        assert net.pool_stats.total_created == 1
        assert net.reactor_stats.snapshot()["frames_pipelined"] == 9


class TestBackpressure:
    def test_write_high_water_parks_writers(self):
        """Submits beyond the channel's high-water mark must park the
        caller until the loop drains — and then complete normally.

        The loop is held hostage on a posted gate so nothing can drain:
        the writer must hit the high-water mark deterministically rather
        than racing a loop that keeps getting faster."""
        net = ReactorNetwork(WallClock(), write_high_water=64 * 1024)
        try:
            net.attach("a", lambda m: None)
            net.attach("b", _echo)
            net.call("a", "b", b"warm")  # settle the pipelining verdict
            gate = threading.Event()
            net._loop.post(gate.wait)
            blob = b"x" * (48 * 1024)
            replies = []

            def writer():
                for _ in range(6):  # 288 KiB through a 64 KiB window
                    replies.append(net.submit("a", "b", blob))

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            for _ in range(1000):
                if net.reactor_stats.snapshot()["backpressure_waits"] >= 1:
                    break
                time.sleep(0.01)
            gate.set()
            thread.join(10.0)
            assert not thread.is_alive()
            for reply in replies:
                assert reply.result(10.0) == b"echo:" + blob
            assert net.reactor_stats.snapshot()["backpressure_waits"] >= 1
        finally:
            net.close()


class TestLifecycle:
    def test_close_stops_loop_and_workers(self):
        net = ReactorNetwork(WallClock())
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.call("a", "b", b"x")
        loop = net._loop
        net.close()
        assert not loop.is_alive()
        with pytest.raises(TransportError):
            net.call("a", "b", b"y")

    def test_concurrent_clients(self, net):
        net.attach("server", _echo)
        results = {}
        errors = []

        def client(name):
            try:
                net.attach(name, lambda m: None)
                for i in range(5):
                    results[(name, i)] = net.call(name, "server", name.encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(f"c{i}",)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 30
