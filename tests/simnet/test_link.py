"""Tests for link cost models."""

import random

import pytest

from repro.simnet.link import LAN_10MBPS, LOCAL, WAN, WIRELESS_GPRS, Link


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link(latency_s=-1, bandwidth_bps=1e6)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_bps=0)

    def test_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_bps=1, loss_probability=1.0)
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_bps=1, loss_probability=-0.1)


class TestTransferTime:
    def test_latency_only_for_zero_bytes(self):
        link = Link(latency_s=0.010, bandwidth_bps=1e6)
        assert link.transfer_time(0) == pytest.approx(0.010)

    def test_bandwidth_term(self):
        link = Link(latency_s=0.0, bandwidth_bps=8e6)  # 1 MB/s
        assert link.transfer_time(1_000_000) == pytest.approx(1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LOCAL.transfer_time(-1)

    def test_deterministic_without_jitter(self):
        assert LAN_10MBPS.transfer_time(1234) == LAN_10MBPS.transfer_time(1234)

    def test_jitter_bounded_and_random(self):
        link = Link(latency_s=0.001, bandwidth_bps=1e9, jitter_s=0.005)
        rng = random.Random(7)
        samples = [link.transfer_time(10, rng) for _ in range(50)]
        base = 0.001 + 80 / 1e9
        assert all(base <= s <= base + 0.005 for s in samples)
        assert len(set(samples)) > 1

    def test_calibration_lan_rmi_round_trip(self):
        """Two minimal frames over the LAN model cost ~2.8 ms — the
        paper's measured RMI time."""
        frame = 100  # small invocation frame incl. envelope
        round_trip = 2 * LAN_10MBPS.transfer_time(frame)
        assert round_trip == pytest.approx(2.8e-3, rel=0.05)


class TestDrops:
    def test_lossless_never_drops(self):
        assert not any(LAN_10MBPS.drops() for _ in range(100))

    def test_lossy_drops_sometimes(self):
        link = Link(latency_s=0, bandwidth_bps=1e6, loss_probability=0.5)
        rng = random.Random(1)
        outcomes = [link.drops(rng) for _ in range(200)]
        assert any(outcomes) and not all(outcomes)


class TestPresets:
    def test_ordering_of_preset_speeds(self):
        size = 10_000
        assert LOCAL.transfer_time(size) < LAN_10MBPS.transfer_time(size)
        assert LAN_10MBPS.transfer_time(size) < WAN.transfer_time(size)
        assert WAN.transfer_time(size) < WIRELESS_GPRS.transfer_time(size)
