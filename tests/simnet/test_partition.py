"""Tests for the connectivity map."""

import pytest

from repro.simnet.partition import ConnectivityMap


def test_initially_everyone_talks():
    cmap = ConnectivityMap()
    assert cmap.can_communicate("a", "b")


def test_self_communication_always_allowed():
    cmap = ConnectivityMap()
    cmap.disconnect("a")
    assert cmap.can_communicate("a", "a")


def test_disconnect_blocks_both_directions():
    cmap = ConnectivityMap()
    cmap.disconnect("a")
    assert not cmap.can_communicate("a", "b")
    assert not cmap.can_communicate("b", "a")
    assert cmap.is_disconnected("a")
    assert not cmap.is_disconnected("b")


def test_reconnect_restores():
    cmap = ConnectivityMap()
    cmap.disconnect("a")
    cmap.reconnect("a")
    assert cmap.can_communicate("a", "b")
    cmap.reconnect("a")  # idempotent


def test_voluntary_flag_recorded():
    cmap = ConnectivityMap()
    cmap.disconnect("a", voluntary=True)
    record = cmap.disconnection("a")
    assert record is not None and record.voluntary
    cmap.disconnect("b")
    assert cmap.disconnection("b").voluntary is False
    assert cmap.disconnection("c") is None


def test_blocking_disconnection_names_the_offline_site():
    cmap = ConnectivityMap()
    cmap.disconnect("b", voluntary=True)
    record = cmap.blocking_disconnection("a", "b")
    assert record is not None and record.site_id == "b"
    assert cmap.blocking_disconnection("a", "c") is None


def test_partition_blocks_cross_group_only():
    cmap = ConnectivityMap()
    cmap.partition({"a", "b"}, {"c"})
    assert not cmap.can_communicate("a", "c")
    assert not cmap.can_communicate("c", "b")
    assert cmap.can_communicate("a", "b")  # same side
    assert cmap.can_communicate("d", "a")  # outsiders unaffected


def test_heal_removes_partitions_but_not_disconnections():
    cmap = ConnectivityMap()
    cmap.partition({"a"}, {"b"})
    cmap.disconnect("c")
    cmap.heal()
    assert cmap.can_communicate("a", "b")
    assert not cmap.can_communicate("c", "a")


def test_overlapping_partition_rejected():
    cmap = ConnectivityMap()
    with pytest.raises(ValueError):
        cmap.partition({"a", "b"}, {"b", "c"})


def test_multiple_partitions_stack():
    cmap = ConnectivityMap()
    cmap.partition({"a"}, {"b"})
    cmap.partition({"a"}, {"c"})
    assert not cmap.can_communicate("a", "b")
    assert not cmap.can_communicate("a", "c")
    assert cmap.can_communicate("b", "c")
