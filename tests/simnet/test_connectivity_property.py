"""Property-based tests of the connectivity map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.partition import ConnectivityMap

SITES = ["a", "b", "c", "d"]
site = st.sampled_from(SITES)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("disconnect"), site, st.booleans()),
        st.tuples(st.just("reconnect"), site, st.booleans()),
        st.tuples(st.just("heal"), site, st.booleans()),
    ),
    max_size=30,
)


def apply_ops(cmap: ConnectivityMap, operations) -> set[str]:
    offline: set[str] = set()
    for op, target, flag in operations:
        if op == "disconnect":
            cmap.disconnect(target, voluntary=flag)
            offline.add(target)
        elif op == "reconnect":
            cmap.reconnect(target)
            offline.discard(target)
        else:
            cmap.heal()
    return offline


@given(ops)
@settings(max_examples=200, deadline=None)
def test_communication_is_symmetric(operations):
    cmap = ConnectivityMap()
    apply_ops(cmap, operations)
    for a in SITES:
        for b in SITES:
            assert cmap.can_communicate(a, b) == cmap.can_communicate(b, a)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_disconnect_model_matches_oracle(operations):
    cmap = ConnectivityMap()
    offline = apply_ops(cmap, operations)
    for a in SITES:
        assert cmap.is_disconnected(a) == (a in offline)
        for b in SITES:
            if a == b:
                assert cmap.can_communicate(a, b)
            else:
                expected = a not in offline and b not in offline
                assert cmap.can_communicate(a, b) == expected  # no partitions active


@given(ops)
@settings(max_examples=100, deadline=None)
def test_reconnect_all_restores_full_connectivity(operations):
    cmap = ConnectivityMap()
    apply_ops(cmap, operations)
    for name in SITES:
        cmap.reconnect(name)
    cmap.heal()
    assert all(cmap.can_communicate(a, b) for a in SITES for b in SITES)
