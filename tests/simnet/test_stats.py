"""Tests for traffic accounting."""

from repro.simnet.stats import NetworkStats


def test_record_accumulates_per_link():
    stats = NetworkStats()
    stats.record("a", "b", 100, 0.5)
    stats.record("a", "b", 50, 0.25)
    link = stats.link("a", "b")
    assert link.messages == 2
    assert link.bytes == 150
    assert link.transfer_seconds == 0.75


def test_directions_are_separate():
    stats = NetworkStats()
    stats.record("a", "b", 100, 0.1)
    stats.record("b", "a", 7, 0.1)
    assert stats.link("a", "b").bytes == 100
    assert stats.link("b", "a").bytes == 7


def test_bytes_between_sums_both_directions():
    stats = NetworkStats()
    stats.record("a", "b", 100, 0.0)
    stats.record("b", "a", 11, 0.0)
    assert stats.bytes_between("a", "b") == 111
    assert stats.bytes_between("b", "a") == 111
    assert stats.bytes_between("a", "c") == 0


def test_totals():
    stats = NetworkStats()
    stats.record("a", "b", 10, 0.1)
    stats.record("c", "d", 20, 0.2)
    assert stats.total_messages == 2
    assert stats.total_bytes == 30
    assert abs(stats.total_transfer_seconds - 0.3) < 1e-12


def test_drop_and_rejection_counters():
    stats = NetworkStats()
    stats.record_drop("a", "b")
    stats.record_rejected("a", "b")
    stats.record_rejected("a", "b")
    link = stats.link("a", "b")
    assert link.drops == 1
    assert link.rejected_disconnected == 2
    assert link.messages == 0


def test_reset_clears_everything():
    stats = NetworkStats()
    stats.record("a", "b", 10, 0.1)
    stats.reset()
    assert stats.total_messages == 0
    assert stats.total_bytes == 0
