"""Tests for the network trace recorder."""

import pytest

from repro.simnet.loopback import LoopbackNetwork
from repro.simnet.trace import TraceRecorder
from repro.util.clock import SimClock


@pytest.fixture
def net():
    network = LoopbackNetwork(SimClock())
    network.attach("a", lambda m: None)
    network.attach("b", lambda m: b"pong:" + m.payload)
    yield network
    network.close()


def test_records_request_and_response(net):
    with TraceRecorder(net) as trace:
        net.call("a", "b", b"ping")
    assert trace.sequence() == [("request", "a", "b"), ("response", "b", "a")]
    assert trace.round_trips() == 1


def test_records_casts(net):
    with TraceRecorder(net) as trace:
        net.cast("a", "b", b"one-way")
    assert trace.sequence() == [("cast", "a", "b")]
    assert trace.round_trips() == 0


def test_sizes_and_totals(net):
    with TraceRecorder(net) as trace:
        net.call("a", "b", b"x" * 100)
    assert trace.bytes_total() == sum(e.size for e in trace.events)
    assert trace.events[0].size >= 100


def test_between_filters_pairs(net):
    net.attach("c", lambda m: b"")
    with TraceRecorder(net) as trace:
        net.call("a", "b", b"1")
        net.call("a", "c", b"2")
    assert len(trace.between("a", "b")) == 2
    assert len(trace.between("a", "c")) == 2
    assert len(trace.between("b", "c")) == 0


def test_detach_stops_recording(net):
    trace = TraceRecorder(net)
    net.call("a", "b", b"seen")
    trace.detach()
    net.call("a", "b", b"unseen")
    assert len(trace) == 2  # request+response of the first call only


def test_tracing_does_not_change_costs(net):
    before = net.clock.now()
    net.call("a", "b", b"warm")
    untraced_cost = net.clock.now() - before

    with TraceRecorder(net):
        before = net.clock.now()
        net.call("a", "b", b"warm")
        traced_cost = net.clock.now() - before
    assert traced_cost == pytest.approx(untraced_cost)


def test_render_and_clear(net):
    with TraceRecorder(net) as trace:
        assert trace.render() == "(no traffic)"
        net.call("a", "b", b"x")
        assert "request" in trace.render()
        trace.clear()
        assert len(trace) == 0
