"""Tests for transport frames."""

import pytest

from repro.simnet.message import Message, MessageKind


def test_payload_must_be_bytes():
    with pytest.raises(TypeError):
        Message(kind=MessageKind.REQUEST, src="a", dst="b", payload="text")  # type: ignore[arg-type]


def test_request_ids_unique():
    a = Message(kind=MessageKind.REQUEST, src="a", dst="b", payload=b"")
    b = Message(kind=MessageKind.REQUEST, src="a", dst="b", payload=b"")
    assert a.request_id != b.request_id


def test_size_includes_header_envelope():
    empty = Message(kind=MessageKind.CAST, src="a", dst="b", payload=b"")
    loaded = Message(kind=MessageKind.CAST, src="a", dst="b", payload=b"x" * 100)
    assert empty.size > 0
    assert loaded.size == empty.size + 100


def test_response_swaps_direction_and_keeps_correlation():
    request = Message(kind=MessageKind.REQUEST, src="client", dst="server", payload=b"q")
    response = request.response(b"a")
    assert response.kind is MessageKind.RESPONSE
    assert (response.src, response.dst) == ("server", "client")
    assert response.request_id == request.request_id
    assert response.payload == b"a"


def test_error_frame():
    request = Message(kind=MessageKind.REQUEST, src="c", dst="s", payload=b"q")
    error = request.error(b"oops")
    assert error.kind is MessageKind.ERROR
    assert error.request_id == request.request_id
    assert (error.src, error.dst) == ("s", "c")


def test_messages_are_immutable():
    message = Message(kind=MessageKind.CAST, src="a", dst="b", payload=b"")
    with pytest.raises(AttributeError):
        message.src = "other"  # type: ignore[misc]
