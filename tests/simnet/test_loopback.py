"""Tests for the simulated-time loopback transport."""

import pytest

from repro.simnet.link import LAN_10MBPS, Link
from repro.simnet.loopback import LoopbackNetwork
from repro.util.clock import SimClock
from repro.util.errors import DisconnectedError, TransportError


@pytest.fixture
def net():
    clock = SimClock()
    network = LoopbackNetwork(clock, default_link=LAN_10MBPS)
    yield network
    network.close()


def _echo(message):
    return b"echo:" + message.payload


class TestCalls:
    def test_request_response(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        assert net.call("a", "b", b"hi") == b"echo:hi"

    def test_charges_simulated_time_both_ways(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        before = net.clock.now()
        net.call("a", "b", b"x" * 1000)
        elapsed = net.clock.now() - before
        request = LAN_10MBPS.transfer_time(1000 + 64)
        response = LAN_10MBPS.transfer_time(5 + 1000 + 64)
        assert elapsed == pytest.approx(request + response)

    def test_unknown_destination_raises(self, net):
        net.attach("a", lambda m: None)
        with pytest.raises(TransportError):
            net.call("a", "ghost", b"x")

    def test_handler_returning_none_raises(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", lambda m: None)
        with pytest.raises(TransportError):
            net.call("a", "b", b"x")

    def test_handler_exception_propagates_synchronously(self, net):
        net.attach("a", lambda m: None)

        def bad(message):
            raise RuntimeError("server bug")

        net.attach("b", bad)
        with pytest.raises(RuntimeError):
            net.call("a", "b", b"x")

    def test_stats_recorded(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.call("a", "b", b"payload")
        assert net.stats.link("a", "b").messages == 1
        assert net.stats.link("b", "a").messages == 1


class TestCasts:
    def test_cast_delivers_once(self, net):
        received = []
        net.attach("a", lambda m: None)
        net.attach("b", lambda m: received.append(m.payload))
        net.cast("a", "b", b"one-way")
        assert received == [b"one-way"]

    def test_cast_charges_one_way_only(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", lambda m: None)
        before = net.clock.now()
        net.cast("a", "b", b"")
        assert net.clock.now() - before == pytest.approx(LAN_10MBPS.transfer_time(64))


class TestConnectivity:
    def test_disconnected_destination(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.disconnect("b", voluntary=True)
        with pytest.raises(DisconnectedError) as info:
            net.call("a", "b", b"x")
        assert info.value.voluntary is True
        assert net.stats.link("a", "b").rejected_disconnected == 1

    def test_disconnected_source(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.disconnect("a")
        with pytest.raises(DisconnectedError):
            net.call("a", "b", b"x")

    def test_reconnect_restores(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.disconnect("b")
        net.reconnect("b")
        assert net.call("a", "b", b"ok") == b"echo:ok"

    def test_partition_raises_non_voluntary(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.partition({"a"}, {"b"})
        with pytest.raises(DisconnectedError) as info:
            net.call("a", "b", b"x")
        assert info.value.voluntary is False
        net.heal()
        assert net.call("a", "b", b"y") == b"echo:y"

    def test_return_path_cut_mid_call(self, net):
        net.attach("a", lambda m: None)

        def disconnect_caller_then_reply(message):
            net.disconnect("a")
            return b"reply"

        net.attach("b", disconnect_caller_then_reply)
        with pytest.raises(DisconnectedError):
            net.call("a", "b", b"x")


class TestLossAndLifecycle:
    def test_lossy_link_raises_transport_error(self):
        network = LoopbackNetwork(
            SimClock(),
            default_link=Link(latency_s=0, bandwidth_bps=1e9, loss_probability=0.999),
            seed=42,
        )
        network.attach("a", lambda m: None)
        network.attach("b", _echo)
        with pytest.raises(TransportError):
            for _ in range(100):
                network.call("a", "b", b"x")

    def test_closed_network_rejects_traffic(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.close()
        with pytest.raises(TransportError):
            net.call("a", "b", b"x")

    def test_double_attach_rejected(self, net):
        net.attach("a", lambda m: None)
        with pytest.raises(ValueError):
            net.attach("a", lambda m: None)

    def test_detach_then_call_fails(self, net):
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        net.detach("b")
        with pytest.raises(TransportError):
            net.call("a", "b", b"x")

    def test_per_pair_link_override(self, net):
        slow = Link(latency_s=1.0, bandwidth_bps=1e9)
        net.set_link("a", "b", slow)
        net.attach("a", lambda m: None)
        net.attach("b", _echo)
        before = net.clock.now()
        net.call("a", "b", b"")
        assert net.clock.now() - before >= 2.0  # both directions use it
