"""Asymmetric links: info-appliance uplinks are slower than downlinks.

2002-era cellular data was heavily asymmetric (GPRS: ~40 kb/s down,
~10 kb/s up).  ``Network.set_link(symmetric=False)`` models that; these
tests pin the behaviour the mobility scenarios rely on: cheap fetches,
expensive put-backs.
"""

import pytest

from repro.core.costs import CostModel
from repro.core.runtime import World
from repro.simnet.link import Link
from tests.models import Counter

DOWNLINK = Link(latency_s=0.05, bandwidth_bps=40e3, name="gprs-down")
UPLINK = Link(latency_s=0.05, bandwidth_bps=10e3, name="gprs-up")


def test_set_link_asymmetric_directions():
    world = World.loopback(costs=CostModel.zero())
    network = world.network
    network.set_link("server", "pda", DOWNLINK, symmetric=False)
    network.set_link("pda", "server", UPLINK, symmetric=False)
    assert network.link_for("server", "pda") is DOWNLINK
    assert network.link_for("pda", "server") is UPLINK
    world.close()


def test_fetch_cheaper_than_putback_on_asymmetric_link():
    world = World.loopback(costs=CostModel.zero())
    network = world.network
    server = world.create_site("server")
    pda = world.create_site("pda")
    network.set_link("server", "pda", DOWNLINK, symmetric=False)
    network.set_link("pda", "server", UPLINK, symmetric=False)

    master = Counter(0)
    master.blob = b"\xaa" * 4000  # payload that dominates transfer time
    ref = server.export(master, name="counter")

    start = world.clock.now()
    replica = pda.replicate(ref)  # by ref: measure the get alone
    fetch_time = world.clock.now() - start

    start = world.clock.now()
    pda.put_back(replica)
    put_time = world.clock.now() - start

    # The big payload rides the fast downlink on fetch and the slow
    # uplink on put — put must cost roughly the bandwidth ratio more.
    assert put_time > 2.5 * fetch_time


def test_symmetric_default_is_still_symmetric():
    world = World.loopback(costs=CostModel.zero())
    network = world.network
    fast = Link(latency_s=0.001, bandwidth_bps=1e7)
    network.set_link("a", "b", fast)  # symmetric=True default
    assert network.link_for("a", "b") is fast
    assert network.link_for("b", "a") is fast
    world.close()
