"""Shared OBIWAN-compiled model classes for the test suite.

obicomp registers classes globally (one interface name per class), so
test modules share these instead of each defining their own ``Node``.
"""

from __future__ import annotations

from repro import obiwan


@obiwan.compile
class Box:
    """A single-value cell — the smallest useful OBIWAN object."""

    def __init__(self, value: object = None):
        self.value = value

    def get(self) -> object:
        return self.value

    def set(self, value: object) -> object:
        self.value = value
        return value


@obiwan.compile
class Chain:
    """A linked-list node (the paper's list workload shape)."""

    def __init__(self, index: int = 0, nxt: "Chain | None" = None):
        self.index = index
        self.next = nxt
        self.payload = b""

    def get_index(self) -> int:
        return self.index

    def set_index(self, index: int) -> int:
        self.index = index
        return index

    def get_next(self) -> "Chain | None":
        return self.next

    def set_next(self, nxt: "Chain | None") -> None:
        self.next = nxt


@obiwan.compile
class Folder:
    """A container node: children live inside standard containers."""

    def __init__(self, name: str = ""):
        self.name = name
        self.children: list[object] = []
        self.index: dict[str, object] = {}
        self.tags: set[str] = set()

    def get_name(self) -> str:
        return self.name

    def add(self, key: str, child: object) -> None:
        self.children.append(child)
        self.index[key] = child

    def child(self, key: str) -> object:
        return self.index[key]

    def child_count(self) -> int:
        return len(self.children)


@obiwan.compile
class Counter:
    """Mutable state with read and write methods."""

    def __init__(self, value: int = 0):
        self.value = value

    def increment(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def read(self) -> int:
        return self.value


@obiwan.compile
class GraphNode:
    """An arbitrary-fanout node for property-based graph tests."""

    def __init__(self, value: int = 0):
        self.value = value
        self.refs: list["GraphNode"] = []

    def get_value(self) -> int:
        return self.value

    def set_value(self, value: int) -> None:
        self.value = value

    def get_refs(self) -> list["GraphNode"]:
        return list(self.refs)

    def link(self, other: "GraphNode") -> None:
        self.refs.append(other)


def make_chain(length: int) -> Chain:
    """Build ``0 -> 1 -> … -> length-1`` and return the head."""
    head: Chain | None = None
    for index in range(length - 1, -1, -1):
        head = Chain(index=index, nxt=head)
    assert head is not None
    return head


def chain_indices(head: object) -> list[int]:
    """Walk a chain via its interface, resolving faults as they come."""
    from repro.core.proxy_out import ProxyOutBase

    out = []
    node = head
    while node is not None:
        out.append(node.get_index())
        node = node.get_next()
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    return out
