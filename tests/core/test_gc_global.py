"""Tests for reachability-based master collection."""

import pytest

from repro.core.dgc import DgcServer
from repro.core.gc_global import MasterCollector
from repro.core.meta import obi_id_of
from repro.util.errors import ProtocolError
from tests.models import Box, Folder, make_chain


@pytest.fixture
def collected(zsites):
    provider, consumer = zsites
    collector = MasterCollector(provider)
    return provider, consumer, collector


class TestReachability:
    def test_pinned_graph_survives(self, collected):
        provider, _consumer, collector = collected
        root = Folder("root")
        leaf = Box("leaf")
        root.add("leaf", leaf)
        provider.export(root, name="root")
        provider.export(leaf)  # leaf has its own master record
        collector.pin(root)
        report = collector.collect()
        assert report.reclaimed == []
        assert report.live == 2  # root and leaf, via reachability

    def test_unreachable_master_reclaimed(self, collected):
        provider, _consumer, collector = collected
        orphan = Box("orphan")
        provider.export(orphan)
        report = collector.collect()
        assert report.reclaimed == [obi_id_of(orphan)]
        assert not provider.is_master(obi_id_of(orphan))

    def test_reclaimed_master_object_still_usable_locally(self, collected):
        provider, _consumer, collector = collected
        orphan = Box("still-here")
        provider.export(orphan)
        collector.collect()
        assert orphan.get() == "still-here"  # plain object survives
        # And it can be re-exported afresh.
        ref = provider.export(orphan)
        assert provider.is_master(obi_id_of(orphan))

    def test_remote_ref_dies_with_the_record(self, collected):
        provider, consumer, collector = collected
        doomed = Box("doomed")
        ref = provider.export(doomed)
        collector.collect()
        with pytest.raises(ProtocolError):
            consumer.replicate(ref)

    def test_local_replicas_root_their_referents(self, collected):
        """A master referenced from a replica held here stays live."""
        provider, consumer, collector = collected
        remote_home = consumer  # consumer masters an object...
        shared = Box("shared")
        shared_ref = remote_home.export(shared)
        # ...provider replicates it, and that replica points to a local
        # master via a folder.
        local_master = Box("local")
        provider.export(local_master)
        replica = provider.replicate(shared_ref)
        holder = Folder("holder")
        holder.add("local", local_master)
        provider.export(holder)
        # holder is unpinned and unleased, so it goes; but wire the
        # replica to the local master first:
        replica.value = None  # replicas root only what they reference
        report = collector.collect()
        assert obi_id_of(holder) in report.reclaimed
        assert obi_id_of(local_master) in report.reclaimed  # nothing points at it

    def test_cycles_do_not_keep_themselves_alive(self, collected):
        provider, _consumer, collector = collected
        a, b = Box(), Box()
        a.value, b.value = b, a
        provider.export(a)
        provider.export(b)
        report = collector.collect()
        assert set(report.reclaimed) == {obi_id_of(a), obi_id_of(b)}


class TestLeaseRoots:
    def test_leased_master_survives_unpinned(self, zero_world):
        provider = zero_world.create_site("provider")
        consumer = zero_world.create_site("consumer")
        dgc = DgcServer(provider, lease_duration=100.0)
        collector = MasterCollector(provider, dgc=dgc)

        shared = Box("leased")
        ref = provider.export(shared)
        consumer.replicate(ref)
        from repro.core.dgc import DgcClient

        DgcClient(consumer).renew()
        report = collector.collect()
        assert report.reclaimed == []

        # Lease lapses → next collection reclaims.
        zero_world.clock.advance(1000.0)
        report = collector.collect()
        assert report.reclaimed == [obi_id_of(shared)]

    def test_unpin_releases(self, collected):
        provider, _consumer, collector = collected
        box = Box()
        provider.export(box)
        collector.pin(box)
        assert collector.collect().reclaimed == []
        collector.unpin(box)
        assert collector.collect().reclaimed == [obi_id_of(box)]
