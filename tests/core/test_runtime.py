"""Tests for Site and World runtime behaviour."""

import pytest

from repro.core.costs import CostModel
from repro.core.meta import obi_id_of
from repro.core.runtime import World
from repro.rmi.refs import RemoteRef
from repro.util.errors import NameNotFoundError, ReplicationError
from tests.models import Box, Counter


class TestWorld:
    def test_first_site_hosts_nameserver(self, zero_world):
        first = zero_world.create_site("first")
        second = zero_world.create_site("second")
        first.naming.rebind("x", RemoteRef("first", "obj:1"))
        assert second.naming.lookup("x").object_id == "obj:1"

    def test_duplicate_site_name_rejected(self, zero_world):
        zero_world.create_site("dup")
        with pytest.raises(ReplicationError):
            zero_world.create_site("dup")

    def test_auto_named_sites(self, zero_world):
        site = zero_world.create_site()
        assert site.name.startswith("site:")

    def test_world_clock_is_network_clock(self, zero_world):
        assert zero_world.clock is zero_world.network.clock

    def test_threaded_world_end_to_end(self):
        with World.threaded() as world:
            provider = world.create_site("p")
            consumer = world.create_site("c")
            provider.export(Counter(5), name="counter")
            replica = consumer.replicate("counter")
            assert replica.read() == 5
            replica.increment()
            consumer.put_back(replica)

    def test_tcp_world_end_to_end(self):
        with World.tcp() as world:
            provider = world.create_site("p")
            consumer = world.create_site("c")
            provider.export(Counter(7), name="counter")
            replica = consumer.replicate("counter")
            assert replica.read() == 7


class TestExportAndNaming:
    def test_export_binds_name(self, zsites):
        provider, consumer = zsites
        provider.export(Box("v"), name="box")
        assert consumer.naming.lookup("box").interface == "IBox"

    def test_export_without_name(self, zsites):
        provider, consumer = zsites
        ref = provider.export(Box("anon"))
        replica = consumer.replicate(ref)
        assert replica.get() == "anon"

    def test_reexport_reuses_proxy_in(self, zsites):
        provider, _consumer = zsites
        box = Box()
        first = provider.export(box)
        second = provider.export(box, name="renamed")
        assert first == second

    def test_replicate_unknown_name(self, zsites):
        _provider, consumer = zsites
        with pytest.raises(NameNotFoundError):
            consumer.replicate("ghost")

    def test_replicate_bad_target_type(self, zsites):
        _provider, consumer = zsites
        with pytest.raises(ReplicationError):
            consumer.replicate(12345)  # type: ignore[arg-type]

    def test_remote_stub_uses_interface_methods(self, zsites):
        provider, consumer = zsites
        provider.export(Counter(3), name="counter")
        stub = consumer.remote_stub("counter")
        assert stub.read() == 3
        assert stub.increment() == 4
        assert not hasattr(stub, "get")  # not part of ICounter


class TestVersionsAndTouch:
    def test_master_version_starts_at_one(self, zsites):
        provider, _consumer = zsites
        box = Box()
        provider.export(box)
        assert provider.master_version(box) == 1

    def test_touch_bumps_version(self, zsites):
        provider, _consumer = zsites
        box = Box()
        provider.export(box)
        assert provider.touch(box) == 2
        assert provider.touch(box) == 3

    def test_touch_unexported_fails(self, zsites):
        provider, _consumer = zsites
        with pytest.raises(ReplicationError):
            provider.touch(Box())

    def test_replica_records_master_version(self, zsites):
        provider, consumer = zsites
        box = Box()
        provider.export(box, name="box")
        provider.touch(box)
        replica = consumer.replicate("box")
        info = consumer.replica_info(obi_id_of(replica))
        assert info.version == 2


class TestCostCharging:
    def test_invoke_local_charges_lmi(self):
        world = World.loopback()  # calibrated costs
        provider = world.create_site("p")
        consumer = world.create_site("c")
        provider.export(Counter(), name="counter")
        replica = consumer.replicate("counter")
        before = world.clock.now()
        consumer.invoke_local(replica, "read")
        assert world.clock.now() - before == pytest.approx(2e-6)

    def test_zero_cost_model_charges_nothing_for_lmi(self, zsites):
        provider, consumer = zsites
        provider.export(Counter(), name="counter")
        replica = consumer.replicate("counter")
        before = consumer.clock.now()
        consumer.invoke_local(replica, "read")
        assert consumer.clock.now() == before

    def test_replication_charges_simulated_time(self):
        world = World.loopback()
        provider = world.create_site("p")
        consumer = world.create_site("c")
        provider.export(Box("payload"), name="box")
        before = world.clock.now()
        consumer.replicate("box")
        elapsed = world.clock.now() - before
        # At least two round trips (lookup + get) plus CPU costs.
        assert elapsed > 5e-3


class TestEviction:
    def test_evicted_replica_loses_bookkeeping(self, zsites):
        provider, consumer = zsites
        provider.export(Box("v"), name="box")
        replica = consumer.replicate("box")
        consumer.evict(replica)
        assert consumer.replica_info(obi_id_of(replica)) is None
        with pytest.raises(ReplicationError):
            consumer.put_back(replica)

    def test_evicted_object_still_usable_locally(self, zsites):
        provider, consumer = zsites
        provider.export(Box("v"), name="box")
        replica = consumer.replicate("box")
        consumer.evict(replica)
        assert replica.get() == "v"

    def test_replicate_after_evict_makes_fresh_replica(self, zsites):
        provider, consumer = zsites
        provider.export(Box("v"), name="box")
        replica = consumer.replicate("box")
        consumer.evict(replica)
        again = consumer.replicate("box")
        assert consumer.replica_info(obi_id_of(again)) is not None


class TestCostModel:
    def test_calibrated_matches_defaults(self):
        assert CostModel.calibrated_2002() == CostModel()

    def test_zero_zeroes_everything(self):
        zero = CostModel.zero()
        assert zero.local_invoke_s == 0
        assert zero.serialize_per_byte_s == 0
        assert zero.proxy_pair_create_s == 0
        assert zero.pair_batch_quadratic_s == 0
        assert zero.replica_create_s == 0
