"""Tests for dynamic cluster replication (paper Sections 2.2 / 4.3)."""

import pytest

from repro.core.cluster import build_cluster_put, check_individually_updatable, cluster_members
from repro.core.interfaces import Cluster, Incremental
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.util.errors import ClusterError
from tests.models import Chain, chain_indices, make_chain


@pytest.fixture
def clustered(zsites):
    provider, consumer = zsites
    masters = make_chain(10)
    provider.export(masters, name="list")
    root = consumer.replicate("list", mode=Cluster(size=4))
    return provider, consumer, masters, root


class TestClusterFetch:
    def test_cluster_brings_members_without_pairs(self, clustered):
        _provider, consumer, _masters, root = clustered
        members = cluster_members(consumer, root)
        assert len(members) == 4
        # Only the root is individually updatable.
        root_info = consumer.replica_info(obi_id_of(root))
        assert root_info.provider is not None
        for member in members[1:]:
            info = consumer.replica_info(obi_id_of(member))
            assert info.provider is None
            assert info.cluster_root == obi_id_of(root)

    def test_frontier_is_one_proxy(self, clustered):
        _provider, consumer, _masters, root = clustered
        node = root
        for _ in range(3):
            node = node.next
            assert not isinstance(node, ProxyOutBase)
        assert isinstance(node.next, ProxyOutBase)

    def test_faulting_past_frontier_fetches_next_cluster(self, clustered):
        _provider, consumer, _masters, root = clustered
        assert chain_indices(root) == list(range(10))
        # 10 objects in clusters of 4 → initial fetch + 2 faults.
        assert consumer.gc_stats.faults_resolved == 2

    def test_whole_graph_cluster(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(12), name="all")
        root = consumer.replicate("all", mode=Cluster())
        node, count = root, 0
        while node is not None:
            assert not isinstance(node, ProxyOutBase)
            count += 1
            node = node.next
        assert count == 12


class TestClusterUpdateGranularity:
    def test_member_put_rejected(self, clustered):
        _provider, consumer, _masters, root = clustered
        member = root.next
        with pytest.raises(ClusterError, match="cluster"):
            consumer.put_back(member)

    def test_member_refresh_rejected(self, clustered):
        _provider, consumer, _masters, root = clustered
        with pytest.raises(ClusterError):
            consumer.refresh(root.next)

    def test_cluster_put_updates_all_members(self, clustered):
        provider, consumer, masters, root = clustered
        node = root
        for offset in range(4):
            node.set_index(node.get_index() + 100)
            node = node.next if not isinstance(node.next, ProxyOutBase) else None
            if node is None:
                break
        versions = consumer.put_back_cluster(root)
        assert len(versions) == 4
        master_node = masters
        for expected in (100, 101, 102, 103):
            assert master_node.index == expected
            master_node = master_node.next

    def test_cluster_put_from_member_rejected(self, clustered):
        _provider, consumer, _masters, root = clustered
        with pytest.raises(ClusterError, match="root"):
            build_cluster_put(consumer, root.next)

    def test_check_individually_updatable_passes_for_plain_replica(self, zsites):
        provider, consumer = zsites
        provider.export(Chain(index=5), name="solo")
        replica = consumer.replicate("solo", mode=Incremental(1))
        check_individually_updatable(consumer, replica)  # no raise

    def test_cluster_members_requires_replica(self, zsites):
        _provider, consumer = zsites
        with pytest.raises(ClusterError):
            cluster_members(consumer, Chain())


class TestClusterRefresh:
    def test_refresh_cluster_updates_all_members_in_place(self, clustered):
        provider, consumer, masters, root = clustered
        # Mutate the masters behind the replicas' back.
        node = masters
        for _ in range(4):
            node.index += 1000
            node = node.next
        refreshed = consumer.refresh_cluster(root)
        assert refreshed is root  # in-place
        node, expected = root, 1000
        for _ in range(4):
            assert node.get_index() == expected
            expected += 1
            if isinstance(node.next, ProxyOutBase):
                break
            node = node.next

    def test_refresh_cluster_keeps_member_aliases(self, clustered):
        _provider, consumer, masters, root = clustered
        member_alias = root.next
        masters.next.index = 777
        consumer.refresh_cluster(root)
        assert member_alias.get_index() == 777

    def test_refresh_cluster_from_member_rejected(self, clustered):
        _provider, consumer, _masters, root = clustered
        with pytest.raises(ClusterError):
            consumer.refresh_cluster(root.next)


class TestClusterEconomics:
    def test_cluster_moves_fewer_bytes_than_per_object(self, zero_world):
        provider = zero_world.create_site("P")
        a = zero_world.create_site("A")
        b = zero_world.create_site("B")
        provider.export(make_chain(50), name="chain")

        stats = zero_world.network.stats
        a_before = stats.bytes_between("P", "A")
        head_a = a.replicate("chain", mode=Incremental(50))
        per_object_bytes = stats.bytes_between("P", "A") - a_before

        b_before = stats.bytes_between("P", "B")
        head_b = b.replicate("chain", mode=Cluster(size=50))
        cluster_bytes = stats.bytes_between("P", "B") - b_before

        assert cluster_bytes < per_object_bytes
        assert chain_indices(head_b) == chain_indices(head_a)
