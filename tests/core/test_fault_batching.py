"""Tests for the batched demand & prefetching fault fast path (PR 2).

Round trips are counted from the loopback network stats (one request
message consumer→provider per demand), so these are end-to-end checks of
the resolver, not of its counters alone.
"""

import math
import threading

import pytest

import repro.core.faults as faults
from repro.core.interfaces import Incremental, ReplicationMode
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import global_registry
from tests.models import Box, Folder, chain_indices, make_chain


def _requests(site):
    """Request messages this consumer has sent to provider S2 so far."""
    return site.world.network.stats.link("S1", "S2").messages


class TestChainPrefetch:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_chain_walk_takes_ceil_n_over_k_round_trips(self, zsites, k):
        provider, consumer = zsites
        n = 41
        provider.export(make_chain(n), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1, prefetch=k))
        before = _requests(consumer)
        assert chain_indices(head) == list(range(n))
        trips = _requests(consumer) - before
        assert trips == math.ceil((n - 1) / k)
        assert consumer.fault_stats.demands_batched == trips
        assert consumer.fault_stats.prefetch_hits == (n - 1) - trips

    def test_prefetch_unset_round_trips_match_seed_behavior(self, zsites):
        provider, consumer = zsites
        n = 12
        provider.export(make_chain(n), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1))
        before = _requests(consumer)
        assert chain_indices(head) == list(range(n))
        # The paper's protocol: one demand round trip per remaining node.
        assert _requests(consumer) - before == n - 1
        assert consumer.fault_stats.demands_batched == 0
        assert consumer.fault_stats.prefetch_hits == 0

    def test_prefetch_not_larger_than_chunk_never_widens(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(9), name="chain")
        head = consumer.replicate("chain", mode=Incremental(4, prefetch=2))
        before = _requests(consumer)
        assert chain_indices(head) == list(range(9))
        # chunk 4 already covers the read-ahead: same trips as plain chunk 4.
        assert _requests(consumer) - before == 2
        assert consumer.fault_stats.prefetch_hits == 0

    def test_prefetched_members_individually_updatable(self, zsites):
        """Per-object-pair semantics survive the widened demand: a member
        that arrived as read-ahead has its own provider pair and can be
        put back on its own."""
        provider, consumer = zsites
        provider.export(make_chain(10), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1, prefetch=4))
        assert chain_indices(head) == list(range(10))
        node = head
        for _ in range(3):  # index 3 arrived as read-ahead, never faulted
            node = node.get_next()
        assert not isinstance(node, ProxyOutBase)
        node.set_index(99)
        consumer.put_back(node)
        master = provider.master_object_for(obi_id_of(node))
        assert master.get_index() == 99


class TestSiblingBatching:
    def test_sibling_faults_share_one_round_trip(self, zsites):
        provider, consumer = zsites
        folder = Folder("root")
        for i in range(5):
            folder.add(f"k{i}", Box(i))
        provider.export(folder, name="root")
        replica = consumer.replicate("root", mode=Incremental(1, prefetch=8))
        before = _requests(consumer)
        assert replica.child("k0").get() == 0
        # One batched round trip resolved every pending sibling too.
        assert _requests(consumer) - before == 1
        for i in range(5):
            child = replica.child(f"k{i}")
            assert not isinstance(child, ProxyOutBase)
            assert child.get() == i
        assert consumer.fault_stats.demands_batched == 1
        assert consumer.fault_stats.prefetch_hits >= 4

    def test_sibling_cap_respects_prefetch_limit(self, zsites):
        provider, consumer = zsites
        folder = Folder("root")
        for i in range(6):
            folder.add(f"k{i}", Box(i))
        provider.export(folder, name="root")
        replica = consumer.replicate("root", mode=Incremental(1, prefetch=2))
        before = _requests(consumer)
        replica.child("k0").get()
        assert _requests(consumer) - before == 1
        resolved = sum(
            not isinstance(replica.child(f"k{i}"), ProxyOutBase) for i in range(6)
        )
        # The target plus at most `prefetch` piggybacked siblings.
        assert resolved == 3


class TestCoalescing:
    def test_concurrent_faults_on_one_target_coalesce(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="chain")
        head = consumer.replicate("chain")
        proxy = head.next
        assert isinstance(proxy, ProxyOutBase)

        release = threading.Event()
        real = faults._invoke_demand

        def slow_invoke(site, prx, mode):
            release.wait(5.0)
            return real(site, prx, mode)

        faults._invoke_demand = slow_invoke
        try:
            results = []
            threads = [
                threading.Thread(target=lambda: results.append(proxy.get_index()))
                for _ in range(2)
            ]
            threads[0].start()
            # Wait for the leader to register its in-flight demand.
            for _ in range(500):
                target_id = proxy._obi_target_id
                if target_id in consumer._inflight_demands[consumer._stripe_of(target_id)]:
                    break
                threading.Event().wait(0.01)
            threads[1].start()
            for _ in range(500):
                if consumer.fault_stats.coalesced_faults:
                    break
                threading.Event().wait(0.01)
            release.set()
            for t in threads:
                t.join(5.0)
        finally:
            faults._invoke_demand = real

        assert results == [1, 1]
        assert consumer.fault_stats.coalesced_faults == 1
        assert consumer.gc_stats.faults_resolved == 1

    def test_leader_error_propagates_to_followers(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="chain")
        head = consumer.replicate("chain")
        proxy = head.next
        target_id = proxy._obi_target_id

        leader, handle = consumer.begin_demand(target_id)
        assert leader
        errors = []

        def follower():
            try:
                consumer.resolve_fault(proxy)
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=follower)
        t.start()
        for _ in range(500):
            if consumer.fault_stats.coalesced_faults:
                break
            threading.Event().wait(0.01)
        consumer.finish_demand(target_id, handle, error=RuntimeError("boom"))
        t.join(5.0)
        assert len(errors) == 1


class TestModeWireFormat:
    def test_prefetch_zero_keeps_legacy_three_tuple(self):
        entry = global_registry.lookup_class(ReplicationMode)
        assert entry.get_state(Incremental(5)) == (5, 0, False)

    def test_prefetch_travels_as_fourth_field(self):
        entry = global_registry.lookup_class(ReplicationMode)
        assert entry.get_state(Incremental(5, prefetch=16)) == (5, 0, False, 16)

    def test_legacy_three_tuple_decodes(self):
        """Frames from a peer that predates the knob still decode."""
        entry = global_registry.lookup_class(ReplicationMode)
        mode = entry.factory()
        entry.set_state(mode, (3, 2, False))
        assert mode == ReplicationMode(chunk=3, depth=2)
        assert mode.prefetch == 0

    def test_prefetch_zero_frames_byte_identical_to_legacy(self):
        encoder = Encoder()
        legacy_like = encoder.encode(ReplicationMode(chunk=7, depth=1))
        assert encoder.encode(Incremental(7, depth=1)) == legacy_like
        roundtrip = Decoder().decode(encoder.encode(Incremental(7, prefetch=9)))
        assert roundtrip == Incremental(7, prefetch=9)
        assert roundtrip.prefetch == 9

    def test_demand_scope_widens_only_when_useful(self):
        assert Incremental(1, prefetch=8).demand_scope().chunk == 8
        assert Incremental(8, prefetch=4).demand_scope().chunk == 8
        from repro.core.interfaces import Cluster, Transitive

        cluster = ReplicationMode(chunk=2, clustered=True, prefetch=8)
        assert cluster.demand_scope() is cluster
        assert Cluster(size=4).demand_scope().chunk == 4
        assert Transitive().demand_scope().chunk == 0


class TestSerializerReuse:
    def test_build_put_constructs_one_encoder_per_package(self, zsites, monkeypatch):
        import repro.core.replication as replication

        provider, consumer = zsites
        provider.export(make_chain(6), name="chain")
        from repro.core.interfaces import Cluster

        head = consumer.replicate("chain", mode=Cluster(size=6))
        constructed = []
        real = replication.Encoder

        class CountingEncoder(real):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(replication, "Encoder", CountingEncoder)
        consumer.put_back_cluster(head)
        assert len(constructed) == 1

    def test_apply_put_constructs_one_decoder_per_package(self, zsites, monkeypatch):
        import repro.core.replication as replication

        provider, consumer = zsites
        provider.export(make_chain(6), name="chain")
        from repro.core.interfaces import Cluster

        head = consumer.replicate("chain", mode=Cluster(size=6))
        constructed = []
        real = replication.Decoder

        class CountingDecoder(real):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(replication, "Decoder", CountingDecoder)
        consumer.put_back_cluster(head)
        assert len(constructed) == 1
