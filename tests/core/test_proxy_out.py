"""Tests for proxy-out behaviour: faulting, encapsulation, identity."""

import copy

import pytest

from repro.core.interfaces import Incremental, Interface
from repro.core.proxy_out import ProxyOutBase, make_proxy_out_class
from repro.rmi.refs import RemoteRef
from repro.util.errors import EncapsulationError, ObjectFaultError

IFACE = Interface("IWidget", ("spin", "stop"))
REF = RemoteRef("s2", "obj:1", "IWidget")


class FakeSite:
    """Resolves every fault to a canned target."""

    def __init__(self, target):
        self.target = target
        self.faults = 0

    def resolve_fault(self, proxy):
        self.faults += 1
        proxy._obi_resolved = self.target
        return self.target


class Widget:
    def __init__(self):
        self.spins = 0

    def spin(self, times=1):
        self.spins += times
        return self.spins

    def stop(self):
        return "stopped"


def make_proxy(site=None):
    cls = make_proxy_out_class(IFACE)
    return cls(site, "obj:1", REF, IFACE, Incremental(1))


class TestClassGeneration:
    def test_generated_class_has_interface_methods(self):
        cls = make_proxy_out_class(IFACE)
        assert hasattr(cls, "spin") and hasattr(cls, "stop")
        assert issubclass(cls, ProxyOutBase)

    def test_class_name_derived_from_interface(self):
        assert make_proxy_out_class(IFACE).__name__ == "WidgetProxyOut"


class TestFaulting:
    def test_method_call_triggers_fault_and_forwards(self):
        widget = Widget()
        site = FakeSite(widget)
        proxy = make_proxy(site)
        assert proxy.spin(3) == 3
        assert site.faults == 1
        assert widget.spins == 3

    def test_second_call_uses_resolution(self):
        widget = Widget()
        site = FakeSite(widget)
        proxy = make_proxy(site)
        proxy.spin()
        proxy.spin()
        assert site.faults == 1  # resolved once

    def test_unattached_proxy_raises_object_fault(self):
        proxy = make_proxy(site=None)
        with pytest.raises(ObjectFaultError):
            proxy.spin()

    def test_kwargs_forwarded(self):
        widget = Widget()
        proxy = make_proxy(FakeSite(widget))
        proxy.spin(times=5)
        assert widget.spins == 5


class TestEncapsulation:
    def test_reading_state_raises(self):
        proxy = make_proxy()
        with pytest.raises(EncapsulationError, match="interface methods"):
            _ = proxy.spins

    def test_writing_state_raises(self):
        proxy = make_proxy()
        with pytest.raises(EncapsulationError):
            proxy.spins = 7

    def test_internal_attributes_still_work(self):
        proxy = make_proxy()
        assert proxy._obi_target_id == "obj:1"
        proxy._obi_resolved = "x"
        assert proxy._obi_resolved == "x"

    def test_dunder_lookup_raises_attribute_error(self):
        # Protocol probes (copy, pickle) must see AttributeError, not
        # EncapsulationError, so standard library machinery keeps working.
        proxy = make_proxy()
        with pytest.raises(AttributeError):
            _ = proxy.__deepcopy__
        copy.copy(proxy)  # must not explode


class TestDemanders:
    def test_add_demander_deduplicates_by_identity(self):
        proxy = make_proxy()
        holder = Widget()
        proxy._obi_add_demander(holder)
        proxy._obi_add_demander(holder)
        assert len(proxy._obi_demanders) == 1

    def test_equal_but_distinct_holders_both_tracked(self):
        proxy = make_proxy()
        proxy._obi_add_demander([1])
        proxy._obi_add_demander([1])  # equal lists, different identity
        assert len(proxy._obi_demanders) == 2


class TestRepr:
    def test_repr_shows_resolution_state(self):
        proxy = make_proxy()
        assert "unresolved" in repr(proxy)
        proxy._obi_resolved = Widget()
        assert "unresolved" not in repr(proxy)
