"""Tests for lease-based distributed GC of proxies-in."""

import pytest

from repro.core.dgc import DEFAULT_LEASE, DgcClient, DgcServer
from repro.core.interfaces import Incremental
from repro.core.meta import obi_id_of
from repro.util.errors import ProtocolError
from tests.models import Box, make_chain


@pytest.fixture
def dgc_world(zero_world):
    provider = zero_world.create_site("provider")
    consumer = zero_world.create_site("consumer")
    server = DgcServer(provider, lease_duration=10.0)
    client = DgcClient(consumer)
    return zero_world, provider, consumer, server, client


class TestLeases:
    def test_renew_covers_replicas_and_pending_proxies(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        head = make_chain(3)
        provider.export(head, name="chain")
        server.pin(head)
        replica = consumer.replicate("chain", mode=Incremental(1))
        renewed = client.renew()
        # The replica of head plus the pending proxy for node 1.
        assert renewed == {"provider": 2}
        assert server.holders_of(head) == ["consumer"]

    def test_leases_keep_proxy_ins_alive(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("v")
        provider.export(box, name="box")
        server.pin(box)
        replica = consumer.replicate("box")
        client.renew()
        world.clock.advance(15.0)  # past grace and past the first lease
        client.renew()  # but renewed again in time? (lease was 10s)
        world.clock.advance(5.0)
        report = server.collect()
        assert report.reclaimed == []
        consumer.refresh(replica)  # provider still answers

    def test_lapsed_lease_reclaims_proxy_in(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("v")
        provider.export(box, name="box")
        server.pin(box)
        replica = consumer.replicate("box")
        oid = obi_id_of(replica)
        # The replica's own proxy-in (same object here, pinned) aside,
        # use an unpinned secondary object:
        extra = Box("extra")
        ref = provider.export(extra)
        consumer.replicate(ref)
        client.renew()
        world.clock.advance(DEFAULT_LEASE)  # way past everything
        report = server.collect()
        assert obi_id_of(extra) in report.reclaimed
        assert oid not in report.reclaimed  # pinned

    def test_stale_remote_ref_after_reclaim_fails_cleanly(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        extra = Box("doomed")
        ref = provider.export(extra)
        replica = consumer.replicate(ref)
        world.clock.advance(100.0)  # no renewals
        server.collect()
        with pytest.raises(ProtocolError):
            consumer.refresh(replica)

    def test_reexport_after_reclaim_gets_fresh_proxy_in(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        extra = Box("phoenix")
        old_ref = provider.export(extra)
        world.clock.advance(100.0)
        server.collect()
        new_ref, created = provider.ensure_provider_for(extra)
        assert created
        assert new_ref.object_id != old_ref.object_id
        replica = consumer.replicate(new_ref)
        assert replica.get() == "phoenix"


class TestGraceAndPinning:
    def test_fresh_exports_survive_one_grace_period(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("fresh")
        provider.export(box)
        world.clock.advance(5.0)  # inside the 10 s grace
        report = server.collect()
        assert report.reclaimed == []
        assert report.live == 1

    def test_pinned_objects_never_reclaimed(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("pinned")
        provider.export(box, name="box")
        server.pin(box)
        world.clock.advance(10_000.0)
        report = server.collect()
        assert report.reclaimed == []
        assert report.pinned == 1
        server.unpin(box)
        report = server.collect()
        assert report.reclaimed == [obi_id_of(box)]


class TestOfflineConsumers:
    def test_offline_consumer_leases_lapse(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("v")
        ref = provider.export(box)
        consumer.replicate(ref)
        client.renew()
        world.network.disconnect("consumer")
        assert client.renew() == {}  # unreachable provider skipped
        world.clock.advance(100.0)
        report = server.collect()
        assert report.reclaimed == [obi_id_of(box)]

    def test_release_cleans_immediately(self, dgc_world):
        world, provider, consumer, server, client = dgc_world
        box = Box("v")
        ref = provider.export(box)
        replica = consumer.replicate(ref)
        client.renew()
        assert server.holders_of(box) == ["consumer"]
        client.release(replica)
        assert server.holders_of(box) == []
        assert consumer.replica_info(obi_id_of(replica)) is None


class TestValidation:
    def test_lease_duration_must_be_positive(self, zero_world):
        site = zero_world.create_site("p")
        with pytest.raises(ValueError):
            DgcServer(site, lease_duration=0)
