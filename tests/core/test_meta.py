"""Tests for object identity and the compiled-class registry."""

import pytest

from repro import obiwan
from repro.core.meta import (
    CompiledClassRegistry,
    CompiledEntry,
    compiled_registry,
    interface_of,
    is_compiled_class,
    is_obiwan,
    obi_id_of,
    peek_obi_id,
)
from repro.core.interfaces import Interface
from repro.core.proxy_out import make_proxy_out_class
from repro.util.errors import ReplicationError
from tests.models import Box, Chain


class Plain:
    def method(self):
        return 1


class TestIdentity:
    def test_compiled_instances_are_obiwan(self):
        assert is_obiwan(Box())
        assert is_compiled_class(Box)

    def test_plain_instances_are_not(self):
        assert not is_obiwan(Plain())
        assert not is_obiwan(42)
        assert not is_obiwan("text")

    def test_obi_id_is_stable(self):
        box = Box()
        assert obi_id_of(box) == obi_id_of(box)

    def test_obi_ids_are_unique_per_object(self):
        assert obi_id_of(Box()) != obi_id_of(Box())

    def test_obi_id_lives_in_instance_dict(self):
        box = Box()
        oid = obi_id_of(box)
        assert vars(box)["_obi_id"] == oid

    def test_peek_does_not_assign(self):
        box = Box()
        assert peek_obi_id(box) is None
        obi_id_of(box)
        assert peek_obi_id(box) is not None

    def test_obi_id_of_plain_object_fails(self):
        with pytest.raises(ReplicationError):
            obi_id_of(Plain())

    def test_proxy_outs_are_not_obiwan_objects(self):
        proxy_cls = make_proxy_out_class(Interface("IBoxLike", ("get",)))
        proxy = proxy_cls.__new__(proxy_cls)
        assert not is_obiwan(proxy)


class TestInterfaceOf:
    def test_interface_of_class_and_instance_agree(self):
        assert interface_of(Box) is interface_of(Box())

    def test_interface_contents(self):
        iface = interface_of(Chain)
        assert iface.name == "IChain"
        assert "get_next" in iface
        assert "set_index" in iface

    def test_interface_of_uncompiled_fails(self):
        with pytest.raises(ReplicationError, match="obicomp"):
            interface_of(Plain)

    def test_subclass_inherits_interface(self):
        class SubBox(Box):
            pass

        assert interface_of(SubBox) is interface_of(Box)


class TestCompiledRegistry:
    def test_global_registry_knows_models(self):
        assert "IBox" in compiled_registry
        entry = compiled_registry.by_interface("IBox")
        assert entry.cls is Box

    def test_unknown_interface_fails_with_hint(self):
        with pytest.raises(ReplicationError, match="obicomp output"):
            compiled_registry.by_interface("INeverCompiled")

    def test_conflicting_interface_name_rejected(self):
        registry = CompiledClassRegistry()
        iface = Interface("IDup", ("m",))
        proxy_cls = make_proxy_out_class(iface)
        registry.add(CompiledEntry(Plain, iface, proxy_cls))

        class Another:
            def m(self):
                return 2

        with pytest.raises(ReplicationError):
            registry.add(CompiledEntry(Another, iface, proxy_cls))

    def test_readd_same_class_is_fine(self):
        registry = CompiledClassRegistry()
        iface = Interface("IAgain", ("m",))
        entry = CompiledEntry(Plain, iface, make_proxy_out_class(iface))
        registry.add(entry)
        registry.add(entry)
        assert len(registry) == 1
