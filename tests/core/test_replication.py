"""Tests for the replication engine: the heart of the reproduction.

The first class walks the paper's Figure 1 / Section 2.2 protocol step
by step; the rest cover modes, refresh, put, sharing and failure cases.
"""

import pytest

from repro import obiwan
from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.util.errors import ReplicationError
from tests.models import Box, Chain, Counter, Folder, chain_indices, make_chain


class TestFigureOneProtocol:
    """The prototypical example: S2 holds A -> B -> C; S1 replicates."""

    @pytest.fixture
    def scenario(self, zsites):
        provider, consumer = zsites
        c = Chain(index=3)
        b = Chain(index=2, nxt=c)
        a = Chain(index=1, nxt=b)
        provider.export(a, name="a")
        return provider, consumer, a, b, c

    def test_situation_b_after_get(self, scenario):
        """After AProxyIn.get: A' is at S1 and points to BProxyOut."""
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        assert a1 is not a  # true copy
        assert a1.get_index() == 1
        assert isinstance(a1.next, ProxyOutBase)
        assert a1.next._obi_target_id == obi_id_of(b)

    def test_object_fault_resolves_and_splices(self, scenario):
        """Invoking B via BProxyOut demands B', then updateMember makes
        further invocations direct."""
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        proxy = a1.next
        assert proxy.get_index() == 2  # the fault
        assert not isinstance(a1.next, ProxyOutBase)  # spliced
        assert proxy._obi_resolved is a1.next

    def test_fault_cascade_down_the_graph(self, scenario):
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        b1 = a1.next  # proxy
        assert b1.get_index() == 2
        b1 = a1.next
        assert isinstance(b1.next, ProxyOutBase)  # CProxyOut
        assert b1.next.get_index() == 3
        assert not isinstance(b1.next, ProxyOutBase)

    def test_replica_has_own_provider_for_put_and_get(self, scenario):
        """Step 3 of demand: B' points to BProxyIn so it can be put back
        or refreshed individually."""
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        a1.next.get_index()
        b1 = a1.next
        info = consumer.replica_info(obi_id_of(b1))
        assert info is not None and info.provider is not None

        b1.set_index(22)
        consumer.put_back(b1)
        assert b.index == 22

        b.index = 222
        consumer.refresh(b1)
        assert b1.get_index() == 222

    def test_master_still_invocable_via_rmi_after_replication(self, scenario):
        """'At any time, both replicas, the master and the local, can be
        freely invoked.'"""
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        stub = consumer.remote_stub("a")
        a1.set_index(10)  # local only
        assert stub.get_index() == 1  # master unchanged
        stub.set_index(5)  # RMI hits the master
        assert a.index == 5
        assert a1.get_index() == 10  # replica untouched

    def test_proxy_out_garbage_collected_after_splice(self, scenario):
        """Step 6: 'BProxyOut is no longer reachable and will be
        reclaimed by the garbage collector.'"""
        provider, consumer, a, b, c = scenario
        a1 = consumer.replicate("a")
        a1.next.get_index()
        assert consumer.gc_stats.faults_resolved == 1
        consumer.gc_stats.force_collect()
        assert consumer.gc_stats.resolved_collected == 1


class TestModes:
    def test_incremental_chunk_brings_n_objects(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(10), name="list")
        head = consumer.replicate("list", mode=Incremental(4))
        node, count = head, 0
        while node is not None and not isinstance(node, ProxyOutBase):
            count += 1
            node = node.next
        assert count == 4
        assert isinstance(node, ProxyOutBase)

    def test_transitive_closure_brings_everything(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(20), name="list")
        head = consumer.replicate("list", mode=Transitive())
        node, count = head, 0
        while node is not None:
            assert not isinstance(node, ProxyOutBase)
            count += 1
            node = node.next
        assert count == 20

    def test_depth_bounded_fetch(self, zsites):
        provider, consumer = zsites
        root = Folder("root")
        mid = Folder("mid")
        leaf = Box("leaf")
        mid.add("leaf", leaf)
        root.add("mid", mid)
        provider.export(root, name="tree")
        replica = consumer.replicate("tree", mode=Incremental(0, depth=1))
        assert not isinstance(replica.child("mid"), ProxyOutBase)
        assert isinstance(replica.child("mid").child("leaf"), ProxyOutBase)

    def test_full_traversal_under_any_chunk(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(30), name="list")
        for chunk, name in ((1, "c1"), (7, "c7")):
            site = consumer.world.create_site(f"consumer-{name}")
            head = site.replicate("list", mode=Incremental(chunk))
            assert chain_indices(head) == list(range(30))

    def test_mode_travels_with_faults(self, zsites):
        """A chunk-5 replica faults in chunks of 5."""
        provider, consumer = zsites
        provider.export(make_chain(15), name="list")
        head = consumer.replicate("list", mode=Incremental(5))
        head_5 = head
        for _ in range(4):
            head_5 = head_5.next if not isinstance(head_5.next, ProxyOutBase) else head_5.next
            if isinstance(head_5, ProxyOutBase):
                break
        # Trigger one fault and count the newly materialized span.
        chain_indices(head)  # walks everything
        assert consumer.gc_stats.faults_resolved == 2  # 15 objects / 5 per fetch


class TestCopySemantics:
    def test_replica_never_aliases_master_state(self, zsites):
        provider, consumer = zsites
        master = Folder("shared")
        master.children = [1, 2, 3]
        provider.export(master, name="folder")
        replica = consumer.replicate("folder")
        replica.children.append(4)
        assert master.children == [1, 2, 3]

    def test_shared_references_preserved_in_replica(self, zsites):
        provider, consumer = zsites
        shared = Box("shared")
        root = Folder("root")
        root.add("first", shared)
        root.add("second", shared)
        provider.export(root, name="root")
        replica = consumer.replicate("root", mode=Transitive())
        assert replica.child("first") is replica.child("second")

    def test_cyclic_graph_replicates(self, zsites):
        provider, consumer = zsites
        a, b = Chain(1), Chain(2)
        a.next, b.next = b, a
        provider.export(a, name="cycle")
        a1 = consumer.replicate("cycle", mode=Transitive())
        assert a1.next.next is a1

    def test_second_replicate_returns_same_local_object(self, zsites):
        provider, consumer = zsites
        provider.export(Box("v"), name="box")
        first = consumer.replicate("box")
        second = consumer.replicate("box")
        assert first is second

    def test_refresh_updates_in_place_for_all_aliases(self, zsites):
        provider, consumer = zsites
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        alias = replica
        master.increment(41)
        provider.touch(master)
        consumer.refresh(replica)
        assert alias.read() == 41


class TestPut:
    def test_put_updates_master_state(self, zsites):
        provider, consumer = zsites
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.increment(5)
        version = consumer.put_back(replica)
        assert master.value == 5
        assert version == 2

    def test_versions_increment_per_put(self, zsites):
        provider, consumer = zsites
        master = Counter()
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        assert consumer.put_back(replica) == 2
        assert consumer.put_back(replica) == 3

    def test_put_preserves_master_identity(self, zsites):
        provider, consumer = zsites
        master = Counter()
        provider.export(master, name="counter")
        oid = obi_id_of(master)
        replica = consumer.replicate("counter")
        replica.increment()
        consumer.put_back(replica)
        assert obi_id_of(master) == oid

    def test_put_relinks_references_to_master_side_objects(self, zsites):
        provider, consumer = zsites
        b = Box("b-payload")
        a = Folder("a")
        a.add("b", b)
        provider.export(a, name="a")
        a1 = consumer.replicate("a", mode=Transitive())
        a1.name = "a-edited"
        consumer.put_back(a1)
        # The master's reference still points at the master-side b, not a
        # copy of the replica's b.
        assert a.child("b") is b
        assert a.name == "a-edited"

    def test_put_with_unresolved_proxy_field(self, zsites):
        """Putting a replica whose field is still a proxy-out keeps the
        master's original reference."""
        provider, consumer = zsites
        b = Box("deep")
        a = Folder("a")
        a.add("b", b)
        provider.export(a, name="a")
        a1 = consumer.replicate("a")  # chunk 1: b stays a proxy
        assert isinstance(a1.child("b"), ProxyOutBase)
        a1.name = "edited"
        consumer.put_back(a1)
        assert a.child("b") is b
        assert a.name == "edited"

    def test_put_of_consumer_created_object_keeps_consumer_as_master(self, zsites):
        provider, consumer = zsites
        folder = Folder("shared")
        provider.export(folder, name="folder")
        replica = consumer.replicate("folder")
        fresh = Box("made-at-consumer")
        replica.add("fresh", fresh)
        consumer.put_back(replica)
        arrived = folder.child("fresh")
        assert isinstance(arrived, ProxyOutBase)
        assert arrived._obi_provider.site_id == consumer.name
        # The provider can fault it in on demand.
        assert arrived.get() == "made-at-consumer"

    def test_put_non_replica_fails(self, zsites):
        provider, consumer = zsites
        with pytest.raises(ReplicationError):
            consumer.put_back(Box("never-replicated"))

    def test_refresh_non_replica_fails(self, zsites):
        _provider, consumer = zsites
        with pytest.raises(ReplicationError):
            consumer.refresh(Box())


class TestChainedReplication:
    def test_replica_can_act_as_provider(self, zero_world):
        """'Objects can be replicated freely among sites': S3 replicates
        A from S1's replica, and faults chase back to the origin."""
        s2 = zero_world.create_site("S2")
        s1 = zero_world.create_site("S1")
        s3 = zero_world.create_site("S3")
        chain = make_chain(3)
        s2.export(chain, name="chain")
        mid = s1.replicate("chain")  # chunk 1: mid.next is a proxy to S2
        ref = s1.export(mid, name="chain-via-s1")
        far = s3.replicate("chain-via-s1")
        assert far.get_index() == 0
        # The frontier proxy at S3 points through S1's proxy to S2's obj.
        assert chain_indices(far) == [0, 1, 2]


class TestPackaging:
    def test_pairs_created_reported(self, zsites):
        provider, consumer = zsites
        from repro.core.replication import build_package

        head = make_chain(6)
        provider.export(head, name="x")
        package = build_package(provider, head, Incremental(3))
        # 3 member pairs (head reuses its export) — head's proxy-in exists
        # already, so 2 new member pairs + 1 frontier pair.
        assert package.pairs_created == 3
        assert package.object_count == 3

    def test_cluster_package_has_single_new_pair(self, zsites):
        provider, consumer = zsites
        from repro.core.replication import build_package

        head = make_chain(6)
        provider.export(head, name="x")
        package = build_package(provider, head, Cluster(size=3))
        assert package.pairs_created == 1  # the frontier only
        meta = [m for m in package.meta.values()]
        providers = [m for m in meta if m.provider is not None]
        assert len(providers) == 1  # only the root is updatable
