"""Tests for interfaces and replication modes."""

import pytest

from repro.core.interfaces import (
    UNBOUNDED,
    Cluster,
    Incremental,
    Interface,
    ReplicationMode,
    Transitive,
)
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.util.errors import ClusterError


class TestInterface:
    def test_contains_and_iter(self):
        iface = Interface("IThing", ("get", "set"))
        assert "get" in iface
        assert "other" not in iface
        assert list(iface) == ["get", "set"]

    def test_crosses_the_wire(self):
        iface = Interface("IThing", ("a", "b"))
        result = Decoder().decode(Encoder().encode(iface))
        assert result == iface


class TestModeConstructors:
    def test_incremental_defaults(self):
        mode = Incremental()
        assert mode.chunk == 1
        assert not mode.clustered

    def test_incremental_with_chunk(self):
        assert Incremental(50).chunk == 50

    def test_incremental_unbounded_rejected(self):
        with pytest.raises(ClusterError):
            Incremental(UNBOUNDED)

    def test_incremental_depth_only_is_allowed(self):
        mode = Incremental(UNBOUNDED, depth=3)
        assert mode.depth == 3

    def test_transitive_is_unbounded_per_object(self):
        mode = Transitive()
        assert mode.unbounded
        assert not mode.clustered

    def test_cluster_by_size(self):
        mode = Cluster(size=100)
        assert mode.clustered
        assert mode.chunk == 100

    def test_cluster_by_depth(self):
        mode = Cluster(depth=2)
        assert mode.clustered
        assert mode.depth == 2

    def test_whole_graph_cluster(self):
        assert Cluster().unbounded

    def test_negative_bounds_rejected(self):
        with pytest.raises(ClusterError):
            ReplicationMode(chunk=-1)
        with pytest.raises(ClusterError):
            ReplicationMode(depth=-2)


class TestModeBehaviour:
    def test_describe_mentions_scope_and_style(self):
        assert "10 objects" in Incremental(10).describe()
        assert "clustered" in Cluster(size=5).describe()
        assert "whole graph" in Transitive().describe()

    def test_mode_crosses_the_wire(self):
        for mode in (Incremental(7), Transitive(), Cluster(size=3, depth=2)):
            result = Decoder().decode(Encoder().encode(mode))
            assert result == mode
            assert isinstance(result.chunk, int)

    def test_modes_are_immutable(self):
        mode = Incremental(5)
        with pytest.raises(AttributeError):
            mode.chunk = 9  # type: ignore[misc]
