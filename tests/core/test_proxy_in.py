"""Direct tests for the proxy-in (provider-side half of the pair)."""

import pytest

from repro.core.interfaces import Cluster, Incremental
from repro.core.meta import obi_id_of
from repro.core.packages import ReplicaPackage
from repro.core.proxy_in import PROXY_IN_CONTROL_METHODS, ProxyIn
from tests.models import Counter


@pytest.fixture
def exported(zsites):
    provider, consumer = zsites
    master = Counter(5)
    ref = provider.export(master, name="counter")
    proxy_in = provider.endpoint.objects.get(ref.object_id)
    return provider, consumer, master, ref, proxy_in


class TestControlInterface:
    def test_control_methods_exist(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        for method in PROXY_IN_CONTROL_METHODS:
            assert callable(getattr(proxy_in, method))

    def test_get_builds_a_package(self, exported):
        _p, _c, master, _ref, proxy_in = exported
        package = proxy_in.get(Incremental(1))
        assert isinstance(package, ReplicaPackage)
        assert package.root_id == obi_id_of(master)
        assert package.object_count == 1

    def test_get_default_mode_is_incremental_one(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        package = proxy_in.get()
        assert package.mode.chunk == 1
        assert not package.mode.clustered

    def test_demand_equals_get(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        a = proxy_in.get(Cluster(size=2))
        b = proxy_in.demand(Cluster(size=2))
        assert a.root_id == b.root_id
        assert a.mode == b.mode

    def test_get_version_tracks_master(self, exported):
        provider, _c, master, _ref, proxy_in = exported
        assert proxy_in.get_version() == 1
        provider.touch(master)
        assert proxy_in.get_version() == 2


class TestForwarding:
    def test_interface_methods_forward_to_master(self, exported):
        _p, _c, master, _ref, proxy_in = exported
        assert proxy_in.read() == 5
        proxy_in.increment(2)
        assert master.value == 7

    def test_private_names_raise_attribute_error(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        with pytest.raises(AttributeError):
            proxy_in._not_forwarded

    def test_non_callable_attributes_not_exposed(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        with pytest.raises(AttributeError, match="method-only"):
            proxy_in.value  # a field, not a method

    def test_missing_names_raise(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        with pytest.raises(AttributeError):
            proxy_in.no_such_method()

    def test_repr(self, exported):
        _p, _c, _m, _ref, proxy_in = exported
        assert "Counter" in repr(proxy_in)
