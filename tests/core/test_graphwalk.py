"""Tests for graph traversal and reference surgery."""

from repro.core.graphwalk import (
    breadth_first,
    direct_references,
    frontier_of,
    replace_references,
)
from tests.models import Box, Chain, Folder, make_chain


class TestDirectReferences:
    def test_plain_attribute_reference(self):
        a, b = Box(), Box()
        a.value = b
        assert list(direct_references(a)) == [b]

    def test_references_inside_containers(self):
        folder = Folder("root")
        children = [Box(), Box(), Box()]
        folder.add("a", children[0])
        folder.add("b", children[1])
        folder.tags = {"x"}
        folder.extra = {"deep": [(children[2],)]}
        found = list(direct_references(folder))
        for child in children:
            # index + children double-count a & b; presence is what matters
            assert any(ref is child for ref in found)

    def test_non_obiwan_values_ignored(self):
        box = Box()
        box.value = [1, "two", {"three": 3.0}]
        assert list(direct_references(box)) == []

    def test_dict_keys_are_scanned(self):
        box = Box()
        key = Box()
        box.value = {key: "v"}
        assert list(direct_references(box)) == [key]


class TestBreadthFirst:
    def test_unbounded_collects_everything_once(self):
        head = make_chain(5)
        members = breadth_first(head)
        assert len(members) == 5
        assert members[0] is head

    def test_max_objects_bound(self):
        head = make_chain(10)
        members = breadth_first(head, max_objects=3)
        assert [m.index for m in members] == [0, 1, 2]

    def test_max_depth_bound(self):
        head = make_chain(10)
        members = breadth_first(head, max_depth=2)
        assert [m.index for m in members] == [0, 1, 2]  # depth 0,1,2

    def test_cycle_terminates(self):
        a, b = Chain(0), Chain(1)
        a.next, b.next = b, a
        assert len(breadth_first(a)) == 2

    def test_diamond_counted_once(self):
        top, left, right, bottom = Box(), Box(), Box(), Box()
        top.value = [left, right]
        left.value = bottom
        right.value = bottom
        assert len(breadth_first(top)) == 4

    def test_bfs_order_is_level_order(self):
        root = Folder("root")
        level1 = [Box(1), Box(2)]
        root.add("a", level1[0])
        root.add("b", level1[1])
        level1[0].value = Box(3)
        members = breadth_first(root)
        assert members[0] is root
        assert set(map(id, members[1:3])) == set(map(id, level1))


class TestFrontier:
    def test_frontier_edges(self):
        head = make_chain(4)
        members = breadth_first(head, max_objects=2)
        edges = frontier_of(members)
        assert len(edges) == 1
        holder, target = edges[0]
        assert holder.index == 1
        assert target.index == 2

    def test_no_frontier_for_closed_set(self):
        head = make_chain(3)
        assert frontier_of(breadth_first(head)) == []


class TestReplaceReferences:
    def test_replace_attribute(self):
        a, old, new = Box(), Box("old"), Box("new")
        a.value = old
        assert replace_references(a, {id(old): new}) == 1
        assert a.value is new

    def test_replace_in_list_and_dict(self):
        folder = Folder()
        old, new = Box(), Box()
        folder.add("k", old)
        count = replace_references(folder, {id(old): new})
        assert count == 2  # children list + index dict
        assert folder.children[0] is new
        assert folder.index["k"] is new

    def test_replace_inside_tuple_rebuilds(self):
        a = Box()
        old, new = Box(), Box()
        a.value = (1, (old, 2))
        replace_references(a, {id(old): new})
        assert a.value == (1, (new, 2))
        assert a.value[1][0] is new

    def test_replace_dict_key(self):
        a = Box()
        old, new = Box(), Box()
        a.value = {old: "payload"}
        replace_references(a, {id(old): new})
        assert a.value == {new: "payload"}

    def test_replace_in_set(self):
        a = Box()
        old, new = Box(), Box()
        a.value = {old}
        replace_references(a, {id(old): new})
        assert a.value == {new}

    def test_replace_in_frozenset_rebuilds(self):
        a = Box()
        old, new = Box(), Box()
        a.value = frozenset({old, "other"})
        replace_references(a, {id(old): new})
        assert new in a.value
        assert old not in a.value

    def test_untouched_values_not_rewritten(self):
        a = Box()
        keep = [1, 2, 3]
        a.value = keep
        assert replace_references(a, {id(Box()): Box()}) == 0
        assert a.value is keep

    def test_multiple_replacements_single_pass(self):
        a = Folder()
        old1, old2, new1, new2 = Box(), Box(), Box(), Box()
        a.children = [old1, old2, old1]
        count = replace_references(a, {id(old1): new1, id(old2): new2})
        assert count == 3
        assert a.children == [new1, new2, new1]
