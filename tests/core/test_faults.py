"""Tests for object-fault resolution and updateMember splicing."""

import pytest

from repro.core.faults import splice
from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.util.errors import DisconnectedError
from tests.models import Box, Chain, Folder, make_chain


class TestSplice:
    def _proxy_for(self, consumer, provider, target_name="t"):
        provider.export(Box("target"), name=target_name)
        holder = Folder("holder")
        return holder

    def test_splice_rewrites_all_demanders(self, zsites):
        provider, consumer = zsites
        shared = Box("shared-target")
        left, right = Folder("left"), Folder("right")
        left.add("s", shared)
        right.add("s", shared)
        root = Folder("root")
        root.add("left", left)
        root.add("right", right)
        provider.export(root, name="root")

        replica = consumer.replicate("root", mode=Incremental(3))  # root+left+right
        left1, right1 = replica.child("left"), replica.child("right")
        proxy = left1.child("s")
        assert isinstance(proxy, ProxyOutBase)
        assert right1.child("s") is proxy  # one proxy, two demanders

        value = proxy.get()
        assert value == "shared-target"
        assert left1.child("s") is right1.child("s")
        assert not isinstance(left1.child("s"), ProxyOutBase)

    def test_splice_returns_rewrite_count(self):
        from repro.core.interfaces import Interface
        from repro.core.proxy_out import make_proxy_out_class
        from repro.rmi.refs import RemoteRef

        iface = Interface("ISpliceTest", ("m",))
        proxy = make_proxy_out_class(iface)(
            None, "t", RemoteRef("s", "o"), iface, Incremental(1)
        )
        holder_a, holder_b = Folder(), Folder()
        holder_a.children = [proxy, proxy]
        holder_b.index = {"k": proxy}
        proxy._obi_add_demander(holder_a)
        proxy._obi_add_demander(holder_b)
        replacement = Box("real")
        assert splice(proxy, replacement) == 3
        assert holder_a.children == [replacement, replacement]
        assert holder_b.index["k"] is replacement
        assert proxy._obi_resolved is replacement
        assert proxy._obi_demanders == []


class TestResolution:
    def test_local_short_circuit_avoids_network(self, zsites):
        """If another path already replicated the target, a fault
        resolves without any traffic."""
        provider, consumer = zsites
        b = Box("b")
        holder1, holder2 = Folder("h1"), Folder("h2")
        holder1.add("b", b)
        holder2.add("b", b)
        provider.export(holder1, name="h1")
        provider.export(holder2, name="h2")

        r1 = consumer.replicate("h1", mode=Incremental(0, depth=1))  # brings b
        r2 = consumer.replicate("h2", mode=Incremental(1))  # b is a proxy...
        target = r2.child("b")
        # ...which the unswizzler already resolved to the local replica:
        assert not isinstance(target, ProxyOutBase)
        assert target is r1.child("b")

    def test_fault_while_disconnected_raises_disconnected(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(4), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1))
        consumer.world.network.disconnect(consumer.name, voluntary=True)
        proxy = head.next
        with pytest.raises(DisconnectedError) as info:
            proxy.get_index()
        assert info.value.voluntary is True
        # Reconnect: the same proxy now resolves.
        consumer.world.network.reconnect(consumer.name)
        assert proxy.get_index() == 1

    def test_resolve_is_idempotent(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="chain")
        head = consumer.replicate("chain")
        proxy = head.next
        first = consumer.resolve_fault(proxy)
        second = consumer.resolve_fault(proxy)
        assert first is second
        assert consumer.gc_stats.faults_resolved == 1

    def test_aliased_stale_proxy_forwards_after_resolution(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="chain")
        head = consumer.replicate("chain")
        stale_alias = head.next  # keep the proxy beyond the splice
        head.next.get_index()  # resolve + splice
        assert stale_alias.get_index() == 1  # forwards, no second fault
        assert consumer.gc_stats.faults_resolved == 1

    def test_fault_resolved_event_published(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(2), name="chain")
        events = []
        consumer.events.subscribe("fault_resolved", lambda **kw: events.append(kw))
        head = consumer.replicate("chain")
        head.next.get_index()
        assert len(events) == 1
        assert events[0]["replica"].get_index() == 1
