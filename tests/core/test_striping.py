"""Tests for the striped Site runtime and its primitives.

Three invariants carry the whole design: the routing function sends
every oid to exactly one stripe, the striped stats facade is
indistinguishable from one merged counter object, and concurrent table
churn across 32 threads neither loses nor duplicates entries.
"""

import threading

import pytest

from repro.core.meta import obi_id_of
from repro.core.runtime import FaultPathStats, World
from repro.core.striping import (
    DEFAULT_STRIPES,
    StripedStats,
    StripeLock,
    stripe_of,
)
from repro.util.errors import ReplicationError
from tests.models import Box


class TestStripeRouting:
    def test_every_oid_maps_to_exactly_one_stripe(self):
        for i in range(2000):
            oid = f"obj:{i}"
            idx = stripe_of(oid, DEFAULT_STRIPES)
            assert 0 <= idx < DEFAULT_STRIPES
            # Deterministic: the same oid routes to the same stripe, every
            # time — cross-thread agreement rests on this.
            assert stripe_of(oid, DEFAULT_STRIPES) == idx

    def test_all_stripes_reachable(self):
        hit = {stripe_of(f"obj:{i}", DEFAULT_STRIPES) for i in range(2000)}
        assert hit == set(range(DEFAULT_STRIPES))

    def test_single_stripe_degenerates_to_zero(self):
        assert all(stripe_of(f"obj:{i}", 1) == 0 for i in range(50))

    def test_site_stripe_of_uses_site_count(self, zero_world):
        site = zero_world.create_site("s", stripes=4)
        assert site.stripe_count == 4
        for i in range(100):
            assert site._stripe_of(f"obj:{i}") == stripe_of(f"obj:{i}", 4)

    def test_world_default_stripes_knob(self):
        with World.loopback() as world:
            world.default_stripes = 8
            assert world.create_site("a").stripe_count == 8
            assert world.create_site("b", stripes=2).stripe_count == 2

    def test_invalid_stripe_count_rejected(self, zero_world):
        with pytest.raises(ReplicationError):
            zero_world.create_site("bad", stripes=0)


class TestStripeLock:
    def test_reentrant_and_depth_tracked(self):
        lock = StripeLock()
        with lock:
            with lock:
                assert lock.depth == 2
        assert lock.depth == 0
        assert lock.max_depth == 2
        assert lock.waits == 0

    def test_contended_acquire_counts_a_wait(self):
        lock = StripeLock()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(timeout=5)

        def contend():
            with lock:
                pass

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait(timeout=5)
        waiter = threading.Thread(target=contend)
        waiter.start()
        # Let the waiter hit the non-blocking fast path and fail it
        # (waits is bumped before the blocking acquire parks).
        while lock.waits == 0 and waiter.is_alive():
            pass
        release.set()
        thread.join(timeout=5)
        waiter.join(timeout=5)
        assert lock.waits >= 1


class TestStripedStats:
    def test_merged_totals_equal_sum_of_per_stripe(self):
        stats = StripedStats(FaultPathStats, 8)
        for i in range(200):
            stats.add(oid=f"obj:{i}", demands_batched=1, prefetch_hits=i % 3)
        merged = stats.snapshot()
        shards = stats.per_stripe()
        assert len(shards) == 8
        for field in merged:
            assert merged[field] == sum(shard[field] for shard in shards)
        assert merged["demands_batched"] == 200

    def test_attribute_reads_sum_across_shards(self):
        stats = StripedStats(FaultPathStats, 4)
        stats.add(oid="obj:1", coalesced_faults=2)
        stats.add(oid="obj:2", coalesced_faults=3)
        assert stats.coalesced_faults == 5

    def test_keyed_add_lands_on_routed_shard(self):
        stats = StripedStats(FaultPathStats, 8)
        oid = "obj:42"
        stats.add(oid=oid, prefetch_hits=7)
        shards = stats.per_stripe()
        owner = stripe_of(oid, 8)
        assert shards[owner]["prefetch_hits"] == 7
        assert all(
            shard["prefetch_hits"] == 0
            for idx, shard in enumerate(shards)
            if idx != owner
        )

    def test_reset_returns_totals_and_zeroes(self):
        stats = StripedStats(FaultPathStats, 4)
        stats.add(oid="obj:9", demands_batched=5)
        before = stats.reset()
        assert before["demands_batched"] == 5
        assert stats.snapshot()["demands_batched"] == 0

    def test_unknown_counter_raises(self):
        stats = StripedStats(FaultPathStats, 2)
        with pytest.raises(AttributeError):
            stats.no_such_counter

    def test_zero_stripes_rejected(self):
        with pytest.raises(ValueError):
            StripedStats(FaultPathStats, 0)


class TestConcurrentChurn:
    """32 threads of register/bump/drop churn on one striped site."""

    THREADS = 32
    PER_THREAD = 25

    def test_no_lost_or_duplicated_masters(self, zero_world):
        site = zero_world.create_site("churn", stripes=8)
        boxes = {
            t: [Box((t, i)) for i in range(self.PER_THREAD)]
            for t in range(self.THREADS)
        }
        # Assign oids up front so the churn threads contend on the site
        # tables, not on id assignment.
        oids = {
            t: [obi_id_of(box) for box in boxes[t]] for t in range(self.THREADS)
        }
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def churn(t):
            try:
                barrier.wait(timeout=10)
                for i, box in enumerate(boxes[t]):
                    site.note_master(box)
                    site.bump_master_version(oids[t][i])
                    site.bump_master_version(oids[t][i])
                    if i % 3 == 2:
                        site.drop_master(oids[t][i])
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []

        dropped_per_thread = len([i for i in range(self.PER_THREAD) if i % 3 == 2])
        expected = self.THREADS * (self.PER_THREAD - dropped_per_thread)
        assert site.master_count() == expected
        listed = [oid for oid, _record in site.iter_masters()]
        assert len(listed) == len(set(listed)) == expected
        for t in range(self.THREADS):
            for i, box in enumerate(boxes[t]):
                if i % 3 == 2:
                    assert site.local_object_for(oids[t][i]) is None
                else:
                    assert site.version_of(box) == 3

    def test_concurrent_evict_loses_nothing(self, zsites):
        provider, consumer = zsites
        count = 64
        replicas = []
        for i in range(count):
            provider.export(Box(i), name=f"box:{i}")
            replicas.append(consumer.replicate(f"box:{i}"))
        assert consumer.replica_count() == count

        barrier = threading.Barrier(16)
        errors = []

        def evict(chunk):
            try:
                barrier.wait(timeout=10)
                for replica in chunk:
                    consumer.evict(replica)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=evict, args=(replicas[t::16],))
            for t in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert consumer.replica_count() == 0

    def test_stripe_metrics_shape(self, zero_world):
        site = zero_world.create_site("m", stripes=4)
        metrics = site.stripe_metrics()
        assert metrics == {"stripes": 4, "acquire_waits": 0, "max_depth": 0}
        site.note_master(Box("x"))
        assert site.stripe_metrics()["max_depth"] >= 1
