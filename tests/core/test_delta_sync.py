"""Delta synchronization engine tests (PR 4).

Covers the four layers end to end: dirty tracking (``core.versions``),
the delta put/refresh protocol with its ``NEED_FULL`` downgrades, the
typed ``UnknownReplicaError``, cluster delta puts (loopback and TCP),
and wire compatibility with pre-delta peers that lack the
``put_delta``/``get_delta`` verbs.
"""

import pytest

from repro.core.cluster import cluster_members
from repro.core.interfaces import Cluster, Incremental
from repro.core.meta import obi_id_of
from repro.core.packages import PutDeltaEntry, PutDeltaPackage, PutEntry, PutPackage
from repro.core.replication import apply_put, apply_put_delta
from repro.core.runtime import World
from repro.core.versions import ChangeLog, DirtyTracker
from repro.serial.delta import Fingerprinter
from repro.serial.registry import global_registry
from repro.util.errors import ReplicationError, UnknownReplicaError
from tests.models import Box, Chain, Folder, make_chain


@pytest.fixture
def dsites(zero_world):
    """(provider, consumer) with delta sync enabled on both sides."""
    provider = zero_world.create_site("S2")
    consumer = zero_world.create_site("S1")
    provider.delta_sync = True
    consumer.delta_sync = True
    return provider, consumer


def _messages(world) -> int:
    stats = world.network.stats
    return stats.link("S1", "S2").messages + stats.link("S2", "S1").messages


# ----------------------------------------------------------------------
# layer 1: dirty tracking
# ----------------------------------------------------------------------
class TestDirtyTracker:
    @pytest.fixture
    def tracker(self):
        return DirtyTracker(Fingerprinter(global_registry))

    def test_capture_requires_enrollment(self, tracker):
        assert tracker.capture(Box(1)) is None

    def test_enrolled_object_starts_clean(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        snap = tracker.capture(box)
        assert snap is not None and snap.clean and not snap.whole

    def test_setattr_marks_field_dirty(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        box.set(2)
        snap = tracker.capture(box)
        assert snap.fields == frozenset({"value"})
        assert not snap.whole

    def test_commit_rebaselines_and_bumps_sync_version(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        before = tracker.sync_version(box)
        box.set(2)
        tracker.commit(box, tracker.capture(box))
        assert tracker.capture(box).clean
        assert tracker.sync_version(box) == before + 1

    def test_concurrent_write_survives_inflight_commit(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        box.set(2)
        snap = tracker.capture(box)
        box.set(3)  # lands while the put is on the wire
        tracker.commit(box, snap)
        assert tracker.capture(box).fields == frozenset({"value"})

    def test_dict_surgery_downgrades_to_whole(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        vars(box)["stowaway"] = 7  # bypasses the instrumented __setattr__
        assert tracker.capture(box).whole

    def test_deleted_field_downgrades_to_whole(self, tracker):
        chain = Chain(index=1)
        tracker.enroll(chain)
        del chain.payload
        assert tracker.capture(chain).whole

    def test_container_mutation_detected_by_fingerprint(self, tracker):
        folder = Folder(name="docs")
        tracker.enroll(folder)
        folder.add("a", "report")  # in-place list/dict mutation, no setattr
        snap = tracker.capture(folder)
        assert not snap.whole
        assert snap.fields == frozenset({"children", "index"})

    def test_mark_whole_forces_full_path(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        tracker.mark_whole(box)
        assert tracker.capture(box).whole

    def test_forget_stops_tracking(self, tracker):
        box = Box(1)
        tracker.enroll(box)
        tracker.forget(box)
        assert not tracker.is_enrolled(box)
        assert tracker.capture(box) is None


class TestChangeLog:
    def test_fields_since_unions_the_range(self):
        log = ChangeLog()
        log.record("x", 2, frozenset({"a"}))
        log.record("x", 3, frozenset({"b"}))
        assert log.fields_since("x", 1, 3) == frozenset({"a", "b"})

    def test_current_at_or_below_base_is_empty(self):
        log = ChangeLog()
        assert log.fields_since("x", 3, 3) == frozenset()
        assert log.fields_since("x", 5, 3) == frozenset()

    def test_whole_state_entry_poisons_the_range(self):
        log = ChangeLog()
        log.record("x", 2, frozenset({"a"}))
        log.record("x", 3, None)  # full put / blanket touch
        assert log.fields_since("x", 1, 3) is None
        # ...but a range past the poison is servable again.
        log.record("x", 4, frozenset({"c"}))
        assert log.fields_since("x", 3, 4) == frozenset({"c"})

    def test_uncovered_version_in_range_is_conservative(self):
        log = ChangeLog()
        log.record("x", 3, frozenset({"b"}))  # version 2 never recorded
        assert log.fields_since("x", 1, 3) is None

    def test_retention_gap_is_conservative(self):
        log = ChangeLog(retention=4)
        for version in range(2, 12):
            log.record("x", version, frozenset({f"f{version}"}))
        assert log.fields_since("x", 1, 11) is None  # evicted early versions
        assert log.fields_since("x", 8, 11) == frozenset({"f9", "f10", "f11"})

    def test_drop_forgets_the_object(self):
        log = ChangeLog()
        log.record("x", 2, frozenset({"a"}))
        log.drop("x")
        assert log.fields_since("x", 1, 2) is None


# ----------------------------------------------------------------------
# layer 3: the delta put/refresh protocol
# ----------------------------------------------------------------------
class TestDeltaPutBack:
    def test_delta_put_merges_dirty_field_only(self, dsites):
        provider, consumer = dsites
        master = Chain(index=1)
        master.payload = b"\xa5" * 256
        provider.export(master, name="chain")
        replica = consumer.replicate("chain", mode=Incremental(1))
        replica.set_index(42)
        version = consumer.put_back(replica)
        assert master.index == 42
        assert master.payload == b"\xa5" * 256
        assert version == provider.master_version(master)
        assert consumer.sync_stats.puts_delta == 1
        assert consumer.sync_stats.puts_full == 0
        assert consumer.sync_stats.delta_bytes_saved > 0

    def test_clean_put_back_is_a_network_free_noop(self, dsites):
        provider, consumer = dsites
        provider.export(Box(5), name="box")
        replica = consumer.replicate("box")
        before = _messages(consumer.world)
        version = consumer.put_back(replica)
        assert _messages(consumer.world) == before
        assert consumer.sync_stats.puts_noop == 1
        assert version == consumer.replica_info(obi_id_of(replica)).version

    def test_dict_surgery_falls_back_to_full_put(self, dsites):
        provider, consumer = dsites
        master = Box(5)
        provider.export(master, name="box")
        replica = consumer.replicate("box")
        vars(replica)["stowaway"] = 7
        consumer.put_back(replica)
        assert consumer.sync_stats.puts_delta == 0
        assert consumer.sync_stats.puts_full == 1
        assert vars(master)["stowaway"] == 7

    def test_version_mismatch_downgrades_to_full(self, dsites):
        provider, consumer = dsites
        master = Chain(index=1)
        provider.export(master, name="chain")
        replica = consumer.replicate("chain", mode=Incremental(1))
        provider.touch(master)  # concurrent master-side change
        replica.set_index(7)
        consumer.put_back(replica)
        assert consumer.sync_stats.need_full_downgrades == 1
        assert consumer.sync_stats.puts_full == 1
        assert master.index == 7

    def test_converged_states_fingerprint_identically(self, dsites):
        provider, consumer = dsites
        master = Chain(index=1)
        provider.export(master, name="chain")
        replica = consumer.replicate("chain", mode=Incremental(1))
        replica.set_index(42)
        consumer.put_back(replica)
        assert provider.fingerprinter.of_object(master) == consumer.fingerprinter.of_object(
            replica
        )


class TestDeltaRefresh:
    def test_refresh_ships_only_announced_fields(self, dsites):
        provider, consumer = dsites
        master = Chain(index=1)
        master.payload = b"\xa5" * 256
        provider.export(master, name="chain")
        replica = consumer.replicate("chain", mode=Incremental(1))
        master.index = 99
        provider.touch(master, fields=("index",))
        consumer.refresh(replica)
        assert replica.index == 99
        assert consumer.sync_stats.refreshes_delta == 1
        assert consumer.sync_stats.refreshes_full == 0

    def test_current_replica_refreshes_with_empty_delta(self, dsites):
        provider, consumer = dsites
        provider.export(Box(5), name="box")
        replica = consumer.replicate("box")
        consumer.refresh(replica)
        assert consumer.sync_stats.refreshes_delta == 1
        assert replica.get() == 5

    def test_blanket_touch_forces_full_refresh(self, dsites):
        provider, consumer = dsites
        master = Box(5)
        provider.export(master, name="box")
        replica = consumer.replicate("box")
        master.value = 6
        provider.touch(master)  # no field list: poisons the change log
        consumer.refresh(replica)
        assert replica.get() == 6
        assert consumer.sync_stats.need_full_downgrades == 1
        assert consumer.sync_stats.refreshes_full == 1

    def test_dirty_replica_takes_full_refresh_and_is_overwritten(self, dsites):
        provider, consumer = dsites
        master = Box(5)
        provider.export(master, name="box")
        replica = consumer.replicate("box")
        replica.set(123)  # local change refresh must overwrite
        consumer.refresh(replica)
        assert replica.get() == 5
        assert consumer.sync_stats.refreshes_full == 1
        assert consumer.sync_stats.refreshes_delta == 0


# ----------------------------------------------------------------------
# satellite: typed UnknownReplicaError
# ----------------------------------------------------------------------
class TestUnknownReplica:
    def test_is_a_replication_error(self):
        assert issubclass(UnknownReplicaError, ReplicationError)
        assert not issubclass(UnknownReplicaError, KeyError)

    def test_apply_put_raises_typed_error_for_unknown_id(self, zsites):
        provider, _consumer = zsites
        package = PutPackage(entries=[PutEntry(obi_id="ghost", payload=b"")])
        with pytest.raises(UnknownReplicaError, match="ghost"):
            apply_put(provider, package)

    def test_apply_put_delta_raises_typed_error_for_unknown_id(self, zsites):
        provider, _consumer = zsites
        package = PutDeltaPackage(
            entries=[PutDeltaEntry(obi_id="ghost", base_version=1, payload=b"")]
        )
        with pytest.raises(UnknownReplicaError, match="ghost"):
            apply_put_delta(provider, package)

    def test_unknown_replica_error_crosses_the_wire(self, zsites):
        provider, consumer = zsites
        provider.export(Box(1), name="box")
        replica = consumer.replicate("box")
        ref = consumer.replica_info(obi_id_of(replica)).provider
        package = PutPackage(entries=[PutEntry(obi_id="ghost", payload=b"")])
        with pytest.raises(UnknownReplicaError, match="ghost"):
            consumer.endpoint.invoke(ref, "put", (package,))  # obilint: disable=OBI204 -- deliberately malformed put: the test ships a ghost id precisely because nothing acquired it


# ----------------------------------------------------------------------
# satellite: cluster put-back, loopback and TCP
# ----------------------------------------------------------------------
class TestClusterPutBack:
    def test_cluster_delta_put_ships_only_dirty_members(self, dsites):
        provider, consumer = dsites
        masters = make_chain(6)
        provider.export(masters, name="list")
        root = consumer.replicate("list", mode=Cluster(size=6))
        members = cluster_members(consumer, root)
        members[0].set_index(100)
        members[3].set_index(303)
        versions = consumer.put_back_cluster(root)
        assert set(versions) == {obi_id_of(members[0]), obi_id_of(members[3])}
        assert masters.index == 100
        node = masters
        for _ in range(3):
            node = node.next
        assert node.index == 303
        assert consumer.sync_stats.puts_delta == 1
        assert consumer.sync_stats.puts_full == 0

    def test_clean_cluster_put_is_a_network_free_noop(self, dsites):
        provider, consumer = dsites
        provider.export(make_chain(6), name="list")
        root = consumer.replicate("list", mode=Cluster(size=6))
        before = _messages(consumer.world)
        versions = consumer.put_back_cluster(root)
        assert _messages(consumer.world) == before
        assert consumer.sync_stats.puts_noop == 1
        assert len(versions) == 6  # every member reports its current version

    def test_cluster_full_put_still_works_with_delta_off(self, zsites):
        provider, consumer = zsites
        masters = make_chain(4)
        provider.export(masters, name="list")
        root = consumer.replicate("list", mode=Cluster(size=4))
        root.set_index(41)
        versions = consumer.put_back_cluster(root)
        assert len(versions) == 4
        assert masters.index == 41
        assert consumer.sync_stats.puts_full == 1

    def test_cluster_delta_put_over_tcp(self):
        with World.tcp() as world:
            provider = world.create_site("P")
            consumer = world.create_site("C")
            provider.delta_sync = True
            consumer.delta_sync = True
            masters = make_chain(4)
            provider.export(masters, name="list")
            root = consumer.replicate("list", mode=Cluster(size=4))
            members = cluster_members(consumer, root)
            members[1].set_index(111)
            versions = consumer.put_back_cluster(root)
            assert set(versions) == {obi_id_of(members[1])}
            assert masters.next.index == 111
            assert consumer.sync_stats.puts_delta == 1
            # Clean second sync: the no-op never touches the socket.
            assert consumer.put_back_cluster(root)
            assert consumer.sync_stats.puts_noop == 1


# ----------------------------------------------------------------------
# satellite: delta/full interop with unversioned peers
# ----------------------------------------------------------------------
class LegacyProxyIn:
    """A pre-delta provider: PR-2's control surface, no delta verbs."""

    def __init__(self, inner):
        self._inner = inner

    def get(self, mode=None):
        return self._inner.get(mode)

    def put(self, package):
        return self._inner.put(package)

    def demand(self, mode=None):
        return self._inner.demand(mode)

    def get_version(self):
        return self._inner.get_version()


def _downgrade_to_legacy(provider, master) -> None:
    """Replace ``master``'s exported proxy-in with a delta-less peer."""
    oid = obi_id_of(master)
    ref = provider._provider_refs[provider._stripe_of(oid)][oid]
    table = provider.endpoint.objects
    table._objects[ref.object_id] = LegacyProxyIn(table.get(ref.object_id))


class TestUnversionedPeerInterop:
    def test_put_falls_back_to_full_and_caches_the_probe(self, dsites):
        provider, consumer = dsites
        master = Box(1)
        provider.export(master, name="box")
        _downgrade_to_legacy(provider, master)
        replica = consumer.replicate("box")

        replica.set(2)
        consumer.put_back(replica)
        assert master.get() == 2
        assert consumer.sync_stats.puts_full == 1
        assert consumer.sync_stats.puts_delta == 0

        # The failed probe is cached per provider site: the second sync
        # goes straight to the full put (one request/response pair).
        before = _messages(consumer.world)
        replica.set(3)
        consumer.put_back(replica)
        assert master.get() == 3
        assert _messages(consumer.world) == before + 2
        assert consumer.sync_stats.puts_full == 2

    def test_refresh_falls_back_to_full(self, dsites):
        provider, consumer = dsites
        master = Box(1)
        provider.export(master, name="box")
        _downgrade_to_legacy(provider, master)
        replica = consumer.replicate("box")
        master.value = 9
        provider.touch(master, fields=("value",))
        consumer.refresh(replica)
        assert replica.get() == 9
        assert consumer.sync_stats.refreshes_full == 1
        assert consumer.sync_stats.refreshes_delta == 0

    def test_unversioned_consumer_against_versioned_provider(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.delta_sync = True  # provider is delta-capable...
        master = Box(1)
        provider.export(master, name="box")
        replica = consumer.replicate("box")  # ...consumer is not
        replica.set(2)
        consumer.put_back(replica)
        assert master.get() == 2
        assert consumer.sync_stats.puts_full == 1
        assert consumer.sync_stats.puts_delta == 0


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestSyncTelemetry:
    def test_snapshot_carries_sync_counters(self, dsites):
        provider, consumer = dsites
        provider.export(Box(1), name="box")
        replica = consumer.replicate("box")
        replica.set(2)
        consumer.put_back(replica)
        consumer.put_back(replica)  # clean: no-op
        snap = consumer.sync_stats.snapshot()
        assert snap["puts_delta"] == 1
        assert snap["puts_noop"] == 1
        consumer.sync_stats.reset()
        assert consumer.sync_stats.snapshot()["puts_delta"] == 0
