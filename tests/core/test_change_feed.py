"""ChangeLog journal hardening: serials, epoch, typed retention gaps.

PR 10's feed layer sits on these primitives, but they are useful (and
tested) on their own: dense journal serials, mirror-side numbering,
observer discipline, and the strict ``changed_fields`` variant that
raises :class:`RetentionGapError` where ``fields_since`` silently
downgraded.
"""

import pytest

from repro.core.versions import ChangeLog, FeedEvent
from repro.util.errors import ReplicationError, RetentionGapError


class TestJournalSerials:
    def test_serials_are_dense_from_one(self):
        log = ChangeLog()
        assert log.earliest_serial == 0 and log.latest_serial == 0
        assert log.record("oid:1", 1, frozenset({"value"})) == 1
        assert log.record("oid:2", 1, None) == 2
        assert log.earliest_serial == 1
        assert log.latest_serial == 2

    def test_events_since_returns_strict_tail(self):
        log = ChangeLog()
        for version in range(1, 6):
            log.record("oid:1", version, None)
        tail = log.events_since(3)
        assert [event.serial for event in tail] == [4, 5]
        assert tail[-1] == FeedEvent(5, "oid:1", 5, None)
        assert log.events_since(5) == []
        assert log.events_since(99) == []  # ahead of the head: nothing to replay

    def test_retention_gap_is_typed_and_carries_the_window(self):
        log = ChangeLog(journal_retention=4)
        for version in range(1, 11):
            log.record("oid:1", version, None)
        assert log.earliest_serial == 7
        with pytest.raises(RetentionGapError) as excinfo:
            log.events_since(2)
        gap = excinfo.value
        assert (gap.requested, gap.earliest, gap.latest) == (2, 7, 10)
        assert isinstance(gap, ReplicationError)  # routes through NEED_FULL paths
        # From the retention boundary the tail is still servable.
        assert [event.serial for event in log.events_since(6)] == [7, 8, 9, 10]

    def test_record_mirror_continues_the_group_numbering(self):
        log = ChangeLog()
        log.record_mirror(7, "oid:1", 3, None)
        assert log.latest_serial == 7
        # A local write after promotion picks up where the group left off.
        assert log.record("oid:2", 1, None) == 8

    def test_record_mirror_feeds_the_field_log_too(self):
        log = ChangeLog()
        log.record_mirror(1, "oid:1", 1, frozenset({"value"}))
        log.record_mirror(2, "oid:1", 2, frozenset({"index"}))
        assert log.changed_fields("oid:1", 0, 2) == frozenset({"value", "index"})


class TestObservers:
    def test_observer_sees_every_local_record(self):
        log, seen = ChangeLog(), []
        log.subscribe(seen.append)
        log.record("oid:1", 1, frozenset({"x"}))
        assert seen == [FeedEvent(1, "oid:1", 1, frozenset({"x"}))]

    def test_mirrored_events_do_not_notify(self):
        log, seen = ChangeLog(), []
        log.subscribe(seen.append)
        log.record_mirror(5, "oid:1", 2, None)
        assert seen == []

    def test_unsubscribe_stops_delivery(self):
        log, seen = ChangeLog(), []
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.record("oid:1", 1, None)
        assert seen == []


class TestEpoch:
    def test_adopt_is_monotonic(self):
        log = ChangeLog()
        assert log.epoch == 0
        assert log.adopt_epoch(3) == 3
        assert log.adopt_epoch(1) == 3  # never goes backwards
        assert log.epoch == 3

    def test_bump_advances_by_one(self):
        log = ChangeLog()
        log.adopt_epoch(2)
        assert log.bump_epoch() == 3


class TestChangedFieldsStrict:
    def test_gap_raises_instead_of_downgrading(self):
        log = ChangeLog(retention=2)
        for version in range(1, 6):
            log.record("oid:1", version, frozenset({f"f{version}"}))
        with pytest.raises(RetentionGapError):
            log.changed_fields("oid:1", 0, 5)
        # The lenient wrapper keeps the historical NEED_FULL contract.
        assert log.fields_since("oid:1", 0, 5) is None

    def test_whole_state_change_still_returns_none(self):
        log = ChangeLog()
        log.record("oid:1", 1, None)
        assert log.changed_fields("oid:1", 0, 1) is None

    def test_covered_range_unions_fields(self):
        log = ChangeLog()
        log.record("oid:1", 1, frozenset({"a"}))
        log.record("oid:1", 2, frozenset({"b"}))
        assert log.changed_fields("oid:1", 0, 2) == frozenset({"a", "b"})
        assert log.changed_fields("oid:1", 2, 2) == frozenset()
