"""Shared probe-and-downgrade negotiation helper (PR 8 satellite).

PR 4 (delta sync) and PR 7 (obicodec) each carried their own copy of the
probe/classify/remember dance and their own per-provider cache set;
``repro.core.negotiation`` is now the single implementation.  These
tests cover the helper in isolation (capability table, probe semantics,
thread safety) and through the Site paths that adopted it.
"""

import threading

import pytest

from repro.core.negotiation import (
    COMPILED_CODEC,
    DELTA_SYNC,
    UNSUPPORTED,
    Capability,
    PeerCapabilities,
    probe,
)
from repro.core.meta import obi_id_of
from repro.serial import tags
from repro.util.errors import (
    ProtocolError,
    RemoteError,
    ReplicationError,
    SerializationError,
)
from tests.models import Counter


# ----------------------------------------------------------------------
# PeerCapabilities
# ----------------------------------------------------------------------
class TestPeerCapabilities:
    def test_every_site_starts_fully_capable(self):
        caps = PeerCapabilities()
        assert caps.assume("S9", DELTA_SYNC)
        assert caps.assume("S9", COMPILED_CODEC)
        assert caps.snapshot() == {}

    def test_mark_is_per_site_and_per_capability(self):
        caps = PeerCapabilities()
        caps.mark_unsupported("S2", DELTA_SYNC)
        assert not caps.assume("S2", DELTA_SYNC)
        assert caps.assume("S2", COMPILED_CODEC)  # other capability untouched
        assert caps.assume("S3", DELTA_SYNC)  # other site untouched

    def test_accepts_capability_or_bare_name(self):
        caps = PeerCapabilities()
        caps.mark_unsupported("S2", "delta_sync")
        assert not caps.assume("S2", DELTA_SYNC)
        assert not caps.assume("S2", "delta_sync")

    def test_forget_restores_optimism(self):
        caps = PeerCapabilities()
        caps.mark_unsupported("S2", DELTA_SYNC)
        caps.mark_unsupported("S2", COMPILED_CODEC)
        caps.forget("S2")
        assert caps.assume("S2", DELTA_SYNC)
        assert caps.assume("S2", COMPILED_CODEC)

    def test_snapshot_is_immutable_copy(self):
        caps = PeerCapabilities()
        caps.mark_unsupported("S2", DELTA_SYNC)
        shot = caps.snapshot()
        assert shot == {"S2": frozenset({"delta_sync"})}
        caps.mark_unsupported("S2", COMPILED_CODEC)
        assert shot == {"S2": frozenset({"delta_sync"})}  # old copy unchanged

    def test_concurrent_marks_never_lose_verdicts(self):
        caps = PeerCapabilities()
        sites = [f"S{i}" for i in range(8)]

        def hammer(name: str) -> None:
            for _ in range(200):
                caps.mark_unsupported(name, DELTA_SYNC)
                caps.mark_unsupported(name, COMPILED_CODEC)
                assert not caps.assume(name, DELTA_SYNC)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in sites]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shot = caps.snapshot()
        assert all(shot[s] == {"delta_sync", "compiled_codec"} for s in sites)


# ----------------------------------------------------------------------
# probe()
# ----------------------------------------------------------------------
class TestProbe:
    def test_success_passes_result_through(self):
        caps = PeerCapabilities()
        assert probe(caps, "S2", DELTA_SYNC, lambda: {"oid": 3}) == {"oid": 3}
        assert caps.assume("S2", DELTA_SYNC)  # no verdict recorded

    def test_unsupported_shape_caches_and_returns_sentinel(self):
        caps = PeerCapabilities()
        def attempt():
            raise ProtocolError("object has no method 'put_delta'")
        assert probe(caps, "S2", DELTA_SYNC, attempt) is UNSUPPORTED
        assert not caps.assume("S2", DELTA_SYNC)

    def test_genuine_failure_propagates_uncached(self):
        caps = PeerCapabilities()
        def attempt():
            raise ProtocolError("frame too large")
        with pytest.raises(ProtocolError, match="frame too large"):
            probe(caps, "S2", DELTA_SYNC, attempt)
        assert caps.assume("S2", DELTA_SYNC)

    def test_unlisted_exception_type_propagates(self):
        caps = PeerCapabilities()
        def attempt():
            raise RuntimeError("disk on fire")
        with pytest.raises(RuntimeError):
            probe(caps, "S2", DELTA_SYNC, attempt)
        assert caps.assume("S2", DELTA_SYNC)

    def test_sentinel_is_falsy_and_singleton(self):
        assert not UNSUPPORTED
        assert UNSUPPORTED is type(UNSUPPORTED)()


# ----------------------------------------------------------------------
# the shipped capability predicates
# ----------------------------------------------------------------------
class TestDeltaSyncShapes:
    def test_missing_method_means_unversioned_peer(self):
        exc = ProtocolError("object 'o1' has no method 'put_delta'")
        assert DELTA_SYNC.unsupported(exc)

    def test_flattened_attribute_error_means_unversioned_peer(self):
        exc = RemoteError("boom", remote_type="AttributeError")
        assert DELTA_SYNC.unsupported(exc)

    def test_other_remote_failures_are_genuine(self):
        assert not DELTA_SYNC.unsupported(RemoteError("x", remote_type="KeyError"))
        assert not DELTA_SYNC.unsupported(ProtocolError("frame too large"))


class TestCompiledCodecShapes:
    def test_unknown_wire_tag_local_and_flattened(self):
        assert COMPILED_CODEC.unsupported(SerializationError("unknown wire tag 0x10"))
        assert COMPILED_CODEC.unsupported(
            RemoteError("unknown wire tag 0x10", remote_type="SerializationError")
        )

    def test_state_dict_complaint_local_and_flattened(self):
        assert COMPILED_CODEC.unsupported(
            ReplicationError("put entry must decode to a state dict")
        )
        assert COMPILED_CODEC.unsupported(
            RemoteError(
                "put entry must decode to a state dict",
                remote_type="ReplicationError",
            )
        )

    def test_other_serialization_failures_are_genuine(self):
        assert not COMPILED_CODEC.unsupported(SerializationError("dangling back-reference"))
        assert not COMPILED_CODEC.unsupported(RemoteError("x", remote_type="ValueError"))


# ----------------------------------------------------------------------
# Site integration: one cache, both negotiations
# ----------------------------------------------------------------------
class TestSiteSharedCache:
    def test_delta_probe_records_into_shared_table(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        consumer.delta_sync = True
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")

        # Strip the delta verbs from the provider's skeleton so it looks
        # like an unversioned (pre-PR-4) peer.
        oid = obi_id_of(master)
        ref = provider._provider_refs[provider._stripe_of(oid)][oid]
        table = provider.endpoint.objects
        inner = table.get(ref.object_id)

        class UnversionedProxyIn:
            def __getattr__(self, name):
                if name in ("put_delta", "get_delta"):
                    raise AttributeError(name)
                return getattr(inner, name)

        table._objects[ref.object_id] = UnversionedProxyIn()
        replica.increment()
        consumer.put_back(replica)
        assert master.read() == 2  # fell back to the full put

        shot = consumer.peer_caps.snapshot()
        assert shot[provider.name] == {"delta_sync"}
        assert not consumer._delta_peer_ok(ref)
        assert consumer._codec_peer_ok(ref) is False  # knob off, not verdict

    def test_codec_rejection_records_into_shared_table(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True
        consumer.compiled_codec = True
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")

        oid = obi_id_of(master)
        ref = provider._provider_refs[provider._stripe_of(oid)][oid]
        table = provider.endpoint.objects
        inner = table.get(ref.object_id)

        class PreCodecProxyIn:
            def __getattr__(self, name):
                return getattr(inner, name)

            def put(self, package):
                for entry in package.entries:
                    if entry.payload and entry.payload[0] == tags.OBJECT_SCHEMA:
                        raise SerializationError(
                            f"unknown wire tag 0x{tags.OBJECT_SCHEMA:02x}"
                        )
                return inner.put(package)

        table._objects[ref.object_id] = PreCodecProxyIn()
        replica.increment()
        consumer.put_back(replica)
        assert master.read() == 2  # retried reflectively

        shot = consumer.peer_caps.snapshot()
        assert shot[provider.name] == {"compiled_codec"}
        assert not consumer._codec_peer_ok(ref)
        assert consumer._delta_peer_ok(ref)  # delta verdict untouched

    def test_verdicts_for_both_capabilities_coexist(self, zero_world):
        consumer = zero_world.create_site("S1")
        consumer.peer_caps.mark_unsupported("S2", DELTA_SYNC)
        consumer.peer_caps.mark_unsupported("S2", COMPILED_CODEC)
        assert consumer.peer_caps.snapshot()["S2"] == {
            "delta_sync",
            "compiled_codec",
        }


# ----------------------------------------------------------------------
# Topology-driven cache invalidation (PR 10 satellite)
# ----------------------------------------------------------------------
class TestTopologyInvalidation:
    """A peer that detaches and re-attaches may be a restarted build —
    possibly upgraded — so its cached capability verdicts must not
    outlive its connection."""

    def test_detach_forgets_the_peers_verdicts(self, zero_world):
        consumer = zero_world.create_site("S1")
        provider = zero_world.create_site("S2")
        consumer.peer_caps.mark_unsupported(provider.name, DELTA_SYNC)
        assert not consumer.peer_caps.assume(provider.name, DELTA_SYNC)
        zero_world.network.detach(provider.name)
        assert consumer.peer_caps.assume(provider.name, DELTA_SYNC)

    def test_reattach_forgets_verdicts_cached_while_detached(self, zero_world):
        consumer = zero_world.create_site("S1")
        consumer.peer_caps.mark_unsupported("S2", COMPILED_CODEC)
        zero_world.create_site("S2")  # the peer comes up after the verdict
        assert consumer.peer_caps.assume("S2", COMPILED_CODEC)

    def test_own_attach_leaves_other_verdicts_alone(self, zero_world):
        consumer = zero_world.create_site("S1")
        consumer.peer_caps.mark_unsupported("S2", DELTA_SYNC)
        zero_world.create_site("S3")  # unrelated peer churning
        assert not consumer.peer_caps.assume("S2", DELTA_SYNC)
