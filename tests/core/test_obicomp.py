"""Tests for the obicomp compiler, porting helpers and source emission."""

import pytest

from repro import obiwan
from repro.core.meta import compiled_registry, interface_of, is_compiled_class
from repro.core.obicomp import (
    compile_class,
    derive_interface,
    emit_module,
    emit_proxy_source,
    port_legacy_class,
    port_rmi_class,
)
from repro.core.proxy_in import ProxyIn
from repro.core.proxy_out import ProxyOutBase
from repro.util.errors import ReplicationError


class TestDeriveInterface:
    def test_public_methods_in_definition_order(self):
        class Ordered:
            def zulu(self):
                pass

            def alpha(self):
                pass

        iface = derive_interface(Ordered)
        assert iface.methods == ("zulu", "alpha")
        assert iface.name == "IOrdered"

    def test_private_and_dunder_excluded(self):
        class Mixed:
            def visible(self):
                pass

            def _hidden(self):
                pass

            def __also_hidden(self):
                pass

        assert derive_interface(Mixed).methods == ("visible",)

    def test_inherited_methods_included(self):
        class Base:
            def base_method(self):
                pass

        class Derived(Base):
            def own_method(self):
                pass

        iface = derive_interface(Derived)
        assert set(iface.methods) == {"base_method", "own_method"}

    def test_static_and_class_methods_excluded(self):
        class WithStatics:
            def instance_method(self):
                pass

            @staticmethod
            def static_method():
                pass

            @classmethod
            def class_method(cls):
                pass

        assert derive_interface(WithStatics).methods == ("instance_method",)

    def test_property_rejected_with_guidance(self):
        class WithProperty:
            def method(self):
                pass

            @property
            def broken(self):
                return 1

        with pytest.raises(ReplicationError, match="property"):
            derive_interface(WithProperty)

    def test_empty_interface_rejected(self):
        class Empty:
            pass

        with pytest.raises(ReplicationError, match="no public methods"):
            derive_interface(Empty)

    def test_custom_name(self):
        class Named:
            def m(self):
                pass

        assert derive_interface(Named, name="ICustom").name == "ICustom"

    def test_non_class_rejected(self):
        with pytest.raises(ReplicationError):
            derive_interface(42)  # type: ignore[arg-type]


class TestCompile:
    def test_compile_registers_everywhere(self):
        @compile_class
        class FreshlyCompiled:
            def act(self):
                return "ok"

        assert is_compiled_class(FreshlyCompiled)
        assert "IFreshlyCompiled" in compiled_registry
        entry = compiled_registry.by_interface("IFreshlyCompiled")
        assert issubclass(entry.proxy_out_cls, ProxyOutBase)
        assert "act" in entry.interface

    def test_compile_is_idempotent(self):
        @compile_class
        class Once:
            def m(self):
                pass

        again = compile_class(Once)
        assert again is Once

    def test_compile_with_interface_name(self):
        @compile_class(interface_name="IRenamed")
        class OriginalName:
            def m(self):
                pass

        assert interface_of(OriginalName).name == "IRenamed"

    def test_slots_rejected(self):
        class Slotted:
            __slots__ = ("x",)

            def m(self):
                pass

        with pytest.raises(ReplicationError, match="__slots__"):
            compile_class(Slotted)

    def test_inherited_slots_rejected(self):
        # __slots__ anywhere along the MRO removes the instance __dict__
        # replication relies on — a subclass cannot undo the restriction.
        class SlottedBase:
            __slots__ = ("x",)

        class Derived(SlottedBase):
            def m(self):
                pass

        with pytest.raises(ReplicationError, match="__slots__"):
            compile_class(Derived)

    def test_slots_rejection_leaves_class_uncompiled(self):
        class Slotted:
            __slots__ = ("x",)

            def m(self):
                pass

        with pytest.raises(ReplicationError):
            compile_class(Slotted)
        assert not is_compiled_class(Slotted)
        assert "ISlotted" not in compiled_registry

    def test_recompilation_preserves_interface_identity(self):
        @compile_class
        class Stable:
            def m(self):
                pass

        before = interface_of(Stable)
        entry_before = compiled_registry.by_interface("IStable")
        compile_class(Stable)
        assert interface_of(Stable) is before
        assert compiled_registry.by_interface("IStable") is entry_before

    def test_interface_name_override_registers_under_custom_name(self):
        @compile_class(interface_name="ICustomWire")
        class CustomNamed:
            def m(self):
                pass

        entry = compiled_registry.by_interface("ICustomWire")
        assert entry.cls is CustomNamed
        assert "ICustomNamed" not in compiled_registry

    def test_interface_name_collision_rejected(self):
        @compile_class(interface_name="ITakenName")
        class First:
            def m(self):
                pass

        class Second:
            def m(self):
                pass

        with pytest.raises(ReplicationError, match="ITakenName"):
            compile_class(Second, interface_name="ITakenName")

    def test_non_class_rejected(self):
        with pytest.raises(ReplicationError, match="classes"):
            compile_class(lambda: None)  # type: ignore[arg-type]

    def test_empty_class_rejected_and_unregistered(self):
        class NoMethods:
            pass

        with pytest.raises(ReplicationError, match="no public methods"):
            compile_class(NoMethods)
        assert not is_compiled_class(NoMethods)


class TestPorting:
    def test_port_legacy_class(self):
        class LegacyThing:
            def work(self):
                return "done"

        Ported = port_legacy_class(LegacyThing)
        assert Ported is LegacyThing
        assert interface_of(Ported).methods == ("work",)

    def test_port_rmi_class_strips_suffix_and_plumbing(self):
        class WidgetRemoteImpl:
            def business(self):
                return 1

            def export(self):
                raise NotImplementedError

            def lookup(self, name):
                raise NotImplementedError

        Local = port_rmi_class(WidgetRemoteImpl)
        assert Local.__name__ == "Widget"
        assert interface_of(Local).methods == ("business",)
        assert issubclass(Local, WidgetRemoteImpl)
        assert Local().business() == 1

    def test_port_rmi_without_suffix_keeps_name(self):
        class PlainService:
            def serve(self):
                return "served"

            def bind(self, name):
                pass

        Local = port_rmi_class(PlainService)
        assert Local.__name__ == "PlainService"
        assert interface_of(Local).methods == ("serve",)

    def test_port_rmi_all_plumbing_rejected(self):
        class OnlyPlumbingRemoteImpl:
            def export(self):
                pass

        with pytest.raises(ReplicationError, match="business"):
            port_rmi_class(OnlyPlumbingRemoteImpl)


class TestEmit:
    def test_emitted_source_is_valid_python(self):
        from tests.models import Box, Chain

        source = emit_module([Box, Chain])
        namespace: dict = {}
        exec(compile(source, "<emitted>", "exec"), namespace)
        assert "IBox" in namespace
        assert issubclass(namespace["BoxProxyOut"], ProxyOutBase)
        assert issubclass(namespace["ChainProxyIn"], ProxyIn)

    def test_emitted_proxy_faults_like_the_generated_one(self):
        from tests.models import Box

        source = emit_proxy_source(Box)
        namespace = {"ProxyOutBase": ProxyOutBase, "ProxyIn": ProxyIn}
        from typing import Protocol

        namespace["Protocol"] = Protocol
        exec(compile(source, "<emitted>", "exec"), namespace)
        emitted_cls = namespace["BoxProxyOut"]
        assert hasattr(emitted_cls, "get")
        assert hasattr(emitted_cls, "set")

    def test_emitted_module_has_header(self):
        from tests.models import Box

        source = emit_module([Box])
        assert source.startswith('"""Generated by obicomp')

    def test_emitted_module_carries_codec_source(self):
        from tests.models import Counter

        from repro.serial.compiled import codec_for

        assert codec_for(Counter) is not None  # Counter: value: int = 0
        source = emit_module([Counter])
        assert "import struct as _struct" in source
        assert "_obicodec_encode_" in source
        namespace: dict = {}
        exec(compile(source, "<emitted>", "exec"), namespace)
        encode = next(
            fn for name, fn in namespace.items() if name.startswith("_obicodec_encode_")
        )
        decode = next(
            fn for name, fn in namespace.items() if name.startswith("_obicodec_decode_")
        )
        out = bytearray()

        class _Memo(list):
            add = list.append

        original = Counter(33)
        assert encode(out, original, _Memo())
        header = codec_for(Counter).header
        rebuilt, end = decode(
            memoryview(bytes(out))[len(header):], 0, [], lambda: Counter.__new__(Counter)
        )
        assert rebuilt.value == 33
        assert end == len(out) - len(header)

    def test_codecless_class_emits_no_codec_section(self):
        from tests.models import Box

        assert "_obicodec_" not in emit_proxy_source(Box)
