"""Property-based convergence tests.

For arbitrary interleavings of replica writes, put-backs and refreshes,
the system must satisfy:

* after ``put_back``, the master's state equals the replica's;
* after ``refresh``, the replica's state equals the master's;
* replicas on different sites never influence each other except through
  the master;
* chunk size never changes the *result* of a traversal, only its cost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.runtime import World
from tests.models import Counter, chain_indices, make_chain

# One writer interleaving: each step is (site index, operation).
operations = st.lists(
    st.tuples(st.integers(0, 1), st.sampled_from(["write", "put", "refresh"])),
    min_size=1,
    max_size=20,
)


@given(operations)
@settings(max_examples=100, deadline=None)
def test_put_refresh_convergence(ops):
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        master = Counter(0)
        provider.export(master, name="counter")
        sites = [world.create_site("A"), world.create_site("B")]
        replicas = [site.replicate("counter") for site in sites]
        pending_writes = [0, 0]

        for index, op in ops:
            site, replica = sites[index], replicas[index]
            if op == "write":
                replica.increment()
                pending_writes[index] += 1
            elif op == "put":
                site.put_back(replica)
                # Master now exactly mirrors this replica.
                assert master.value == replica.read()
                pending_writes[index] = 0
            else:  # refresh
                site.refresh(replica)
                assert replica.read() == master.value
                pending_writes[index] = 0

        # Final sync from both sides must reach a single fixed point.
        for site, replica in zip(sites, replicas):
            site.refresh(replica)
            assert replica.read() == master.value


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_traversal_result_independent_of_mode(length, chunk, clustered):
    """The paper's modes trade cost, never semantics."""
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        consumer = world.create_site("C")
        provider.export(make_chain(length), name="chain")
        mode = Cluster(size=chunk) if clustered else Incremental(chunk)
        head = consumer.replicate("chain", mode=mode)
        assert chain_indices(head) == list(range(length))


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_replica_isolation_between_sites(a_writes, b_writes):
    """Two consumers' local writes never leak into each other."""
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        master = Counter(0)
        provider.export(master, name="counter")
        site_a, site_b = world.create_site("A"), world.create_site("B")
        ra, rb = site_a.replicate("counter"), site_b.replicate("counter")
        ra.increment(a_writes)
        rb.increment(b_writes)
        assert ra.read() == a_writes
        assert rb.read() == b_writes
        assert master.value == 0


@given(st.lists(st.integers(1, 50), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_version_is_monotone_under_puts(increments):
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        master = Counter(0)
        provider.export(master, name="counter")
        consumer = world.create_site("C")
        replica = consumer.replicate("counter")
        last_version = 1
        for amount in increments:
            replica.increment(amount)
            version = consumer.put_back(replica)
            assert version == last_version + 1
            last_version = version
        assert master.value == sum(increments)
