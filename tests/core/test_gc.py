"""Tests for proxy-out garbage-collection accounting."""

import gc

from repro.core.gc_stats import GcStats
from repro.core.interfaces import Incremental
from tests.models import chain_indices, make_chain


class TestGcStats:
    def test_counters_start_at_zero(self):
        stats = GcStats()
        assert stats.proxies_created == 0
        assert stats.faults_resolved == 0
        assert stats.resolved_alive == 0
        assert stats.resolved_collected == 0

    def test_tracking_lifecycle(self):
        stats = GcStats()

        class Probe:
            pass

        probe = Probe()
        stats.track_created()
        stats.track_resolved(probe)
        assert stats.proxies_created == 1
        assert stats.resolved_alive == 1
        del probe
        gc.collect()
        assert stats.resolved_collected == 1
        assert stats.resolved_alive == 0

    def test_force_collect_returns_delta(self):
        stats = GcStats()

        class Probe:
            pass

        probe = Probe()
        stats.track_resolved(probe)
        del probe
        assert stats.force_collect() >= 0
        assert stats.resolved_collected == 1


class TestEndToEndReclamation:
    def test_all_spliced_proxies_die_after_traversal(self, zsites):
        """Paper Section 2.2 step 6: spliced proxies become garbage."""
        provider, consumer = zsites
        provider.export(make_chain(30), name="chain")
        head = consumer.replicate("chain", mode=Incremental(5))
        assert chain_indices(head) == list(range(30))
        resolved = consumer.gc_stats.faults_resolved
        assert resolved == 5  # 30 objects / 5 per fetch − initial fetch
        consumer.gc_stats.force_collect()
        assert consumer.gc_stats.resolved_collected == resolved
        assert consumer.gc_stats.resolved_alive == 0

    def test_application_held_proxy_stays_alive(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="chain")
        head = consumer.replicate("chain")
        kept = head.next  # application keeps the proxy
        kept.get_index()
        consumer.gc_stats.force_collect()
        assert consumer.gc_stats.resolved_alive == 1
        del kept
        consumer.gc_stats.force_collect()
        assert consumer.gc_stats.resolved_alive == 0

    def test_repr_is_informative(self):
        stats = GcStats()
        text = repr(stats)
        assert "created=0" in text and "resolved=0" in text
