"""FaultPathStats and PoolStats counter semantics under concurrency.

The fault path exists because resolution is concurrent, so its own
bookkeeping must be exact under the same concurrency: N threads adding
must never lose a count, and snapshot/reset must be atomic with respect
to adders (no increment may vanish between the snapshot and the zeroing).
"""

from __future__ import annotations

import threading

from repro.core.runtime import FaultPathStats
from repro.simnet.tcp import PoolStats

THREADS = 8
PER_THREAD = 300


def _hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def run():
        barrier.wait()
        worker()

    pool = [threading.Thread(target=run) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestFaultPathStats:
    def test_add_defaults_to_zero(self):
        stats = FaultPathStats()
        stats.add()
        assert stats.snapshot() == {
            "demands_batched": 0,
            "prefetch_hits": 0,
            "coalesced_faults": 0,
        }

    def test_add_bumps_selected_counters(self):
        stats = FaultPathStats()
        stats.add(demands_batched=1, prefetch_hits=3)
        stats.add(coalesced_faults=2)
        assert stats.demands_batched == 1
        assert stats.prefetch_hits == 3
        assert stats.coalesced_faults == 2

    def test_concurrent_adds_are_exact(self):
        stats = FaultPathStats()

        def worker():
            for _ in range(PER_THREAD):
                stats.add(demands_batched=1, prefetch_hits=2, coalesced_faults=1)

        _hammer(worker)
        assert stats.snapshot() == {
            "demands_batched": THREADS * PER_THREAD,
            "prefetch_hits": 2 * THREADS * PER_THREAD,
            "coalesced_faults": THREADS * PER_THREAD,
        }

    def test_reset_returns_prior_values_and_zeroes(self):
        stats = FaultPathStats()
        stats.add(demands_batched=5, prefetch_hits=7)
        before = stats.reset()
        assert before == {
            "demands_batched": 5,
            "prefetch_hits": 7,
            "coalesced_faults": 0,
        }
        assert stats.snapshot() == {
            "demands_batched": 0,
            "prefetch_hits": 0,
            "coalesced_faults": 0,
        }

    def test_no_increment_lost_across_concurrent_resets(self):
        """adders + resetters in parallel: every add lands either in a
        reset's returned snapshot or in the final residue — never both,
        never neither."""
        stats = FaultPathStats()
        harvested = []
        harvested_lock = threading.Lock()

        def adder():
            for _ in range(PER_THREAD):
                stats.add(demands_batched=1)

        def resetter():
            for _ in range(PER_THREAD // 3):
                before = stats.reset()
                with harvested_lock:
                    harvested.append(before["demands_batched"])

        barrier = threading.Barrier(THREADS + 2)
        threads = [
            *(threading.Thread(target=lambda: (barrier.wait(), adder())) for _ in range(THREADS)),
            *(threading.Thread(target=lambda: (barrier.wait(), resetter())) for _ in range(2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(harvested) + stats.snapshot()["demands_batched"]
        assert total == THREADS * PER_THREAD

    def test_snapshot_is_mutually_consistent(self):
        """add() bumps two counters atomically; a snapshot must never see
        one moved without the other."""
        stats = FaultPathStats()
        stop = threading.Event()
        torn = []

        def adder():
            while not stop.is_set():
                stats.add(demands_batched=1, prefetch_hits=1)

        def reader():
            for _ in range(2000):
                snap = stats.snapshot()
                if snap["demands_batched"] != snap["prefetch_hits"]:
                    torn.append(snap)
            stop.set()

        threads = [threading.Thread(target=adder) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert torn == []


class TestPoolStats:
    def test_concurrent_records_are_exact(self):
        stats = PoolStats()

        def worker():
            for _ in range(PER_THREAD):
                stats.record_created("a", "b")
                stats.record_reused("a", "b")
                stats.record_reused("b", "a")

        _hammer(worker)
        assert stats.total_created == THREADS * PER_THREAD
        assert stats.total_reused == 2 * THREADS * PER_THREAD
        assert stats.reused_from("a") == THREADS * PER_THREAD
        assert stats.reused_from("b") == THREADS * PER_THREAD

    def test_pair_view_matches_records(self):
        stats = PoolStats()
        stats.record_created("x", "y")
        stats.record_reused("x", "y")
        pair = stats.pair("x", "y")
        assert (pair.created, pair.reused) == (1, 1)
