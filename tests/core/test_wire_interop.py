"""Frame-level interop guarantees for mixed-version deployments (PR 8).

The compiled-codec negotiation promises that an un-upgraded peer never
has to *parse* an ``OBJECT_SCHEMA`` (0x10) frame it cannot understand:
providers emit compiled frames only to consumers that announced
``codec=1``, and consumers stop shipping compiled puts to a provider
site the moment one probe is rejected.  These tests watch the actual
payload bytes crossing each proxy-in to prove it.
"""

import pytest

from repro.core.meta import obi_id_of
from repro.serial import tags
from repro.util.errors import SerializationError
from tests.models import Counter


def _proxy_in(provider, master):
    oid = obi_id_of(master)
    ref = provider._provider_refs[provider._stripe_of(oid)][oid]
    return provider.endpoint.objects, ref.object_id


class RecordingProxyIn:
    """Wraps a proxy-in, recording the first byte of every payload that
    crosses it in either direction."""

    def __init__(self, inner, *, reject_codec=False):
        self._inner = inner
        self._reject_codec = reject_codec
        self.sent_tags: list[int] = []
        self.received_tags: list[int] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def get(self, mode=None):
        package = self._inner.get(mode)
        if package.payload:
            self.sent_tags.append(package.payload[0])
        return package

    def demand(self, mode=None):
        package = self._inner.demand(mode)
        if package.payload:
            self.sent_tags.append(package.payload[0])
        return package

    def put(self, package):
        for entry in package.entries:
            if entry.payload:
                self.received_tags.append(entry.payload[0])
        if self._reject_codec and any(
            entry.payload and entry.payload[0] == tags.OBJECT_SCHEMA
            for entry in package.entries
        ):
            raise SerializationError(f"unknown wire tag 0x{tags.OBJECT_SCHEMA:02x}")
        return self._inner.put(package)


class TestGetDirection:
    def test_pre_codec_consumer_never_receives_0x10(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True  # provider is eager...
        master = Counter(3)
        provider.export(master, name="counter")
        table, object_id = _proxy_in(provider, master)
        recorder = RecordingProxyIn(table.get(object_id))
        table._objects[object_id] = recorder

        replica = consumer.replicate("counter")  # ...consumer never asked
        master.value = 9
        provider.touch(master, fields=("value",))
        consumer.refresh(replica)

        assert recorder.sent_tags  # frames did cross
        assert tags.OBJECT_SCHEMA not in recorder.sent_tags
        assert replica.read() == 9

    def test_codec_consumer_does_receive_0x10(self, zero_world):
        # Control: the recorder sees compiled frames when both ends opt in,
        # so the negative assertion above is not vacuous.
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True
        consumer.compiled_codec = True
        master = Counter(3)
        provider.export(master, name="counter")
        table, object_id = _proxy_in(provider, master)
        recorder = RecordingProxyIn(table.get(object_id))
        table._objects[object_id] = recorder

        replica = consumer.replicate("counter")
        assert replica.read() == 3
        assert tags.OBJECT_SCHEMA in recorder.sent_tags


class TestPutDirection:
    def test_downgraded_provider_sees_0x10_exactly_once(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True
        consumer.compiled_codec = True
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")

        table, object_id = _proxy_in(provider, master)
        recorder = RecordingProxyIn(table.get(object_id), reject_codec=True)
        table._objects[object_id] = recorder

        for _ in range(3):
            replica.increment()
            consumer.put_back(replica)
        assert master.read() == 3

        # One probe frame, then the cached verdict keeps every later put
        # reflective: the pre-codec peer parses 0x10 zero times (its
        # decoder rejected the single probe before touching state).
        schema_frames = recorder.received_tags.count(tags.OBJECT_SCHEMA)
        assert schema_frames == 1
        assert recorder.received_tags[0] == tags.OBJECT_SCHEMA
        # Reflective put entries ship the state dict, not a compiled frame.
        assert all(t == tags.DICT for t in recorder.received_tags[1:])

    def test_knobless_consumer_never_ships_0x10(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")

        table, object_id = _proxy_in(provider, master)
        recorder = RecordingProxyIn(table.get(object_id))
        table._objects[object_id] = recorder

        replica.increment()
        consumer.put_back(replica)
        assert master.read() == 1
        assert recorder.received_tags
        assert tags.OBJECT_SCHEMA not in recorder.received_tags
