"""obicodec negotiation tests (PR 7).

The ``compiled_codec`` site knob rides the :class:`ReplicationMode` wire
tuple the way ``prefetch`` and delta sync did: the consumer announces it
can decode ``OBJECT_SCHEMA`` frames, the provider uses the fast path only
when both ends opted in, and a pre-codec peer triggers a cached
reflective downgrade on the put direction.
"""

import pytest

from repro.core.interfaces import Incremental, ReplicationMode, _mode_state
from repro.core.meta import obi_id_of
from repro.serial import tags
from repro.util.errors import SerializationError
from tests.models import Box, Counter


@pytest.fixture
def csites(zero_world):
    """(provider, consumer) with the compiled codec enabled on both sides."""
    provider = zero_world.create_site("S2")
    consumer = zero_world.create_site("S1")
    provider.compiled_codec = True
    consumer.compiled_codec = True
    return provider, consumer


def _messages(world) -> int:
    stats = world.network.stats
    return stats.link("S1", "S2").messages + stats.link("S2", "S1").messages


def _serial(site) -> dict:
    return site.serial_stats.snapshot()


# ----------------------------------------------------------------------
# mode wire format
# ----------------------------------------------------------------------
class TestModeWire:
    def test_default_mode_stays_a_3_tuple(self):
        assert _mode_state(Incremental(1)) == (1, 0, False)

    def test_codec_mode_travels_as_5_tuple(self):
        mode = ReplicationMode(chunk=2, codec=1)
        assert _mode_state(mode) == (2, 0, False, 0, 1)

    def test_codec_survives_demand_scope_widening(self):
        mode = ReplicationMode(chunk=1, prefetch=8, codec=1)
        assert mode.demand_scope().codec == 1

    def test_outgoing_mode_stamps_and_strips(self, csites):
        provider, consumer = csites
        assert consumer.outgoing_mode(Incremental(1)).codec == 1
        consumer.compiled_codec = False
        assert consumer.outgoing_mode(ReplicationMode(chunk=1, codec=1)).codec == 0


# ----------------------------------------------------------------------
# get / replicate / refresh
# ----------------------------------------------------------------------
class TestGetDirection:
    def test_replicate_uses_fast_path_when_both_opt_in(self, csites):
        provider, consumer = csites
        provider.export(Counter(41), name="counter")
        replica = consumer.replicate("counter")
        assert replica.read() == 41
        assert _serial(provider)["encodes_fast"] >= 1
        assert _serial(consumer)["decodes_fast"] >= 1

    def test_replica_state_matches_reflective_replica(self, zero_world):
        provider = zero_world.create_site("S2")
        fast = zero_world.create_site("S1")
        slow = zero_world.create_site("S3")
        provider.compiled_codec = True
        fast.compiled_codec = True
        master = Counter(7)
        provider.export(master, name="counter")
        via_fast = fast.replicate("counter")
        via_slow = slow.replicate("counter")
        assert vars(via_fast) == vars(via_slow) == vars(master)
        assert list(vars(via_fast)) == list(vars(via_slow))

    def test_consumer_without_knob_gets_reflective_frames(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        provider.compiled_codec = True  # provider is willing...
        provider.export(Counter(1), name="counter")
        replica = consumer.replicate("counter")  # ...consumer never asks
        assert replica.read() == 1
        assert _serial(provider)["encodes_fast"] == 0
        assert _serial(consumer)["decodes_fast"] == 0

    def test_provider_without_knob_stays_reflective(self, zero_world):
        provider = zero_world.create_site("S2")
        consumer = zero_world.create_site("S1")
        consumer.compiled_codec = True  # consumer asks...
        provider.export(Counter(1), name="counter")
        replica = consumer.replicate("counter")  # ...provider declines
        assert replica.read() == 1
        assert _serial(provider)["encodes_fast"] == 0

    def test_non_schema_class_falls_back_per_object(self, csites):
        provider, consumer = csites
        provider.export(Box("not-a-scalar-schema"), name="box")
        replica = consumer.replicate("box")
        assert replica.get() == "not-a-scalar-schema"
        assert _serial(provider)["encodes_fast"] == 0
        assert _serial(provider)["encodes_reflective"] >= 1

    def test_refresh_rides_the_fast_path(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        master.value = 5
        provider.touch(master, fields=("value",))
        before = _serial(consumer)["decodes_fast"]
        consumer.refresh(replica)
        assert replica.read() == 5
        assert _serial(consumer)["decodes_fast"] > before


# ----------------------------------------------------------------------
# put direction
# ----------------------------------------------------------------------
class TestPutDirection:
    def test_put_back_ships_a_compiled_entry(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.increment(9)
        before = _serial(consumer)["encodes_fast"]
        consumer.put_back(replica)
        assert master.read() == 10
        assert _serial(consumer)["encodes_fast"] > before
        assert _serial(provider)["decodes_fast"] >= 1

    def test_put_back_preserves_master_identity(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        oid = obi_id_of(master)
        replica = consumer.replicate("counter")
        replica.increment()
        consumer.put_back(replica)
        assert obi_id_of(master) == oid

    def test_drifted_replica_falls_back_reflectively(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.value = "stringly"  # schema drift: entry stays reflective
        consumer.put_back(replica)
        assert master.value == "stringly"

    def test_works_alongside_delta_sync(self, csites):
        provider, consumer = csites
        provider.delta_sync = True
        consumer.delta_sync = True
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        replica.increment(4)
        consumer.put_back(replica)
        assert master.read() == 5
        assert consumer.sync_stats.puts_delta + consumer.sync_stats.puts_full == 1


# ----------------------------------------------------------------------
# pre-codec peer interop
# ----------------------------------------------------------------------
class PreCodecProxyIn:
    """A provider whose decoder predates the ``OBJECT_SCHEMA`` tag.

    Its ``put`` behaves exactly like a pre-PR-7 decoder meeting the new
    tag byte: a :class:`SerializationError` naming the unknown tag."""

    def __init__(self, inner):
        self._inner = inner

    def get(self, mode=None):
        return self._inner.get(mode)

    def put(self, package):
        for entry in package.entries:
            if entry.payload and entry.payload[0] == tags.OBJECT_SCHEMA:
                raise SerializationError(
                    f"unknown wire tag 0x{tags.OBJECT_SCHEMA:02x}"
                )
        return self._inner.put(package)

    def demand(self, mode=None):
        return self._inner.demand(mode)

    def get_version(self):
        return self._inner.get_version()


def _downgrade_to_pre_codec(provider, master) -> None:
    oid = obi_id_of(master)
    ref = provider._provider_refs[provider._stripe_of(oid)][oid]
    table = provider.endpoint.objects
    table._objects[ref.object_id] = PreCodecProxyIn(table.get(ref.object_id))


class TestPreCodecPeerInterop:
    def test_put_downgrades_and_caches_the_probe(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        _downgrade_to_pre_codec(provider, master)

        replica.increment()
        consumer.put_back(replica)
        assert master.read() == 2  # retried reflectively

        # The probe is cached per provider site: the next put goes
        # straight to the reflective frame in one request/response pair.
        before = _messages(consumer.world)
        replica.increment()
        consumer.put_back(replica)
        assert master.read() == 3
        assert _messages(consumer.world) == before + 2

    def test_unrelated_remote_errors_still_propagate(self, csites):
        provider, consumer = csites
        master = Counter(1)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")

        oid = obi_id_of(master)
        ref = provider._provider_refs[provider._stripe_of(oid)][oid]
        table = provider.endpoint.objects
        inner = table.get(ref.object_id)

        class BrokenPut:
            def __getattr__(self, name):
                return getattr(inner, name)

            def put(self, package):
                raise RuntimeError("disk on fire")

        table._objects[ref.object_id] = BrokenPut()
        replica.increment()
        with pytest.raises(Exception, match="disk on fire"):
            consumer.put_back(replica)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestCodecTelemetry:
    def test_snapshot_carries_serial_counters(self, csites):
        from repro.core.telemetry import snapshot

        provider, consumer = csites
        provider.export(Counter(1), name="counter")
        consumer.replicate("counter")
        shot = snapshot(provider)
        assert shot.serial_fast_encodes >= 1
        assert "serial" in shot.render()
