"""Tests for port_module and emit_package (batch obicomp tooling)."""

import types

from repro.core.meta import interface_of, is_compiled_class
from repro.core.obicomp import emit_package, port_module
from repro.core.proxy_in import ProxyIn
from repro.core.proxy_out import ProxyOutBase


def _make_module(name: str, **classes: type) -> types.ModuleType:
    module = types.ModuleType(name)
    for cls_name, cls in classes.items():
        cls.__module__ = name
        cls.__qualname__ = cls_name
        setattr(module, cls_name, cls)
    return module


class TestPortModule:
    def test_ports_all_eligible_classes(self):
        class PmInvoice:
            def total(self):
                return 0

        class PmCustomer:
            def name_of(self):
                return ""

        module = _make_module("legacy_app_one", PmInvoice=PmInvoice, PmCustomer=PmCustomer)
        ported = port_module(module)
        assert {cls.__name__ for cls in ported} == {"PmInvoice", "PmCustomer"}
        assert all(is_compiled_class(cls) for cls in ported)

    def test_skips_named_and_ineligible_classes(self):
        class PmPorted:
            def work(self):
                pass

        class PmSkipped:
            def work(self):
                pass

        class PmNoMethods:
            pass

        class PmSlotted:
            __slots__ = ("x",)

            def work(self):
                pass

        module = _make_module(
            "legacy_app_two",
            PmPorted=PmPorted,
            PmSkipped=PmSkipped,
            PmNoMethods=PmNoMethods,
            PmSlotted=PmSlotted,
        )
        ported = port_module(module, skip=frozenset({"PmSkipped"}))
        assert [cls.__name__ for cls in ported] == ["PmPorted"]
        assert not is_compiled_class(PmSkipped)
        assert not is_compiled_class(PmNoMethods)

    def test_imported_classes_not_ported(self):
        from tests.models import Box  # defined elsewhere

        class PmOwn:
            def act(self):
                pass

        module = _make_module("legacy_app_three", PmOwn=PmOwn)
        module.Box = Box  # imported, module name differs
        ported = port_module(module)
        assert [cls.__name__ for cls in ported] == ["PmOwn"]

    def test_port_module_is_idempotent(self):
        class PmOnce:
            def act(self):
                pass

        module = _make_module("legacy_app_four", PmOnce=PmOnce)
        assert len(port_module(module)) == 1
        assert port_module(module) == []  # already compiled


class TestEmitPackage:
    def test_writes_one_module_per_class(self, tmp_path):
        from tests.models import Box, Chain

        paths = emit_package([Box, Chain], tmp_path)
        assert sorted(p.name for p in paths) == [
            "box_obiwan.py",
            "chain_obiwan.py",
        ]
        for path in paths:
            namespace: dict = {
                "ProxyOutBase": ProxyOutBase,
                "ProxyIn": ProxyIn,
            }
            exec(compile(path.read_text(), str(path), "exec"), namespace)

    def test_emitted_files_reflect_interfaces(self, tmp_path):
        from tests.models import Counter

        (path,) = emit_package([Counter], tmp_path)
        text = path.read_text()
        for method in interface_of(Counter).methods:
            assert f"def {method}" in text

    def test_creates_directory(self, tmp_path):
        from tests.models import Box

        nested = tmp_path / "gen" / "deep"
        emit_package([Box], nested)
        assert nested.exists()
