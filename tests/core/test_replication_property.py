"""Property-based tests of replication invariants (hypothesis).

For arbitrary directed graphs (including cycles, diamonds and
self-loops) and arbitrary replication modes, the engine must preserve:

1. the graph's *shape* — a canonical DFS signature of the replica equals
   the master's;
2. *aliasing* — one master node maps to exactly one replica object, no
   matter how many paths reach it;
3. *isolation* — masters are untouched by replication and traversal;
4. *identity* — every replica shares its master's logical id.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from tests.models import GraphNode


# ----------------------------------------------------------------------
# graph generation
# ----------------------------------------------------------------------
@st.composite
def graph_specs(draw):
    """(values, edges): node values plus directed edges i -> j."""
    count = draw(st.integers(min_value=1, max_value=8))
    values = draw(
        st.lists(st.integers(0, 1000), min_size=count, max_size=count)
    )
    nodes = st.integers(0, count - 1)
    edges = draw(st.lists(st.tuples(nodes, nodes), max_size=16))
    return values, edges


def build_graph(values: list[int], edges: list[tuple[int, int]]) -> list[GraphNode]:
    nodes = [GraphNode(value) for value in values]
    for src, dst in edges:
        nodes[src].link(nodes[dst])
    return nodes


modes = st.one_of(
    st.integers(1, 5).map(Incremental),
    st.just(Transitive()),
    st.integers(1, 5).map(lambda n: Cluster(size=n)),
    st.just(Cluster()),
)


# ----------------------------------------------------------------------
# canonical signatures
# ----------------------------------------------------------------------
def resolve(node: object) -> object:
    if isinstance(node, ProxyOutBase):
        if node._obi_resolved is None:
            node.get_value()  # fault
        return node._obi_resolved
    return node


def signature(root: object) -> list:
    """Canonical DFS rendering: (index, value, child indices)."""
    order: dict[int, int] = {}
    out: list = []

    def visit(node: object) -> int:
        node = resolve(node)
        key = id(node)
        if key in order:
            return order[key]
        index = len(order)
        order[key] = index
        entry = [index, node.get_value(), []]
        out.append(entry)
        for child in node.get_refs():
            entry[2].append(visit(child))
        return index

    visit(root)
    return out


# ----------------------------------------------------------------------
# the properties
# ----------------------------------------------------------------------
@given(graph_specs(), modes)
@settings(max_examples=120, deadline=None)
def test_replication_preserves_graph_shape(spec, mode):
    values, edges = spec
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        consumer = world.create_site("C")
        nodes = build_graph(values, edges)
        root = nodes[0]
        master_signature = signature(root)

        provider.export(root, name="g")
        replica = consumer.replicate("g", mode=mode)

        assert signature(replica) == master_signature
        # Masters untouched by the whole exercise.
        assert signature(root) == master_signature
        assert [n.value for n in nodes] == values


@given(graph_specs(), modes)
@settings(max_examples=80, deadline=None)
def test_aliasing_one_replica_per_master(spec, mode):
    values, edges = spec
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        consumer = world.create_site("C")
        nodes = build_graph(values, edges)
        provider.export(nodes[0], name="g")
        replica = consumer.replicate("g", mode=mode)

        replicas_by_oid: dict[str, object] = {}
        stack = [replica]
        while stack:
            node = resolve(stack.pop())
            oid = obi_id_of(node)
            if oid in replicas_by_oid:
                assert replicas_by_oid[oid] is node, "two replicas of one master"
                continue
            replicas_by_oid[oid] = node
            stack.extend(node.get_refs())

        for oid, local in replicas_by_oid.items():
            master = provider.master_object_for(oid)
            assert master is not None
            assert obi_id_of(master) == obi_id_of(local)
            assert master is not local


@given(graph_specs())
@settings(max_examples=50, deadline=None)
def test_put_back_root_reproduces_state(spec):
    values, edges = spec
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        consumer = world.create_site("C")
        nodes = build_graph(values, edges)
        provider.export(nodes[0], name="g")
        replica = consumer.replicate("g", mode=Transitive())
        replica.set_value(replica.get_value() + 7)
        consumer.put_back(replica)
        assert nodes[0].value == values[0] + 7
        # The master's outgoing references still point at master nodes.
        for child in nodes[0].refs:
            assert any(child is node for node in nodes)
