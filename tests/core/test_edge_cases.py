"""Edge cases across the core: self-replication, eviction mid-protocol,
re-export, empty state, odd graph shapes."""

import pytest

from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.util.errors import ClusterError, ReplicationError
from tests.models import Box, Chain, Counter, Folder, make_chain


class TestSelfReplication:
    def test_replicating_own_master_returns_the_master(self, zsites):
        """A site fetching an object it masters gets the master itself —
        no replica-of-self, no copies."""
        provider, _consumer = zsites
        master = Counter(5)
        ref = provider.export(master, name="self")
        result = provider.replicate("self")
        assert result is master
        assert not provider.is_replica(obi_id_of(master))

    def test_remote_stub_on_own_master_works(self, zsites):
        provider, _consumer = zsites
        master = Counter(5)
        provider.export(master, name="own")
        stub = provider.remote_stub("own")
        assert stub.increment() == 6
        assert master.value == 6


class TestEvictionInteractions:
    def test_cluster_member_evicted_then_cluster_put(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(6), name="chain")
        root = consumer.replicate("chain", mode=Cluster(size=3))
        member = root.next
        consumer.evict(member)
        versions = consumer.put_back_cluster(root)  # member silently absent
        assert len(versions) == 2  # root + remaining member

    def test_refetch_after_evict_is_a_fresh_object(self, zsites):
        provider, consumer = zsites
        master = Box("v1")
        provider.export(master, name="box")
        first = consumer.replicate("box")
        consumer.evict(first)
        master.value = "v2"
        second = consumer.replicate("box")
        assert second is not first
        assert second.get() == "v2"
        assert first.get() == "v1"  # evicted copy frozen in time


class TestOddGraphShapes:
    def test_self_loop_object(self, zsites):
        provider, consumer = zsites
        selfish = Box()
        selfish.value = selfish
        provider.export(selfish, name="loop")
        replica = consumer.replicate("loop", mode=Transitive())
        assert replica.value is replica

    def test_object_referencing_master_and_replica_sides(self, zsites):
        """An object whose container mixes plain data and OBIWAN refs."""
        provider, consumer = zsites
        folder = Folder("mixed")
        folder.children = [1, "two", Box("three"), (Box("four"), 5)]
        provider.export(folder, name="mixed")
        replica = consumer.replicate("mixed", mode=Transitive())
        assert replica.children[0] == 1
        assert replica.children[2].get() == "three"
        assert replica.children[3][0].get() == "four"
        assert replica.children[3][1] == 5

    def test_wide_fanout_chunking(self, zsites):
        """BFS chunking on a star: root plus the first chunk-1 leaves."""
        provider, consumer = zsites
        hub = Folder("hub")
        for index in range(10):
            hub.add(f"k{index}", Box(index))
        provider.export(hub, name="hub")
        replica = consumer.replicate("hub", mode=Incremental(4))
        materialized = [
            child for child in replica.children if not isinstance(child, ProxyOutBase)
        ]
        proxies = [
            child for child in replica.children if isinstance(child, ProxyOutBase)
        ]
        assert len(materialized) == 3  # root + 3 = 4 objects
        assert len(proxies) == 7

    def test_deep_chain_replication(self, zsites):
        """A 2000-deep list crosses the serializer's recursion headroom
        machinery without blowing the interpreter stack."""
        provider, consumer = zsites
        provider.export(make_chain(2000), name="deep")
        head = consumer.replicate("deep", mode=Transitive())
        count = 0
        node = head
        while node is not None:
            count += 1
            node = node.next
        assert count == 2000


class TestStateShapes:
    def test_object_with_empty_state(self, zsites):
        provider, consumer = zsites

        from repro import obiwan

        @obiwan.compile
        class Stateless:
            def ping(self):
                return "pong"

        provider.export(Stateless(), name="stateless")
        replica = consumer.replicate("stateless")
        assert replica.ping() == "pong"

    def test_none_valued_fields_roundtrip(self, zsites):
        provider, consumer = zsites
        box = Box(None)
        box.extra = None
        provider.export(box, name="nones")
        replica = consumer.replicate("nones")
        assert replica.get() is None
        assert replica.extra is None

    def test_replica_field_added_after_replication_survives_put(self, zsites):
        provider, consumer = zsites
        master = Box("x")
        provider.export(master, name="grow")
        replica = consumer.replicate("grow")
        replica.new_field = [1, 2, 3]  # schema growth at the consumer
        consumer.put_back(replica)
        assert master.new_field == [1, 2, 3]


class TestModeEdges:
    def test_chunk_larger_than_graph(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="short")
        head = consumer.replicate("short", mode=Incremental(100))
        node, count = head, 0
        while node is not None:
            count += 1
            node = node.next
        assert count == 3

    def test_cluster_of_one_behaves_like_incremental_one(self, zsites):
        provider, consumer = zsites
        provider.export(make_chain(3), name="c1")
        head = consumer.replicate("c1", mode=Cluster(size=1))
        assert isinstance(head.next, ProxyOutBase)
        info = consumer.replica_info(obi_id_of(head))
        assert info.provider is not None  # the root is always updatable
