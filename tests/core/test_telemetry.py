"""Tests for site telemetry snapshots."""

from repro.core.interfaces import Cluster, Incremental
from repro.core.telemetry import snapshot
from tests.models import Box, make_chain


def test_empty_site_snapshot(zsites):
    provider, _consumer = zsites
    snap = snapshot(provider)
    assert snap.site == "S2"
    assert snap.masters == 0
    assert snap.replicas == 0
    # S2 hosts the name server (first site of the fixture world).
    assert snap.exported_objects == 1


def test_counts_after_replication(zsites):
    provider, consumer = zsites
    provider.export(make_chain(6), name="chain")
    head = consumer.replicate("chain", mode=Incremental(2))

    provider_snap = snapshot(provider)
    assert provider_snap.masters >= 2  # head + frontier got providers

    consumer_snap = snapshot(consumer)
    assert consumer_snap.replicas == 2
    assert consumer_snap.individually_updatable == 2
    assert consumer_snap.pending_proxies == 1
    assert consumer_snap.bytes_sent > 0
    assert consumer_snap.bytes_received > consumer_snap.bytes_sent  # payloads


def test_cluster_membership_counted(zsites):
    provider, consumer = zsites
    provider.export(make_chain(8), name="chain")
    consumer.replicate("chain", mode=Cluster(size=4))
    snap = snapshot(consumer)
    assert snap.replicas == 4
    assert snap.cluster_members == 3
    assert snap.individually_updatable == 1


def test_fault_counters(zsites):
    provider, consumer = zsites
    provider.export(make_chain(6), name="chain")
    head = consumer.replicate("chain", mode=Incremental(2))
    head.get_next().get_next().get_index()  # one fault (brings 2,3 + proxy 4)
    snap = snapshot(consumer)
    assert snap.proxies_created == 2
    assert snap.faults_resolved == 1
    assert snap.pending_proxies == 1


def test_render_is_human_readable(zsites):
    provider, consumer = zsites
    provider.export(Box("v"), name="box")
    consumer.replicate("box")
    text = snapshot(consumer).render()
    assert "site S1" in text
    assert "replicas" in text
    assert "traffic" in text


def test_stripes_line_in_render(zsites):
    provider, consumer = zsites
    provider.export(Box("v"), name="box")
    consumer.replicate("box")
    snap = snapshot(consumer)
    assert snap.stripe_count == consumer.stripe_count
    text = snap.render()
    assert f"stripes : {consumer.stripe_count} stripes" in text
    assert "acquire waits" in text
    assert "max depth" in text
    # The stripes line slots in without disturbing the deltasync line
    # existing consumers parse.
    assert "deltasync" in text


def test_tracing_line_off_by_default(zsites):
    _provider, consumer = zsites
    snap = snapshot(consumer)
    assert snap.tracing_enabled is False
    assert snap.spans_recorded == 0
    assert "tracing : off" in snap.render()


def test_tracing_counters_when_enabled(zsites):
    provider, consumer = zsites
    collector = consumer.enable_tracing()
    provider.export(Box("v"), name="box")
    consumer.replicate("box")

    snap = snapshot(consumer)
    stats = collector.stats()
    assert snap.tracing_enabled is True
    assert snap.spans_recorded == stats["recorded"] > 0
    assert snap.spans_dropped == 0
    assert snap.span_high_water == stats["high_water"]
    text = snap.render()
    assert "tracing : on" in text
    assert f"{stats['recorded']} spans recorded" in text
