"""Tests for ASCII rendering."""

from repro.bench.asciiplot import render_plot, render_table
from repro.bench.harness import Series


class TestTable:
    def test_headers_and_alignment(self):
        text = render_table(["name", "value"], [["alpha", 1.5], ["b", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.50" in text  # floats get two decimals
        assert "22" in text

    def test_empty_rows(self):
        text = render_table(["only"], [])
        assert "only" in text


class TestPlot:
    def _series(self):
        series = Series("curve")
        for x in range(1, 11):
            series.add(x, x * 0.001)
        return series

    def test_plot_contains_glyphs_and_legend(self):
        text = render_plot([self._series()], title="T")
        assert "T" in text
        assert "*" in text
        assert "curve" in text
        assert "time (ms)" in text

    def test_multiple_series_distinct_glyphs(self):
        a, b = self._series(), Series("other")
        for x in range(1, 11):
            b.add(x, 0.02)
        text = render_plot([a, b])
        assert "*" in text and "o" in text

    def test_empty_series_safe(self):
        assert render_plot([Series("void")]) == "(no data)"

    def test_dimensions_respected(self):
        text = render_plot([self._series()], width=30, height=5)
        plot_rows = [line for line in text.splitlines() if line.startswith("|")]
        assert len(plot_rows) == 5
        assert all(len(row) <= 31 for row in plot_rows)
