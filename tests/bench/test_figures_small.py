"""Figure-claim checks on scaled-down sweeps (fast unit-test variants of
the full benchmark assertions)."""

import pytest

from repro.bench.figures import (
    crossover_invocations,
    experiment_anchors,
    fig4_series,
    fig5_series,
    fig6_series,
    staircase_step_count,
    total_times_ms,
)


def test_anchors_match_paper():
    anchors = experiment_anchors()
    assert anchors.lmi_microseconds == pytest.approx(2.0, abs=0.01)
    assert anchors.rmi_milliseconds == pytest.approx(2.8, rel=0.05)


def test_fig4_small_sweep_claims():
    curves = fig4_series(sizes=(16, 16384), invocations=(1, 10, 100, 1000))
    assert crossover_invocations(curves, 16) <= crossover_invocations(curves, 16384)
    # RMI linear, LMI flat-ish.
    rmi = curves["RMI"]
    assert rmi.at(1000) > 90 * rmi.at(10)
    lmi = curves["LMI 16"]
    assert lmi.at(1000) < 3 * lmi.at(10)


@pytest.fixture(scope="module")
def small_panels():
    sizes = (64,)
    chunks = (1, 10, 100)
    return (
        fig5_series(sizes, chunks, length=100)[64],
        fig6_series(sizes, chunks, length=100)[64],
    )


def test_fig5_small_chunk1_is_worst(small_panels):
    fig5, _fig6 = small_panels
    totals = total_times_ms(fig5)
    assert totals[1] > totals[10]
    assert totals[1] > totals[100]


def test_fig5_staircase_steps(small_panels):
    fig5, _fig6 = small_panels
    # chunk 10 over 100 objects → 9 faults after the initial fetch.
    assert staircase_step_count(fig5[10], min_jump_ms=2.0) == 9


def test_fig6_wins_per_cell(small_panels):
    """Clustering beats per-object pairs on every multi-object cell.

    (The 'curves are closer' spread claim only emerges at the paper's
    full 1000-object scale, where the quadratic pair-burst penalty bites;
    benchmarks/test_fig6_clusters.py asserts it on the full sweep.)
    """
    fig5, fig6 = small_panels
    t5, t6 = total_times_ms(fig5), total_times_ms(fig6)
    for chunk in (10, 100):
        assert t6[chunk] < t5[chunk]
    # And the advantage grows with chunk size (more pairs saved).
    assert (t5[100] - t6[100]) > (t5[10] - t6[10]) or t6[100] < t6[10]


def test_series_are_monotone_nondecreasing(small_panels):
    fig5, fig6 = small_panels
    for panel in (fig5, fig6):
        for series in panel.values():
            ys = series.ys_ms
            assert all(b >= a for a, b in zip(ys, ys[1:]))
