"""Tests for benchmark workload generators."""

from repro.bench.workloads import (
    ListSpec,
    PayloadNode,
    list_values_sum,
    make_linked_list,
    make_tree,
    payload_for_size,
)
from repro.serial.measure import encoded_size


def test_linked_list_shape():
    head = make_linked_list(ListSpec(length=10, object_size=64))
    count, node = 0, head
    while node is not None:
        assert node.get_index() == count
        count += 1
        node = node.get_next()
    assert count == 10


def test_object_size_is_respected_on_the_wire():
    from repro.core.meta import obi_id_of

    for target in (256, 1024, 16384):
        node = PayloadNode(index=1, payload=payload_for_size(target))
        obi_id_of(node)
        actual = encoded_size(node)
        assert abs(actual - target) <= 64, f"{target}: got {actual}"


def test_small_sizes_floor_at_envelope():
    assert payload_for_size(1) == b""


def test_tree_shape():
    tree = make_tree(depth=3)
    count = [0]

    def walk(node):
        if node is None:
            return
        count[0] += 1
        walk(node.get_left())
        walk(node.get_right())

    walk(tree)
    assert count[0] == 2**4 - 1  # complete binary tree, depth 3


def test_tree_leaf_has_no_children():
    tree = make_tree(depth=0)
    assert tree.get_left() is None and tree.get_right() is None


def test_list_values_sum():
    assert list_values_sum(10) == sum(range(10))
    assert list_values_sum(1) == 0


def test_spec_str():
    assert str(ListSpec(1000, 64)) == "1000 objects x 64 B"
