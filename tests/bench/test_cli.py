"""Tests for the benchmark CLI (python -m repro.bench)."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench.__main__ import COMMANDS, main

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


def test_all_commands_registered():
    expected = {
        "anchors",
        "fig4",
        "fig5",
        "fig6",
        "ablate-proxy",
        "ablate-prefetch",
        "ablate-consistency",
        "ablate-transport",
        "future-networks",
        "future-cpu",
        "strategy-study",
        "memory-study",
        "fault-batching",
        "delta-sync",
        "tracing-overhead",
        "codec-throughput",
        "connection-scale",
    }
    assert set(COMMANDS) == expected


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-benchmark"])


def test_anchors_in_process(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["anchors"]) == 0
    out = capsys.readouterr().out
    assert "2.00 us" in out
    assert "2.8" in out
    assert (tmp_path / "results" / "anchors.json").exists()


def test_future_cpu_in_process(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["future-cpu"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out
    assert (tmp_path / "results" / "future_cpu.json").exists()


def test_cli_subprocess_smoke(tmp_path):
    # The subprocess does not inherit pytest's sys.path entries; put the
    # source tree on PYTHONPATH explicitly so `repro` resolves.
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "anchors"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "anchor" in result.stdout
