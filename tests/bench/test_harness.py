"""Tests for the experiment harness (small configurations)."""

import pytest

from repro.bench.harness import (
    Series,
    run_fig5_cell,
    run_fig6_cell,
    run_lmi_invocations,
    run_rmi_invocations,
)


class TestSeries:
    def test_add_converts_to_ms(self):
        series = Series("x")
        series.add(1, 0.5)
        assert series.points == [(1, 500.0)]
        assert series.final_ms() == 500.0

    def test_at_and_keyerror(self):
        series = Series("x")
        series.add(1, 0.1)
        assert series.at(1) == pytest.approx(100.0)
        with pytest.raises(KeyError):
            series.at(99)

    def test_xs_ys(self):
        series = Series("x")
        series.add(1, 0.001)
        series.add(2, 0.002)
        assert series.xs == [1, 2]
        assert series.ys_ms == pytest.approx([1.0, 2.0])


class TestRunners:
    def test_rmi_series_is_linear(self):
        series = run_rmi_invocations(64, 20)
        ys = series.ys_ms
        deltas = [b - a for a, b in zip(ys, ys[1:])]
        assert max(deltas) - min(deltas) < 1e-6  # constant per-call cost
        assert ys[0] == pytest.approx(2.8, rel=0.1)

    def test_lmi_series_includes_end_costs(self):
        series = run_lmi_invocations(1024, 5)
        # Every point includes replicate + put, so even n=1 is ms-scale.
        assert series.at(1) > 5.0
        # Marginal invocation cost is 2 µs.
        assert series.at(5) - series.at(1) == pytest.approx(4 * 2e-3, rel=0.01)

    def test_fig5_cell_traverses_fully(self):
        series = run_fig5_cell(64, 10, length=50)
        assert len(series.points) == 50
        assert series.final_ms() > 0

    def test_fig6_cheaper_than_fig5_on_same_cell(self):
        fig5 = run_fig5_cell(64, 25, length=50)
        fig6 = run_fig6_cell(64, 25, length=50)
        assert fig6.final_ms() < fig5.final_ms()

    def test_determinism_across_runs(self):
        first = run_fig5_cell(64, 10, length=30)
        second = run_fig5_cell(64, 10, length=30)
        assert first.points == second.points
