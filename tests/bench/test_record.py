"""Tests for result recording."""

import json

from repro.bench.harness import Series
from repro.bench.record import save_json, series_to_jsonable


def test_save_json_writes_readable_file(tmp_path):
    path = save_json("sample", {"a": 1}, directory=tmp_path)
    assert path == tmp_path / "sample.json"
    assert json.loads(path.read_text()) == {"a": 1}


def test_save_json_creates_directory(tmp_path):
    target = tmp_path / "nested" / "dir"
    path = save_json("x", [1, 2], directory=target)
    assert path.exists()


def test_series_to_jsonable_roundtrips_through_json(tmp_path):
    series = Series("curve")
    series.add(1, 0.001)
    blob = series_to_jsonable(series)
    path = save_json("series", blob, directory=tmp_path)
    loaded = json.loads(path.read_text())
    assert loaded["label"] == "curve"
    assert loaded["points"] == [[1, 1.0]]
