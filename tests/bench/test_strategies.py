"""Unit tests for the strategy-study machinery (small configurations)."""

import pytest

from repro.bench.strategies import (
    STRATEGIES,
    SessionSpec,
    generate_session,
    run_strategy,
    strategy_study,
)


SMALL = SessionSpec(documents=6, operations=15, document_size=256, seed=3)


class TestSessionGeneration:
    def test_operation_count(self):
        assert len(generate_session(SMALL)) == 15

    def test_documents_in_range(self):
        ops = generate_session(SMALL)
        assert all(0 <= doc < 6 for doc, _kind in ops)

    def test_write_ratio_zero_means_read_only(self):
        spec = SessionSpec(documents=4, operations=50, write_ratio=0.0)
        assert all(kind == "read" for _doc, kind in generate_session(spec))

    def test_write_ratio_one_means_write_only(self):
        spec = SessionSpec(documents=4, operations=50, write_ratio=1.0)
        assert all(kind == "write" for _doc, kind in generate_session(spec))

    def test_skew_concentrates_access(self):
        heavy = SessionSpec(documents=20, operations=300, skew=2.5, seed=1)
        flat = SessionSpec(documents=20, operations=300, skew=0.0, seed=1)
        heavy_docs = {doc for doc, _ in generate_session(heavy)}
        flat_docs = {doc for doc, _ in generate_session(flat)}
        assert len(heavy_docs) < len(flat_docs)


class TestRunStrategy:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_each_strategy_completes(self, strategy):
        result = run_strategy(strategy, SMALL)
        assert result.simulated_ms > 0
        assert result.network_bytes > 0
        assert result.documents_touched >= 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_strategy("teleport", SMALL)

    def test_rmi_moves_no_documents(self):
        result = run_strategy("rmi-only", SMALL)
        assert result.documents_moved == 0

    def test_hoard_moves_all_documents(self):
        result = run_strategy("hoard-all", SMALL)
        assert result.documents_moved == SMALL.documents

    def test_replicate_on_use_moves_only_touched(self):
        result = run_strategy("replicate-on-use", SMALL)
        assert result.documents_moved == result.documents_touched

    def test_determinism(self):
        first = run_strategy("replicate-on-use", SMALL)
        second = run_strategy("replicate-on-use", SMALL)
        assert first.simulated_ms == second.simulated_ms
        assert first.network_bytes == second.network_bytes

    def test_writes_reach_the_server(self):
        """All strategies end with equivalent server state for the same
        session (write-through semantics)."""
        # The strategies write a constant payload, so server state is the
        # same iff the same documents were written; verify via bytes: a
        # write-only session must move write traffic in every strategy.
        spec = SessionSpec(documents=3, operations=10, write_ratio=1.0, document_size=128)
        for strategy in STRATEGIES:
            result = run_strategy(strategy, spec)
            assert result.network_bytes > 0


class TestStudy:
    def test_study_covers_all_strategies(self):
        results = strategy_study(SMALL)
        assert [r.strategy for r in results] == list(STRATEGIES)
