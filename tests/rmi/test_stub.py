"""Tests for dynamic stub generation."""

from repro.rmi.refs import RemoteRef
from repro.rmi.stub import Stub, make_stub


class RecordingInvoker:
    def __init__(self, result=None):
        self.calls = []
        self.result = result

    def __call__(self, ref, method, args, kwargs):
        self.calls.append((ref, method, args, kwargs))
        return self.result


def test_stub_methods_forward_to_invoker():
    invoker = RecordingInvoker(result=99)
    ref = RemoteRef("s", "o:1", "ICalc")
    stub = make_stub(invoker, ref, ["add", "sub"])
    assert stub.add(1, 2, key=3) == 99
    assert invoker.calls == [(ref, "add", (1, 2), {"key": 3})]


def test_stub_exposes_only_requested_methods():
    stub = make_stub(RecordingInvoker(), RemoteRef("s", "o:1"), ["only"])
    assert hasattr(stub, "only")
    assert not hasattr(stub, "other")


def test_stub_is_stub_instance_with_ref():
    ref = RemoteRef("s", "o:1", "IThing")
    stub = make_stub(RecordingInvoker(), ref, ["m"])
    assert isinstance(stub, Stub)
    assert stub.remote_ref == ref
    assert "obj" not in repr(stub) or True  # repr is informative, not strict


def test_stub_classes_are_cached_per_interface():
    ref = RemoteRef("s", "o:1", "ICached")
    first = make_stub(RecordingInvoker(), ref, ["m", "n"])
    second = make_stub(RecordingInvoker(), ref, ["n", "m"])  # order-insensitive
    assert type(first) is type(second)


def test_different_interfaces_get_different_classes():
    a = make_stub(RecordingInvoker(), RemoteRef("s", "o:1", "IA"), ["m"])
    b = make_stub(RecordingInvoker(), RemoteRef("s", "o:2", "IB"), ["m"])
    assert type(a) is not type(b)


def test_two_stubs_same_class_different_targets():
    invoker = RecordingInvoker()
    ref1 = RemoteRef("s", "o:1", "ISame")
    ref2 = RemoteRef("s", "o:2", "ISame")
    stub1 = make_stub(invoker, ref1, ["m"])
    stub2 = make_stub(invoker, ref2, ["m"])
    stub1.m()
    stub2.m()
    assert [call[0] for call in invoker.calls] == [ref1, ref2]
