"""Tests for remote references."""

from repro.rmi.refs import RemoteRef
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder


def test_refs_are_value_objects():
    a = RemoteRef("s1", "obj:1", "IThing")
    b = RemoteRef("s1", "obj:1", "IThing")
    c = RemoteRef("s1", "obj:2", "IThing")
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_str_rendering():
    assert str(RemoteRef("s1", "obj:1", "IThing")) == "obj:1@s1 (IThing)"
    assert str(RemoteRef("s1", "obj:1")) == "obj:1@s1"


def test_refs_cross_the_wire():
    ref = RemoteRef("siteX", "obj:42", "IWidget")
    result = Decoder().decode(Encoder().encode(ref))
    assert result == ref
    assert isinstance(result, RemoteRef)


def test_refs_nest_in_containers_on_the_wire():
    refs = {"a": RemoteRef("s", "o:1"), "b": [RemoteRef("s", "o:2", "I")]}
    result = Decoder().decode(Encoder().encode(refs))
    assert result == refs
