"""Property-based fuzzing of the RMI dispatch path.

Whatever (serializable) arguments a peer sends, dispatch must either
execute the call or return a structured failure — never raise out of
the skeleton, never corrupt the table.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmi.protocol import InvokeFailure, InvokeRequest, InvokeSuccess
from repro.rmi.skeleton import ObjectTable

values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


class Tolerant:
    def anything(self, *args, **kwargs):
        return len(args) + len(kwargs)


class Strict:
    def two_ints(self, a: int, b: int) -> int:
        return a + b


_table = ObjectTable("fuzz-site")
_tolerant_ref = _table.export(Tolerant())
_strict_ref = _table.export(Strict())


# A kwarg literally named "self" can never reach `anything(self, ...)`:
# it collides with the bound receiver slot in Python's calling
# convention and dispatch (correctly) flattens the TypeError into an
# InvokeFailure.  Every other name must succeed.
_kwarg_names = st.text(max_size=8).filter(lambda name: name != "self")


@given(st.lists(values, max_size=5), st.dictionaries(_kwarg_names, values, max_size=3))
@settings(max_examples=200, deadline=None)
def test_tolerant_target_always_succeeds(args, kwargs):
    result = _table.dispatch(
        InvokeRequest(_tolerant_ref.object_id, "anything", tuple(args), kwargs)
    )
    assert isinstance(result, InvokeSuccess)
    assert result.value == len(args) + len(kwargs)


@given(st.lists(values, max_size=5))
@settings(max_examples=200, deadline=None)
def test_strict_target_never_raises_out(args):
    result = _table.dispatch(
        InvokeRequest(_strict_ref.object_id, "two_ints", tuple(args), {})
    )
    assert isinstance(result, (InvokeSuccess, InvokeFailure))


@given(st.text(max_size=30))
@settings(max_examples=200, deadline=None)
def test_arbitrary_method_names_fail_structurally(name):
    result = _table.dispatch(InvokeRequest(_tolerant_ref.object_id, name, ()))
    assert isinstance(result, (InvokeSuccess, InvokeFailure))
    if name.startswith("_") or not name:
        # Private and dunder names are never remotely invocable —
        # ``__class__``/``__init__`` would otherwise be callable.
        assert isinstance(result, InvokeFailure)


@given(st.text(max_size=30))
@settings(max_examples=100, deadline=None)
def test_arbitrary_object_ids_fail_structurally(object_id):
    result = _table.dispatch(InvokeRequest(object_id, "anything", ()))
    if object_id != _tolerant_ref.object_id:
        assert isinstance(result, InvokeFailure)
