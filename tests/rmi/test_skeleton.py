"""Tests for the exported-object table and skeleton dispatch."""

import pytest

from repro.rmi.protocol import InvokeFailure, InvokeRequest, InvokeSuccess
from repro.rmi.skeleton import ObjectTable
from repro.util.errors import ProtocolError


class Service:
    def __init__(self):
        self.calls = []

    def add(self, a, b=0):
        self.calls.append((a, b))
        return a + b

    def explode(self):
        raise ValueError("internal failure")

    not_callable = 42


@pytest.fixture
def table():
    return ObjectTable("siteA")


class TestExport:
    def test_export_assigns_ref(self, table):
        ref = table.export(Service(), interface="IService")
        assert ref.site_id == "siteA"
        assert ref.interface == "IService"
        assert ref.object_id in table

    def test_explicit_object_id(self, table):
        ref = table.export(Service(), object_id="obj:fixed")
        assert ref.object_id == "obj:fixed"

    def test_duplicate_object_id_rejected(self, table):
        table.export(Service(), object_id="x")
        with pytest.raises(ProtocolError):
            table.export(Service(), object_id="x")

    def test_unexport_removes(self, table):
        ref = table.export(Service())
        table.unexport(ref.object_id)
        assert ref.object_id not in table
        table.unexport(ref.object_id)  # idempotent

    def test_len_and_get(self, table):
        service = Service()
        ref = table.export(service)
        assert len(table) == 1
        assert table.get(ref.object_id) is service
        assert table.get("ghost") is None


class TestDispatch:
    def test_successful_call(self, table):
        service = Service()
        ref = table.export(service)
        result = table.dispatch(InvokeRequest(ref.object_id, "add", (2,), {"b": 3}))
        assert isinstance(result, InvokeSuccess)
        assert result.value == 5
        assert service.calls == [(2, 3)]

    def test_unknown_object(self, table):
        result = table.dispatch(InvokeRequest("ghost", "add", ()))
        assert isinstance(result, InvokeFailure)
        assert result.error_name == "ProtocolError"
        assert "ghost" in result.message

    def test_unknown_method(self, table):
        ref = table.export(Service())
        result = table.dispatch(InvokeRequest(ref.object_id, "nope", ()))
        assert isinstance(result, InvokeFailure)
        assert "nope" in result.message

    def test_non_callable_attribute(self, table):
        ref = table.export(Service())
        result = table.dispatch(InvokeRequest(ref.object_id, "not_callable", ()))
        assert isinstance(result, InvokeFailure)

    def test_application_exception_flattened(self, table):
        ref = table.export(Service())
        result = table.dispatch(InvokeRequest(ref.object_id, "explode", ()))
        assert isinstance(result, InvokeFailure)
        assert result.error_name == "ValueError"
        assert "internal failure" in result.message
        assert "explode" in result.remote_traceback

    def test_dispatch_never_raises(self, table):
        ref = table.export(Service())
        request = InvokeRequest(ref.object_id, "add", ("wrong", "types"))
        result = table.dispatch(request)  # TypeError inside → failure
        assert isinstance(result, (InvokeSuccess, InvokeFailure))
