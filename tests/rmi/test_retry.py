"""Tests for RMI retry policies."""

import pytest

from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.retry import BackoffRetry, FixedRetry, NoRetry, RetryingInvoker
from repro.simnet.link import Link
from repro.simnet.loopback import LoopbackNetwork
from repro.util.clock import SimClock
from repro.util.errors import DisconnectedError, TransportError


class Flaky:
    """A link that drops exactly the first N frames."""

    def __init__(self, drops: int):
        self.remaining = drops
        self.inner = Link(latency_s=0.001, bandwidth_bps=1e7, name="flaky")

    def transfer_time(self, size, rng=None):
        return self.inner.transfer_time(size, rng)

    def drops(self, rng=None):
        if self.remaining > 0:
            self.remaining -= 1
            return True
        return False

    @property
    def name(self):
        return "flaky"


@pytest.fixture
def endpoints():
    network = LoopbackNetwork(SimClock())
    server = RmiEndpoint(network, "server")
    client = RmiEndpoint(network, "client")
    yield network, server, client
    network.close()


class Target:
    def ping(self):
        return "pong"


class TestPolicies:
    def test_fixed_retry_validation(self):
        with pytest.raises(ValueError):
            FixedRetry(attempts=0)
        with pytest.raises(ValueError):
            FixedRetry(pause_s=-1)

    def test_backoff_validation(self):
        with pytest.raises(ValueError):
            BackoffRetry(attempts=0)
        with pytest.raises(ValueError):
            BackoffRetry(base_s=0.1, cap_s=0.01)

    def test_backoff_delays_double_and_cap(self):
        delays = list(BackoffRetry(attempts=5, base_s=0.01, cap_s=0.05).delays())
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]


class TestRetryingInvoker:
    def test_no_retry_fails_fast(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target())
        network.set_link("client", "server", Flaky(drops=1))  # type: ignore[arg-type]
        invoker = RetryingInvoker(client, NoRetry())
        with pytest.raises(TransportError):
            invoker.invoke(ref, "ping")
        assert invoker.attempts_made == 1

    def test_fixed_retry_survives_transient_drops(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target())
        network.set_link("client", "server", Flaky(drops=2))  # type: ignore[arg-type]
        invoker = RetryingInvoker(client, FixedRetry(attempts=3, pause_s=0.01))
        assert invoker.invoke(ref, "ping") == "pong"
        assert invoker.retries_used == 2

    def test_retry_budget_exhausts(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target())
        network.set_link("client", "server", Flaky(drops=10))  # type: ignore[arg-type]
        invoker = RetryingInvoker(client, FixedRetry(attempts=2, pause_s=0.0))
        with pytest.raises(TransportError):
            invoker.invoke(ref, "ping")
        assert invoker.attempts_made == 3  # 1 + 2 retries

    def test_pauses_charge_the_clock(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target())
        network.set_link("client", "server", Flaky(drops=2))  # type: ignore[arg-type]
        invoker = RetryingInvoker(client, FixedRetry(attempts=3, pause_s=0.5))
        before = network.clock.now()
        invoker.invoke(ref, "ping")
        assert network.clock.now() - before >= 1.0  # two pauses

    def test_disconnection_never_retried(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target())
        network.disconnect("server")
        invoker = RetryingInvoker(client, FixedRetry(attempts=5))
        with pytest.raises(DisconnectedError):
            invoker.invoke(ref, "ping")
        assert invoker.attempts_made == 1

    def test_retrying_stub(self, endpoints):
        network, server, client = endpoints
        ref = server.export(Target(), interface="ITarget")
        network.set_link("client", "server", Flaky(drops=1))  # type: ignore[arg-type]
        invoker = RetryingInvoker(client, FixedRetry(attempts=2))
        stub = invoker.stub(ref, ["ping"])
        assert stub.ping() == "pong"
        assert invoker.retries_used == 1
