"""Tests for the name server (direct and via RMI)."""

import pytest

from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.nameserver import NameServer
from repro.rmi.refs import RemoteRef
from repro.simnet.loopback import LoopbackNetwork
from repro.util.errors import NameNotFoundError, ProtocolError


@pytest.fixture
def server():
    return NameServer()


REF = RemoteRef("s2", "obj:1", "IThing")
REF2 = RemoteRef("s2", "obj:2", "IThing")


class TestDirect:
    def test_bind_lookup(self, server):
        server.bind("a", REF)
        assert server.lookup("a") == REF

    def test_bind_existing_rejected(self, server):
        server.bind("a", REF)
        with pytest.raises(ProtocolError):
            server.bind("a", REF2)

    def test_rebind_replaces(self, server):
        server.bind("a", REF)
        server.rebind("a", REF2)
        assert server.lookup("a") == REF2

    def test_lookup_missing(self, server):
        with pytest.raises(NameNotFoundError):
            server.lookup("ghost")

    def test_unbind(self, server):
        server.bind("a", REF)
        server.unbind("a")
        with pytest.raises(NameNotFoundError):
            server.lookup("a")

    def test_unbind_missing(self, server):
        with pytest.raises(NameNotFoundError):
            server.unbind("ghost")

    def test_list_names_sorted(self, server):
        server.bind("zeta", REF)
        server.bind("alpha", REF2)
        assert server.list_names() == ["alpha", "zeta"]


class TestOverRmi:
    def test_remote_naming_operations(self):
        network = LoopbackNetwork()
        host = RmiEndpoint(network, "ns-host")
        host.host_nameserver()
        client = RmiEndpoint(network, "client", nameserver_site="ns-host")

        client.naming.bind("service", REF)
        assert client.naming.lookup("service") == REF
        assert host.naming.lookup("service") == REF  # host sees it too
        assert client.naming.list_names() == ["service"]

        with pytest.raises(NameNotFoundError):
            client.naming.lookup("ghost")

    def test_client_without_nameserver_site_fails(self):
        network = LoopbackNetwork()
        client = RmiEndpoint(network, "lonely")
        with pytest.raises(ProtocolError):
            _ = client.naming
