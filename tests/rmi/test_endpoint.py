"""Tests for RmiEndpoint: invoke, stubs, one-way, error propagation."""

import pytest

from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.refs import RemoteRef
from repro.serial.registry import global_registry
from repro.simnet.loopback import LoopbackNetwork
from repro.util.errors import ProtocolError, RemoteError, TransportError


class Calculator:
    def __init__(self):
        self.history = []

    def add(self, a, b):
        self.history.append((a, b))
        return a + b

    def fail(self):
        raise ValueError("division by zero-ish")

    def note(self, text):
        self.history.append(text)


@pytest.fixture
def endpoints():
    network = LoopbackNetwork()
    server = RmiEndpoint(network, "server")
    client = RmiEndpoint(network, "client")
    yield server, client
    network.close()


class TestInvoke:
    def test_remote_invocation(self, endpoints):
        server, client = endpoints
        calc = Calculator()
        ref = server.export(calc, interface="ICalc")
        assert client.invoke(ref, "add", (2, 3)) == 5
        assert calc.history == [(2, 3)]

    def test_kwargs_cross_the_wire(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        assert client.invoke(ref, "add", (), {"a": 1, "b": 2}) == 3

    def test_local_ref_short_circuits_but_keeps_semantics(self, endpoints):
        server, _client = endpoints
        calc = Calculator()
        ref = server.export(calc)
        before = server.network.stats.total_messages
        assert server.invoke(ref, "add", (1, 1)) == 2
        assert server.network.stats.total_messages == before  # no traffic

    def test_remote_application_error(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        with pytest.raises(RemoteError) as info:
            client.invoke(ref, "fail", ())
        assert info.value.remote_type == "ValueError"

    def test_unknown_object_raises_protocol_error(self, endpoints):
        _server, client = endpoints
        ghost = RemoteRef("server", "obj:ghost")
        with pytest.raises(ProtocolError):
            client.invoke(ghost, "add", ())

    def test_unknown_site_raises_transport_error(self, endpoints):
        _server, client = endpoints
        elsewhere = RemoteRef("mars", "obj:1")
        with pytest.raises(TransportError):
            client.invoke(elsewhere, "add", ())

    def test_arguments_are_copies_not_aliases(self, endpoints):
        server, client = endpoints

        class Sink:
            def __init__(self):
                self.got = None

            def take(self, value):
                self.got = value
                return True

        sink = Sink()
        ref = server.export(sink)
        payload = {"data": [1, 2, 3]}
        client.invoke(ref, "take", (payload,))
        assert sink.got == payload
        assert sink.got is not payload
        assert sink.got["data"] is not payload["data"]


class TestStubs:
    def test_stub_invocation(self, endpoints):
        server, client = endpoints
        calc = Calculator()
        ref = server.export(calc, interface="ICalc")
        stub = client.stub(ref, ["add"])
        assert stub.add(4, 5) == 9


class TestOneWay:
    def test_oneway_invokes_without_result(self, endpoints):
        server, client = endpoints
        calc = Calculator()
        ref = server.export(calc)
        assert client.invoke_oneway(ref, "note", ("hello",)) is None
        assert calc.history == ["hello"]

    def test_oneway_swallows_remote_errors(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        client.invoke_oneway(ref, "fail", ())  # must not raise

    def test_oneway_local_short_circuit(self, endpoints):
        server, _client = endpoints
        calc = Calculator()
        ref = server.export(calc)
        server.invoke_oneway(ref, "note", ("local",))
        assert calc.history == ["local"]


class TestLifecycle:
    def test_unexport_then_invoke_fails_cleanly(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        server.unexport(ref.object_id)
        with pytest.raises(ProtocolError):
            client.invoke(ref, "add", (1, 2))

    def test_repr_mentions_site(self, endpoints):
        server, _client = endpoints
        assert "server" in repr(server)
