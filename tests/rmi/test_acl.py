"""Tests for access control on exported objects."""

import pytest

from repro.rmi.acl import AccessGuard, AccessPolicy
from repro.util.errors import ReplicationError, SecurityError
from tests.models import Counter


class TestPolicy:
    def test_default_deny(self):
        policy = AccessPolicy()
        assert not policy.allows("anyone", "anything")

    def test_default_allow(self):
        policy = AccessPolicy(default_allow=True)
        assert policy.allows("anyone", "anything")

    def test_local_caller_always_allowed(self):
        policy = AccessPolicy()  # deny everything remote
        assert policy.allows(None, "put")

    def test_first_match_wins(self):
        policy = AccessPolicy().deny("evil-*").allow("*")
        assert not policy.allows("evil-site", "get")
        assert policy.allows("good-site", "get")

    def test_method_patterns(self):
        policy = AccessPolicy().allow("*", "get*").deny("*", "*")
        assert policy.allows("x", "get")
        assert policy.allows("x", "get_version")
        assert not policy.allows("x", "put")

    def test_read_only_preset(self):
        policy = AccessPolicy.read_only()
        assert policy.allows("anyone", "get")
        assert policy.allows("anyone", "demand")
        assert not policy.allows("anyone", "put")

    def test_sites_only_preset(self):
        policy = AccessPolicy.sites_only("hq-*", "branch-1")
        assert policy.allows("hq-lisbon", "put")
        assert policy.allows("branch-1", "get")
        assert not policy.allows("branch-2", "get")


class TestGuardedExport:
    def test_authorized_site_full_protocol(self, zsites):
        provider, consumer = zsites
        master = Counter(1)
        provider.export_guarded(
            master, AccessPolicy.sites_only("S1"), name="guarded"
        )
        replica = consumer.replicate("guarded")
        assert replica.read() == 1
        replica.increment()
        consumer.put_back(replica)
        assert master.value == 2
        consumer.refresh(replica)

    def test_unauthorized_site_denied_with_security_error(self, zero_world):
        provider = zero_world.create_site("S2")
        friend = zero_world.create_site("friend")
        stranger = zero_world.create_site("stranger")
        master = Counter(1)
        provider.export_guarded(
            master, AccessPolicy.sites_only("friend"), name="guarded"
        )
        friend.replicate("guarded")  # fine
        with pytest.raises(SecurityError, match="not allowed"):
            stranger.replicate("guarded")

    def test_read_only_export(self, zsites):
        provider, consumer = zsites
        master = Counter(5)
        provider.export_guarded(master, AccessPolicy.read_only(), name="reference")
        replica = consumer.replicate("reference")  # get allowed
        assert replica.read() == 5
        replica.increment()
        with pytest.raises(SecurityError):
            consumer.put_back(replica)
        assert master.value == 5

    def test_rmi_mode_also_guarded(self, zsites):
        provider, consumer = zsites
        master = Counter(0)
        provider.export_guarded(
            master,
            AccessPolicy().allow("*", "read").deny("*", "*"),
            name="rmi-guarded",
        )
        stub = consumer.remote_stub("rmi-guarded")
        assert stub.read() == 0
        with pytest.raises(SecurityError):
            stub.increment()

    def test_faults_through_guarded_frontier(self, zsites):
        """A demand against a guarded provider honours the policy."""
        from tests.models import make_chain

        provider, consumer = zsites
        head = make_chain(3)
        provider.export_guarded(head, AccessPolicy.read_only(), name="ro-chain")
        replica = consumer.replicate("ro-chain")
        # The frontier proxy-in for node 1 is exported *unguarded* by the
        # engine; the guarded policy applies to the named root.
        assert replica.get_next().get_index() == 1

    def test_local_use_of_guarded_master_unrestricted(self, zsites):
        provider, _consumer = zsites
        master = Counter(0)
        provider.export_guarded(master, AccessPolicy(), name="locked")
        master.increment()  # plain local call
        assert provider.replicate("locked") is master  # local short-circuit

    def test_guard_after_plain_export_rejected(self, zsites):
        provider, _consumer = zsites
        master = Counter(0)
        provider.export(master)
        with pytest.raises(ReplicationError, match="unguarded"):
            provider.export_guarded(master, AccessPolicy())

    def test_denial_counter(self, zero_world):
        provider = zero_world.create_site("P")
        stranger = zero_world.create_site("X")
        master = Counter(0)
        ref = provider.export_guarded(master, AccessPolicy(), name="sealed")
        guard: AccessGuard = provider.endpoint.objects.get(ref.object_id)
        for _ in range(3):
            with pytest.raises(SecurityError):
                stranger.replicate("sealed")
        assert guard.denials == 3


class TestGuardOverLiveTransport:
    def test_security_error_crosses_tcp(self):
        from repro.core.runtime import World

        with World.tcp() as world:
            provider = world.create_site("P")
            stranger = world.create_site("X")
            master = Counter(0)
            provider.export_guarded(
                master, AccessPolicy.sites_only("nobody"), name="sealed"
            )
            with pytest.raises(SecurityError):
                stranger.replicate("sealed")
