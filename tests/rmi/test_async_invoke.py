"""Tests for invoke_async / InvokeFuture: pipelined and sync-settled."""

import pytest

from repro.rmi.endpoint import RmiEndpoint
from repro.simnet.loopback import LoopbackNetwork
from repro.simnet.reactor import ReactorNetwork
from repro.util.clock import WallClock
from repro.util.errors import RemoteError


class Counter:
    def __init__(self):
        self.n = 0

    def bump(self, k):
        self.n += k
        return self.n

    def fail(self):
        raise ValueError("nope")


@pytest.fixture
def loopback_endpoints():
    network = LoopbackNetwork()
    server = RmiEndpoint(network, "server")
    client = RmiEndpoint(network, "client")
    yield server, client
    network.close()


@pytest.fixture
def reactor_endpoints():
    network = ReactorNetwork(WallClock())
    server = RmiEndpoint(network, "server")
    client = RmiEndpoint(network, "client")
    yield server, client
    network.close()


class TestSyncSettled:
    """On non-pipelining transports the future settles before returning."""

    def test_result_matches_invoke(self, loopback_endpoints):
        server, client = loopback_endpoints
        ref = server.export(Counter())
        future = client.invoke_async(ref, "bump", (3,))
        assert future.done()
        assert future.result() == 3

    def test_remote_failure_reraised_at_result(self, loopback_endpoints):
        server, client = loopback_endpoints
        ref = server.export(Counter())
        future = client.invoke_async(ref, "fail")
        with pytest.raises((ValueError, RemoteError)):
            future.result()

    def test_local_ref_dispatches_immediately(self, loopback_endpoints):
        server, _client = loopback_endpoints
        ref = server.export(Counter())
        future = server.invoke_async(ref, "bump", (2,))
        assert future.done()
        assert future.result() == 2

    def test_settled_future_cannot_be_cancelled(self, loopback_endpoints):
        server, client = loopback_endpoints
        ref = server.export(Counter())
        future = client.invoke_async(ref, "bump", (1,))
        assert future.cancel() is False
        assert future.result() == 1


class TestPipelined:
    """On the reactor, many futures share one multiplexed channel."""

    def test_many_futures_one_channel(self, reactor_endpoints):
        server, client = reactor_endpoints
        ref = server.export(Counter())
        futures = [client.invoke_async(ref, "bump", (1,)) for _ in range(8)]
        # Completion lands in dispatch order for a single object, but the
        # caller may harvest in any order it likes.
        assert sorted(f.result(5.0) for f in futures) == list(range(1, 9))
        stats = client.network.reactor_stats.snapshot()
        assert stats["frames_pipelined"] >= 7  # first call rides the probe

    def test_remote_failure_reraised_at_result(self, reactor_endpoints):
        server, client = reactor_endpoints
        ref = server.export(Counter())
        ok = client.invoke_async(ref, "bump", (1,))
        bad = client.invoke_async(ref, "fail")
        with pytest.raises((ValueError, RemoteError)):
            bad.result(5.0)
        # The sibling request on the same channel is unharmed.
        assert ok.result(5.0) == 1

    def test_repr_names_method_and_site(self, reactor_endpoints):
        server, client = reactor_endpoints
        ref = server.export(Counter())
        future = client.invoke_async(ref, "bump", (1,))
        assert "bump" in repr(future)
        assert future.result(5.0) == 1
