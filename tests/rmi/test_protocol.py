"""Tests for the invocation protocol frames."""

import pytest

from repro.rmi.protocol import InvokeFailure, InvokeRequest, InvokeSuccess
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.util.errors import NameNotFoundError, ProtocolError, RemoteError


def test_request_roundtrip():
    request = InvokeRequest("obj:1", "method", (1, "two"), {"k": 3})
    result = Decoder().decode(Encoder().encode(request))
    assert isinstance(result, InvokeRequest)
    assert result.object_id == "obj:1"
    assert result.method == "method"
    assert result.args == (1, "two")
    assert result.kwargs == {"k": 3}


def test_success_roundtrip():
    result = Decoder().decode(Encoder().encode(InvokeSuccess(value=[1, 2])))
    assert isinstance(result, InvokeSuccess)
    assert result.value == [1, 2]


def test_failure_roundtrip():
    failure = InvokeFailure("ValueError", "bad input", "trace...")
    result = Decoder().decode(Encoder().encode(failure))
    assert isinstance(result, InvokeFailure)
    assert result.error_name == "ValueError"
    assert result.remote_traceback == "trace..."


def test_from_exception_captures_type_and_message():
    failure = InvokeFailure.from_exception(KeyError("missing"), "tb")
    assert failure.error_name == "KeyError"
    assert "missing" in failure.message


class TestRaise:
    def test_wellknown_middleware_error_reconstructs(self):
        failure = InvokeFailure("NameNotFoundError", "name 'x' is not bound")
        with pytest.raises(NameNotFoundError, match="not bound"):
            failure.raise_()

    def test_protocol_error_reconstructs(self):
        with pytest.raises(ProtocolError):
            InvokeFailure("ProtocolError", "bad").raise_()

    def test_application_error_becomes_remote_error(self):
        failure = InvokeFailure("ValueError", "kapow", "the traceback")
        with pytest.raises(RemoteError) as info:
            failure.raise_()
        assert info.value.remote_type == "ValueError"
        assert info.value.remote_traceback == "the traceback"

    def test_unknown_error_name_becomes_remote_error(self):
        with pytest.raises(RemoteError):
            InvokeFailure("SomeCustomAppError", "x").raise_()
