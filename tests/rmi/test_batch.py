"""Tests for batched invocation: many calls, one round trip."""

import pytest

from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.refs import RemoteRef
from repro.simnet.loopback import LoopbackNetwork
from repro.util.errors import ProtocolError, RemoteError


class Calculator:
    def add(self, a, b):
        return a + b

    def fail(self):
        raise ValueError("nope")


@pytest.fixture
def endpoints():
    network = LoopbackNetwork()
    server = RmiEndpoint(network, "server")
    client = RmiEndpoint(network, "client")
    yield server, client
    network.close()


class TestInvokeBatch:
    def test_many_calls_one_round_trip(self, endpoints):
        server, client = endpoints
        refs = [server.export(Calculator()) for _ in range(3)]
        before = client.network.stats.link("client", "server").messages
        results = client.invoke_batch(
            "server", [(ref, "add", (i, i)) for i, ref in enumerate(refs)]
        )
        assert results == [0, 2, 4]
        assert client.network.stats.link("client", "server").messages == before + 1

    def test_empty_batch_is_free(self, endpoints):
        _server, client = endpoints
        before = client.network.stats.total_messages
        assert client.invoke_batch("server", []) == []
        assert client.network.stats.total_messages == before

    def test_entries_fail_independently(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        good, bad, also_good = client.invoke_batch(
            "server", [(ref, "add", (1, 2)), (ref, "fail", ()), (ref, "add", (3, 4))]
        )
        assert good == 3
        assert isinstance(bad, RemoteError)
        assert bad.remote_type == "ValueError"
        assert also_good == 7

    def test_mixed_sites_rejected(self, endpoints):
        server, client = endpoints
        ref = server.export(Calculator())
        stranger = RemoteRef("elsewhere", "obj:1")
        with pytest.raises(ProtocolError):
            client.invoke_batch("server", [(ref, "add", (1, 1)), (stranger, "add", (1, 1))])

    def test_local_batch_short_circuits(self, endpoints):
        server, _client = endpoints
        ref = server.export(Calculator())
        before = server.network.stats.total_messages
        assert server.invoke_batch("server", [(ref, "add", (2, 2))]) == [4]
        assert server.network.stats.total_messages == before
