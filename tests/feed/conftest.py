"""Fixtures for the change-feed suite: a primary with live followers."""

from __future__ import annotations

import pytest

from repro.core.meta import obi_id_of
from tests.models import Box


@pytest.fixture
def group(zero_world):
    """Primary ``P`` exporting one Box, followers ``F1``/``F2`` tailing it.

    The name server lives on its own site (``NS``): promotion rebinds
    the group's names, so the name service must survive the primary —
    hosting it on ``P`` would partition it away with the failure.
    """
    zero_world.create_site("NS")  # first site hosts the name server
    primary_site = zero_world.create_site("P")
    box = Box(1)
    primary_site.export(box, name="box")
    primary = primary_site.feed_primary()
    f1 = zero_world.create_site("F1").feed_follow("P")
    f2 = zero_world.create_site("F2").feed_follow("P")
    return zero_world, primary, f1, f2, box


def mirror_of(follower, obj):
    """The follower-side mirror of a primary master (None before sync)."""
    return follower.site.master_object_for(obi_id_of(obj))
