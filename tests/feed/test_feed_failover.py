"""Failover: election, promotion, epoch fencing, partition convergence.

The scenarios follow the runbook in ``docs/HA.md``: a primary dies (or
is partitioned away) under write load, the highest-serial follower is
promoted, the survivors re-point, and every frame the deposed primary
still pushes is rejected by epoch — no acknowledged write is lost and
no split-brain write is applied.
"""

import pytest

from repro.core.meta import obi_id_of
from repro.core.packages import FeedSnapshotRequest
from repro.util.errors import FeedError, StaleEpochError
from repro.feed import elect_new_primary, fail_over, request_promotion
from tests.feed.conftest import mirror_of
from tests.models import Box


def group_state(sites, oid):
    """value of ``oid``'s object at each site, for convergence asserts."""
    return {site.name: site.master_object_for(oid).get() for site in sites}


class TestElection:
    def test_highest_applied_serial_wins(self, group):
        world, primary, f1, f2, box = group
        world.network.partition({"P"}, {"F2"})
        box.set(2)
        primary.site.touch(box)  # only F1 applies this serial
        assert f1.last_applied_serial > f2.last_applied_serial
        assert elect_new_primary([f1, f2]) is f1
        assert elect_new_primary([f2, f1]) is f1  # order-independent

    def test_serial_ties_break_on_site_name(self, group):
        _world, _primary, f1, f2, _box = group
        assert f1.last_applied_serial == f2.last_applied_serial
        assert elect_new_primary([f2, f1]) is f1

    def test_zero_followers_is_typed(self):
        with pytest.raises(FeedError, match="zero followers"):
            elect_new_primary([])


class TestPromotion:
    def test_fail_over_resumes_writes_with_no_acked_loss(self, group):
        world, primary, f1, f2, box = group
        oid = obi_id_of(box)
        # A write acknowledged by the group before the primary dies...
        box.set(2)
        primary.site.touch(box)
        primary.detach()  # the primary crashes
        reply = fail_over([f1, f2], reason="primary crashed")
        assert reply.site_id == "F1" and reply.epoch == 2
        # ...survived the failover at the new primary,
        new_master = f1.site.master_object_for(oid)
        assert new_master.get() == 2
        # and writes resume immediately, fanning out to the survivor.
        new_master.set(3)
        f1.site.touch(new_master)
        assert mirror_of(f2, box).get() == 3
        assert f1.site.feed_stats.snapshot()["role"] == "primary"
        assert f1.site.feed_stats.snapshot()["promotions"] == 1

    def test_promotion_rebinds_the_primaries_names(self, group):
        _world, primary, f1, f2, box = group
        primary.detach()
        fail_over([f1, f2])
        ref = f2.site.naming.lookup("box")
        assert ref.site_id == "F1"

    def test_promotion_continues_the_serial_numbering(self, group):
        _world, primary, f1, f2, box = group
        box.set(2)
        primary.site.touch(box)
        head = primary.site.change_log.latest_serial
        primary.detach()
        fail_over([f1, f2])
        new_master = f1.site.master_object_for(obi_id_of(box))
        new_master.set(3)
        f1.site.touch(new_master)
        assert f1.site.change_log.latest_serial == head + 1
        assert f2.last_applied_serial == head + 1

    def test_request_promotion_over_rmi(self, group):
        _world, primary, f1, f2, _box = group
        primary.detach()
        reply = request_promotion(f2.site, "F1", epoch=2, reason="operator")
        assert reply.site_id == "F1" and reply.epoch == 2
        assert f1.site.feed_stats.snapshot()["role"] == "primary"

    def test_stale_promotion_request_is_refused(self, group):
        _world, primary, f1, f2, _box = group
        primary.detach()
        fail_over([f1, f2])  # the group is already at epoch 2
        with pytest.raises(StaleEpochError):
            request_promotion(f1.site, "F2", epoch=2)

    def test_promoting_an_unupgraded_site_is_refused(self, group):
        world, _primary, _f1, _f2, _box = group
        world.create_site("OLD")
        operator = world.sites["F1"]
        with pytest.raises(FeedError, match="cannot be promoted"):
            request_promotion(operator, "OLD", epoch=9)


class TestEpochFencing:
    def test_deposed_primary_frames_are_rejected_and_it_demotes(self, group):
        world, primary, f1, f2, box = group
        oid = obi_id_of(box)
        # The group fails over while the old primary is partitioned away
        # — it never saw the promotion and still believes it leads.
        world.network.partition({"P"}, {"F1", "F2"})
        box.set(2)
        primary.site.touch(box)  # pushes fail; both followers stall
        fail_over([f1, f2], reason="P unreachable")
        new_master = f1.site.master_object_for(oid)
        new_master.set(30)
        f1.site.touch(new_master)
        assert mirror_of(f2, box).get() == 30
        # The partition heals and the deposed primary pushes again.
        world.network.connectivity.heal()
        primary._subscribers["F2"].stalled = False  # it still lists F2
        box.set(99)
        primary.site.touch(box)
        # The stale frame was rejected, not applied...
        assert mirror_of(f2, box).get() == 30
        assert f2.site.feed_stats.snapshot()["stale_epoch_rejects"] >= 1
        # ...and the rejection's epoch demoted the old primary.
        assert not primary.active
        assert primary.site.feed_stats.snapshot()["role"] == "demoted"

    def test_stale_snapshot_is_rejected_before_any_apply(self, group):
        _world, primary, f1, _f2, box = group
        snapshot = primary.handle_snapshot(FeedSnapshotRequest(site_id="F1"))
        f1._adopt_epoch(snapshot.epoch + 1)  # the group moved on
        before = mirror_of(f1, box).get()
        with pytest.raises(StaleEpochError):
            f1._apply_snapshot(snapshot)
        assert mirror_of(f1, box).get() == before


class TestPartitionConvergence:
    def test_partition_heal_converges_all_sites_with_zero_lag(self, group):
        world, primary, f1, f2, box = group
        oid = obi_id_of(box)
        world.network.partition({"P", "F2"}, {"F1"})
        for value in (2, 3, 4):
            box.set(value)
            primary.site.touch(box)
        assert mirror_of(f2, box).get() == 4
        assert mirror_of(f1, box).get() == 1  # stalled behind the partition
        world.network.connectivity.heal()
        f1.start("P")  # reconnect from our cursor
        assert group_state(
            [primary.site, f1.site, f2.site], oid
        ) == {"P": 4, "F1": 4, "F2": 4}
        for follower in (f1, f2):
            assert follower.site.feed_stats.snapshot()["lag_serials"] == 0
        assert f1.site.feed_stats.snapshot()["catch_up_events"] >= 1
