"""Role mechanics: subscribe, push, catch-up, bootstrap, write-through.

The group fixture is a primary ``P`` with followers ``F1``/``F2`` on the
deterministic loopback world; every test drives real RMI traffic through
the exported feed service, not role objects called directly.
"""

import pytest

from repro.core.meta import obi_id_of
from repro.core.packages import FeedSubscribeRequest
from repro.core.telemetry import snapshot
from repro.core.versions import ChangeLog
from repro.util.errors import FeedError
from tests.feed.conftest import mirror_of
from tests.models import Box

pytestmark = []


class TestSubscribe:
    def test_join_mirrors_every_existing_master(self, group):
        _world, primary, f1, _f2, box = group
        mirror = mirror_of(f1, box)
        assert mirror is not None and mirror is not box
        assert mirror.get() == 1
        assert f1.last_applied_serial == primary.site.change_log.latest_serial

    def test_masters_exported_before_the_feed_are_seeded(self, group):
        # The fixture's Box predates FeedPrimary: its journal entry was
        # seeded at role creation, which is exactly what the join above
        # replayed.  A second pre-feed master must arrive the same way.
        world, primary, _f1, _f2, _box = group
        extra = Box("pre-feed")
        primary.site.export(extra, name="extra")
        late = world.create_site("F3").feed_follow("P")
        assert mirror_of(late, extra).get() == "pre-feed"

    def test_follower_refuses_to_serve_subscriptions(self, group):
        _world, _primary, f1, _f2, _box = group
        with pytest.raises(FeedError, match="follower"):
            f1.handle_subscribe(FeedSubscribeRequest(site_id="X", last_serial=0))

    def test_following_an_unupgraded_site_is_refused_cleanly(self, zero_world):
        zero_world.create_site("OLD")  # speaks the seed protocol only
        joiner = zero_world.create_site("F1")
        with pytest.raises(FeedError, match="does not speak"):
            joiner.feed_follow("OLD")
        assert not joiner.peer_caps.assume("OLD", "feed")

    def test_unupgraded_subscriber_is_stalled_not_poisonous(self, group):
        # An operator subscribes a site that never exported a feed
        # service; the first (probed) push classifies it and stalls it,
        # and the healthy followers keep receiving frames.
        world, primary, f1, _f2, box = group
        world.create_site("OLD")
        primary.handle_subscribe(FeedSubscribeRequest(site_id="OLD", last_serial=0))
        box.set(2)
        primary.site.touch(box)
        assert mirror_of(f1, box).get() == 2
        assert "OLD" not in primary.subscriber_serials()
        assert primary.site.feed_stats.snapshot()["push_failures"] >= 1


class TestPush:
    def test_touch_propagates_to_every_follower(self, group):
        _world, primary, f1, f2, box = group
        box.set(2)
        primary.site.touch(box)
        assert mirror_of(f1, box).get() == 2
        assert mirror_of(f2, box).get() == 2
        assert f1.site.feed_stats.snapshot()["lag_serials"] == 0

    def test_new_masters_flow_through_the_feed(self, group):
        _world, primary, f1, _f2, _box = group
        late = Box("late")
        primary.site.export(late, name="late")
        primary.site.touch(late)
        assert mirror_of(f1, late).get() == "late"

    def test_stale_frames_are_deduped_by_version(self, group):
        _world, primary, f1, _f2, box = group
        box.set(2)
        primary.site.touch(box)
        applied_before = f1.site.feed_stats.snapshot()["frames_applied"]
        # Re-subscribing replays the journal tail; every frame loses to
        # the version-monotonic guard, so nothing is re-applied.
        f1.start("P")
        assert mirror_of(f1, box).get() == 2
        assert f1.site.feed_stats.snapshot()["frames_applied"] == applied_before


class TestCatchUpAndBootstrap:
    def test_reconnect_catches_up_from_cursor(self, group):
        world, primary, f1, _f2, box = group
        world.network.partition({"P"}, {"F1"})
        box.set(10)
        primary.site.touch(box)  # F1's push fails; it is stalled
        assert mirror_of(f1, box).get() == 1
        world.network.connectivity.heal()
        f1.start("P")
        assert mirror_of(f1, box).get() == 10
        assert f1.site.feed_stats.snapshot()["lag_serials"] == 0

    def test_retention_gap_downgrades_to_snapshot_bootstrap(self, zero_world):
        primary_site = zero_world.create_site("P")
        primary_site.change_log = ChangeLog(journal_retention=4)
        box = Box(0)
        primary_site.export(box, name="box")
        primary = primary_site.feed_primary()
        for value in range(1, 11):
            box.set(value)
            primary_site.touch(box)
        late = zero_world.create_site("F1").feed_follow("P")
        assert mirror_of(late, box).get() == 10
        assert late.site.feed_stats.snapshot()["snapshot_bootstraps"] == 1
        assert primary_site.feed_stats.snapshot()["snapshots_served"] == 1

    def test_live_join_does_not_disturb_the_write_path(self, group):
        # Writes land immediately before and after a third follower
        # joins mid-stream: nothing quiesces, nobody regresses.
        world, primary, f1, f2, box = group
        box.set(2)
        primary.site.touch(box)
        f3 = world.create_site("F3").feed_follow("P")
        box.set(3)
        primary.site.touch(box)
        for follower in (f1, f2, f3):
            assert mirror_of(follower, box).get() == 3
            assert follower.site.feed_stats.snapshot()["lag_serials"] == 0


class TestWriteThrough:
    def test_put_through_lands_at_primary_and_peers(self, group):
        _world, primary, f1, f2, box = group
        mirror = mirror_of(f1, box)
        mirror.set(42)
        versions = f1.put_through(mirror)
        assert box.get() == 42  # landed at the primary
        assert mirror_of(f2, box).get() == 42  # fanned out to peers
        oid = obi_id_of(box)
        assert versions[oid] == primary.site.master_version(box)
        # The ack condition: our own mirror caught up to the put version.
        assert f1.site.master_version(mirror) >= versions[oid]

    def test_put_through_without_provider_is_typed(self, group):
        _world, _primary, f1, _f2, _box = group
        stranger = Box("unseen")
        with pytest.raises(FeedError, match="write-through target"):
            f1.put_through(stranger)


class TestTelemetry:
    def test_feed_line_renders_role_epoch_and_lag(self, group):
        _world, primary, f1, _f2, box = group
        box.set(2)
        primary.site.touch(box)
        primary_text = snapshot(primary.site).render()
        follower_text = snapshot(f1.site).render()
        assert "feed    : role primary" in primary_text
        assert "role follower" in follower_text
        assert "lag 0 serials" in follower_text
