"""Field-delta codec and fingerprint tests (PR 4)."""

import pytest

from repro.core.meta import obi_id_of
from repro.serial.decoder import Decoder
from repro.serial.delta import (
    FieldDelta,
    Fingerprinter,
    decode_field_delta,
    encode_field_delta,
)
from repro.serial.encoder import Encoder
from repro.serial.registry import global_registry
from repro.util.errors import SerializationError
from tests.models import Box


@pytest.fixture
def codec():
    return Encoder(global_registry), Decoder(global_registry)


class TestFieldDeltaCodec:
    def test_roundtrip(self, codec):
        encoder, decoder = codec
        delta = FieldDelta(
            obi_id="x", base_version=3, fields={"index": 7, "payload": b"\x01\x02"}
        )
        payload = encode_field_delta(encoder, delta)
        assert decode_field_delta(decoder, payload) == {
            "index": 7,
            "payload": b"\x01\x02",
        }

    def test_shared_subobjects_stay_aliased(self, codec):
        encoder, decoder = codec
        shared = [1, 2, 3]
        payload = encode_field_delta(
            encoder, FieldDelta(fields={"a": shared, "b": shared})
        )
        fields = decode_field_delta(decoder, payload)
        assert fields["a"] is fields["b"]

    def test_non_dict_frame_rejected(self, codec):
        encoder, decoder = codec
        with pytest.raises(SerializationError, match="str-keyed dict"):
            decode_field_delta(decoder, encoder.encode([1, 2, 3]))

    def test_non_str_keys_rejected(self, codec):
        encoder, decoder = codec
        with pytest.raises(SerializationError, match="str-keyed dict"):
            decode_field_delta(decoder, encoder.encode({1: "a"}))


class TestFingerprinter:
    @pytest.fixture
    def fp(self):
        return Fingerprinter(global_registry)

    def test_deterministic_and_order_independent(self, fp):
        assert fp.of_state({"a": 1, "b": 2}) == fp.of_state({"b": 2, "a": 1})

    def test_value_change_changes_digest(self, fp):
        assert fp.of_state({"a": 1}) != fp.of_state({"a": 2})
        assert fp.of_state({"a": 1}) != fp.of_state({"b": 1})

    def test_obiwan_references_hash_as_identity(self, fp):
        inner = Box(1)
        digest = fp.of_state({"ref": inner})
        inner.value = 999  # the referent's own state is not part of the digest
        assert fp.of_state({"ref": inner}) == digest
        assert fp.of_state({"ref": Box(1)}) != digest  # different identity

    def test_of_object_matches_of_state_on_vars(self, fp):
        box = Box(5)
        obi_id_of(box)  # materialize the identity field
        assert fp.of_object(box) == fp.of_state(vars(box))

    def test_of_value_detects_container_mutation(self, fp):
        items = [1, 2]
        baseline = fp.of_value(items)
        items.append(3)
        assert fp.of_value(items) != baseline
