"""Typed decode errors for short, sliced, and unknown-tag frames (PR 8).

A short TCP read or a sender crash mid-encode used to escape the decoder
as a raw ``struct.error`` / ``IndexError``; an unknown tag byte raised a
bare :class:`SerializationError`.  Both now have dedicated types —
:class:`TruncatedFrameError` (also a :class:`ReplicationError`, so the
replication engine treats a torn replica frame as a failed refresh) and
:class:`UnknownWireTagError` (carries the offending byte) — and these
tests slice real frames at every byte boundary to prove no raw exception
ever leaks.
"""

import struct

import pytest

from repro.serial import tags
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.util.errors import (
    ReplicationError,
    SerializationError,
    TruncatedFrameError,
    UnknownWireTagError,
)


@pytest.fixture
def registry():
    return TypeRegistry()


def _decode_sliced(registry, frame: bytes) -> None:
    """Decode every proper prefix of ``frame``; each must fail typed."""
    decoder = Decoder(registry)
    for cut in range(len(frame)):
        try:
            decoder.decode(frame[:cut])
        except TruncatedFrameError:
            continue
        except SerializationError:
            # Some prefixes are structurally complete but semantically
            # broken (e.g. a dangling back-reference) — still typed.
            continue
        except (struct.error, IndexError) as exc:  # pragma: no cover
            pytest.fail(f"raw {type(exc).__name__} escaped at cut={cut}")
        else:
            # A prefix that decodes cleanly would be a framing bug: every
            # frame is length-delimited from byte 0.
            pytest.fail(f"prefix of length {cut} decoded successfully")


# ----------------------------------------------------------------------
# reflective path
# ----------------------------------------------------------------------
class TestReflectiveTruncation:
    def test_every_prefix_of_a_scalar_frame_fails_typed(self, registry):
        _decode_sliced(registry, Encoder(registry).encode("hello wire"))

    def test_every_prefix_of_a_container_frame_fails_typed(self, registry):
        value = {"k": [1, 2.5, b"bytes", ("t", frozenset({3}))], "n": None}
        _decode_sliced(registry, Encoder(registry).encode(value))

    def test_every_prefix_of_an_object_frame_fails_typed(self, registry):
        class Thing:
            def __init__(self, a=0, b=""):
                self.a = a
                self.b = b

        registry.register(Thing)
        _decode_sliced(registry, Encoder(registry).encode(Thing(7, "state")))

    def test_error_carries_offset_wanted_available(self, registry):
        frame = Encoder(registry).encode("hello world")
        with pytest.raises(TruncatedFrameError) as info:
            Decoder(registry).decode(frame[:-3])
        err = info.value
        assert err.wanted > err.available >= 0
        assert err.offset > 0
        assert "truncated" in str(err)

    def test_truncation_is_both_serialization_and_replication_error(self):
        err = TruncatedFrameError("torn", offset=5, wanted=8, available=2)
        assert isinstance(err, SerializationError)
        assert isinstance(err, ReplicationError)

    def test_float_frame_short_read(self, registry):
        frame = Encoder(registry).encode(2.75)
        with pytest.raises(TruncatedFrameError):
            Decoder(registry).decode(frame[:5])


# ----------------------------------------------------------------------
# compiled path
# ----------------------------------------------------------------------
class TestCompiledTruncation:
    def _compiled_frame(self, registry) -> bytes:
        class Packed:
            def __init__(self, n: int = 0, label: str = "", ratio: float = 0.0):
                self.n = n
                self.label = label
                self.ratio = ratio

        registry.register(Packed)
        frame = Encoder(registry, compiled=True).encode(Packed(9, "wire", 0.5))
        assert frame[0] == tags.OBJECT_SCHEMA
        return frame

    def test_every_prefix_of_a_compiled_frame_fails_typed(self, registry):
        _decode_sliced(registry, self._compiled_frame(registry))

    def test_mid_payload_cut_names_the_class(self, registry):
        frame = self._compiled_frame(registry)
        with pytest.raises(TruncatedFrameError, match="Packed"):
            Decoder(registry).decode(frame[: len(frame) - 2])


# ----------------------------------------------------------------------
# unknown tags
# ----------------------------------------------------------------------
class TestUnknownTag:
    def test_unknown_tag_raises_typed_error_naming_the_tag(self, registry):
        with pytest.raises(UnknownWireTagError, match="0xee") as info:
            Decoder(registry).decode(b"\xee")
        assert info.value.tag == 0xEE

    def test_every_unassigned_byte_is_rejected(self, registry):
        assigned = {
            value
            for name, value in vars(tags).items()
            if name.isupper() and isinstance(value, int)
        }
        decoder = Decoder(registry)
        for byte in range(256):
            if byte in assigned:
                continue
            with pytest.raises(UnknownWireTagError) as info:
                decoder.decode(bytes([byte]))
            assert info.value.tag == byte

    def test_unknown_tag_is_a_serialization_error(self, registry):
        # The negotiation layer classifies pre-codec peers by this shape:
        # SerializationError whose text contains "unknown wire tag".
        with pytest.raises(SerializationError, match="unknown wire tag"):
            Decoder(registry).decode(bytes([0xEE]))

    def test_nested_unknown_tag_surfaces_typed(self, registry):
        # LIST of 1 element whose tag is bogus.
        frame = bytes([tags.LIST]) + (1).to_bytes(4, "big") + b"\xe1"
        with pytest.raises(UnknownWireTagError) as info:
            Decoder(registry).decode(frame)
        assert info.value.tag == 0xE1
