"""Tests for the obicodec schema-compiled fast path (PR 7)."""

import pytest

from repro.core.telemetry import SerialPathStats
from repro.serial import tags
from repro.serial.compiled import (
    INT64_MAX,
    codec_for,
    derive_schema,
    registered_codec_names,
    schema_hash_of,
)
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.util.errors import SerializationError


@pytest.fixture
def registry():
    return TypeRegistry()


def compiled_pair(registry):
    return Encoder(registry, compiled=True), Decoder(registry)


# ----------------------------------------------------------------------
# schema derivation
# ----------------------------------------------------------------------
class TestDeriveSchema:
    def test_parameter_annotations(self):
        class Point:
            def __init__(self, x: int, y: float, label: str):
                self.x = x
                self.y = y
                self.label = label

        assert derive_schema(Point) == (("x", "int"), ("y", "float"), ("label", "str"))

    def test_literal_defaults(self):
        class Counter:
            def __init__(self):
                self.count = 0
                self.rate = 0.0
                self.name = ""
                self.live = False
                self.blob = b""

        assert derive_schema(Counter) == (
            ("count", "int"),
            ("rate", "float"),
            ("name", "str"),
            ("live", "bool"),
            ("blob", "bytes"),
        )

    def test_negative_literal_and_constructor_call(self):
        class Sensor:
            def __init__(self, raw):
                self.offset = -1
                self.reading = float(raw)

        assert derive_schema(Sensor) == (("offset", "int"), ("reading", "float"))

    def test_class_annotations(self):
        class Annotated:
            x: int
            y: str

            def __init__(self, x, y):
                self.x = x
                self.y = y

        assert derive_schema(Annotated) == (("x", "int"), ("y", "str"))

    def test_parameter_default_infers_kind(self):
        class Defaulted:
            def __init__(self, limit=10):
                self.limit = limit

        assert derive_schema(Defaulted) == (("limit", "int"),)

    def test_no_init_yields_empty_schema(self):
        class Bare:
            pass

        assert derive_schema(Bare) == ()

    def test_uninferable_field_rejected(self):
        class Opaque:
            def __init__(self, thing):
                self.thing = thing

        assert derive_schema(Opaque) is None

    def test_container_field_rejected(self):
        class Listy:
            def __init__(self):
                self.items = []

        assert derive_schema(Listy) is None

    def test_conflicting_assignments_rejected(self):
        class Poly:
            def __init__(self, flag: bool):
                if flag:
                    self.value = 0
                else:
                    self.value = ""

        assert derive_schema(Poly) is None

    def test_tuple_unpack_rejected(self):
        class Unpacked:
            def __init__(self):
                self.a, self.b = 1, 2

        assert derive_schema(Unpacked) is None

    def test_obi_id_assignment_rejected(self):
        class Reserved:
            def __init__(self):
                self._obi_id = "oid-1"

        assert derive_schema(Reserved) is None

    def test_slots_rejected(self):
        class Slotted:
            __slots__ = ("x",)

            def __init__(self, x: int):
                self.x = x

        assert derive_schema(Slotted) is None

    def test_custom_getstate_rejected(self):
        class Hooked:
            def __init__(self):
                self.x = 1

            def __getstate__(self):
                return (self.x,)

        assert derive_schema(Hooked) is None

    def test_sourceless_class_rejected(self):
        namespace = {}
        exec("class Dynamic:\n    def __init__(self):\n        self.x = 1\n", namespace)
        assert derive_schema(namespace["Dynamic"]) is None


# ----------------------------------------------------------------------
# codec compilation and the cache
# ----------------------------------------------------------------------
class TestCodecCompilation:
    def test_registration_compiles_a_codec(self, registry):
        class Reading:
            def __init__(self, value: float, station: str):
                self.value = value
                self.station = station

        entry = registry.register(Reading)
        codec = codec_for(Reading)
        assert codec is not None
        assert codec.name == entry.name
        assert codec.fields == (("value", "float"), ("station", "str"))
        assert codec.schema_hash == schema_hash_of(codec.fields)
        assert codec.name in registered_codec_names()

    def test_custom_hooks_opt_out(self, registry):
        class Handled:
            def __init__(self):
                self.x = 1

        registry.register(Handled, get_state=lambda o: o.x, set_state=lambda o, s: setattr(o, "x", s))
        assert codec_for(Handled) is None

    def test_rejection_is_cached(self, registry):
        class NoSchema:
            def __init__(self, thing):
                self.thing = thing

        registry.register(NoSchema)
        assert codec_for(NoSchema) is None

    def test_generated_source_is_kept(self, registry):
        class Kept:
            def __init__(self, n: int):
                self.n = n

        registry.register(Kept)
        source = codec_for(Kept).source
        assert "_obicodec_encode_" in source
        assert "_obicodec_decode_" in source


# ----------------------------------------------------------------------
# roundtrips and wire bytes
# ----------------------------------------------------------------------
class TestCompiledRoundtrip:
    def test_all_scalar_kinds_roundtrip(self, registry):
        class Mixed:
            def __init__(self, i: int, f: float, b: bool, s: str, raw: bytes):
                self.i = i
                self.f = f
                self.b = b
                self.s = s
                self.raw = raw

        registry.register(Mixed)
        encoder, decoder = compiled_pair(registry)
        original = Mixed(-42, 2.5, True, "héllo ✓", b"\x00\xff")
        frame = encoder.encode(original)
        assert frame[0] == tags.OBJECT_SCHEMA
        result = decoder.decode(frame)
        assert type(result) is Mixed
        assert vars(result) == vars(original)
        assert list(vars(result)) == list(vars(original))  # dict order too

    def test_obi_id_travels_in_header(self, registry):
        class Tagged:
            def __init__(self, n: int):
                self.n = n

        registry.register(Tagged)
        encoder, decoder = compiled_pair(registry)
        original = Tagged(7)
        original._obi_id = "oid-compiled-1"
        result = decoder.decode(encoder.encode(original))
        assert result._obi_id == "oid-compiled-1"
        assert result.n == 7
        assert list(vars(result)) == ["n", "_obi_id"]

    def test_compiled_frame_smaller_than_reflective(self, registry):
        class Wide:
            def __init__(self):
                self.alpha = 1
                self.bravo = 2
                self.charlie = 3.0
                self.delta_field = "x"

        registry.register(Wide)
        compiled = Encoder(registry, compiled=True).encode(Wide())
        reflective = Encoder(registry).encode(Wide())
        assert compiled[0] == tags.OBJECT_SCHEMA
        assert reflective[0] == tags.OBJECT
        assert len(compiled) < len(reflective)

    def test_reflective_encoder_unaffected_by_codec(self, registry):
        class Quiet:
            def __init__(self, n: int):
                self.n = n

        registry.register(Quiet)
        assert codec_for(Quiet) is not None
        frame = Encoder(registry).encode(Quiet(1))
        assert frame[0] == tags.OBJECT
        assert bytes([tags.OBJECT_SCHEMA]) not in frame[:1]

    def test_compiled_frames_deterministic(self, registry):
        class Det:
            def __init__(self, a: int, b: str):
                self.a = a
                self.b = b

        registry.register(Det)
        first = Encoder(registry, compiled=True).encode(Det(3, "x"))
        second = Encoder(registry, compiled=True).encode(Det(3, "x"))
        assert first == second

    def test_aliasing_preserved_across_fast_path(self, registry):
        class Leaf:
            def __init__(self, n: int):
                self.n = n

        registry.register(Leaf)
        encoder, decoder = compiled_pair(registry)
        leaf = Leaf(5)
        result = decoder.decode(encoder.encode([leaf, leaf, [leaf]]))
        assert result[0] is result[1]
        assert result[2][0] is result[0]

    def test_memo_parity_with_reflective_neighbours(self, registry):
        """Compiled and reflective objects mix in one frame: the memo
        indices stay consistent because both paths claim exactly one slot
        per instance on each side."""

        class Fast:
            def __init__(self, n: int):
                self.n = n

        class Slow:
            def __init__(self, payload):
                self.payload = payload

        registry.register(Fast)
        registry.register(Slow)
        assert codec_for(Fast) is not None
        assert codec_for(Slow) is None
        encoder, decoder = compiled_pair(registry)
        fast, slow = Fast(1), Slow([1, 2])
        result = decoder.decode(encoder.encode([fast, slow, fast, slow]))
        assert result[0] is result[2]
        assert result[1] is result[3]
        assert result[1].payload == [1, 2]


# ----------------------------------------------------------------------
# fallback to the reflective path
# ----------------------------------------------------------------------
class TestFallback:
    def test_shape_drift_falls_back(self, registry):
        class Drifter:
            def __init__(self, n: int):
                self.n = n

        registry.register(Drifter)
        encoder, decoder = compiled_pair(registry)
        drifted = Drifter(1)
        drifted.extra = [1, 2]  # not in the schema
        frame = encoder.encode(drifted)
        assert frame[0] == tags.OBJECT
        result = decoder.decode(frame)
        assert result.n == 1 and result.extra == [1, 2]

    def test_polymorphic_value_falls_back(self, registry):
        class Typed:
            def __init__(self, n: int):
                self.n = n

        registry.register(Typed)
        encoder, decoder = compiled_pair(registry)
        wrong = Typed(1)
        wrong.n = "actually a string"
        frame = encoder.encode(wrong)
        assert frame[0] == tags.OBJECT
        assert decoder.decode(frame).n == "actually a string"

    def test_out_of_range_int_falls_back(self, registry):
        class Big:
            def __init__(self, n: int):
                self.n = n

        registry.register(Big)
        encoder, decoder = compiled_pair(registry)
        frame = encoder.encode(Big(INT64_MAX + 1))
        assert frame[0] == tags.OBJECT
        assert decoder.decode(frame).n == INT64_MAX + 1

    def test_boundary_ints_stay_compiled(self, registry):
        class Edge:
            def __init__(self, n: int):
                self.n = n

        registry.register(Edge)
        encoder, decoder = compiled_pair(registry)
        for value in (INT64_MAX, -(2**63)):
            frame = encoder.encode(Edge(value))
            assert frame[0] == tags.OBJECT_SCHEMA
            assert decoder.decode(frame).n == value

    def test_non_str_obi_id_falls_back(self, registry):
        class Odd:
            def __init__(self, n: int):
                self.n = n

        registry.register(Odd)
        encoder, _ = compiled_pair(registry)
        odd = Odd(1)
        odd._obi_id = 123  # ids are strings; anything else is drift
        assert encoder.encode(odd)[0] == tags.OBJECT


# ----------------------------------------------------------------------
# encode_compiled (the put-direction frame)
# ----------------------------------------------------------------------
class TestEncodeCompiled:
    def test_returns_schema_frame(self, registry):
        class PutMe:
            def __init__(self, n: int):
                self.n = n

        registry.register(PutMe)
        encoder, decoder = compiled_pair(registry)
        frame = encoder.encode_compiled(PutMe(9))
        assert frame is not None and frame[0] == tags.OBJECT_SCHEMA
        assert decoder.decode(frame).n == 9

    def test_returns_none_on_drift(self, registry):
        class Drifty:
            def __init__(self, n: int):
                self.n = n

        registry.register(Drifty)
        encoder, _ = compiled_pair(registry)
        instance = Drifty(1)
        instance.surprise = {}
        assert encoder.encode_compiled(instance) is None

    def test_returns_none_for_unregistered(self, registry):
        class Ghost:
            def __init__(self, n: int):
                self.n = n

        encoder, _ = compiled_pair(registry)
        assert encoder.encode_compiled(Ghost(1)) is None


# ----------------------------------------------------------------------
# decoder hardening
# ----------------------------------------------------------------------
class TestDecoderHardening:
    def _frame(self, registry):
        class Hard:
            def __init__(self, n: int, s: str):
                self.n = n
                self.s = s

        entry = registry.register(Hard)
        frame = Encoder(registry, compiled=True).encode(Hard(1, "payload"))
        assert frame[0] == tags.OBJECT_SCHEMA
        return frame, entry

    def test_schema_hash_mismatch_raises(self, registry):
        frame, entry = self._frame(registry)
        name_len = len(entry.name.encode("utf-8"))
        hash_end = 1 + 4 + name_len + 4
        tampered = bytearray(frame)
        tampered[hash_end - 1] ^= 0xFF
        with pytest.raises(SerializationError, match="does not match a codec"):
            Decoder(registry).decode(bytes(tampered))

    def test_unknown_name_raises(self, registry):
        frame, _ = self._frame(registry)
        with pytest.raises(SerializationError, match="unknown wire type"):
            Decoder(TypeRegistry()).decode(frame)

    def test_truncated_compiled_frame_raises(self, registry):
        frame, _ = self._frame(registry)
        for cut in (len(frame) - 3, len(frame) // 2):
            with pytest.raises(SerializationError):
                Decoder(registry).decode(frame[:cut])

    def test_no_codec_on_receiver_raises(self, registry):
        frame, entry = self._frame(registry)
        receiver = TypeRegistry()

        class Unrelated:
            def __init__(self, payload):
                self.payload = payload

        receiver.register(Unrelated, name=entry.name)
        with pytest.raises(SerializationError, match="does not match a codec"):
            Decoder(receiver).decode(frame)


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
class TestSerialStats:
    def test_encoder_and_decoder_count_fast_frames(self, registry):
        class Counted:
            def __init__(self, n: int):
                self.n = n

        registry.register(Counted)
        stats = SerialPathStats()
        encoder = Encoder(registry, compiled=True, stats=stats)
        decoder = Decoder(registry, stats=stats)
        decoder.decode(encoder.encode([Counted(1), Counted(2)]))
        assert stats.frames_encoded == 1
        assert stats.frames_decoded == 1
        assert stats.encodes_fast == 2
        assert stats.decodes_fast == 2
        assert stats.encodes_reflective == 0
        assert stats.encode_ns >= 0 and stats.decode_ns >= 0

    def test_fallbacks_counted_as_reflective(self, registry):
        class Mixed:
            def __init__(self, n: int):
                self.n = n

        class Opaque:
            def __init__(self, thing):
                self.thing = thing

        registry.register(Mixed)
        registry.register(Opaque)
        stats = SerialPathStats()
        encoder = Encoder(registry, compiled=True, stats=stats)
        encoder.encode([Mixed(1), Opaque("x")])
        assert stats.encodes_fast == 1
        assert stats.encodes_reflective == 1

    def test_reflective_encoder_counts_nothing_fast(self, registry):
        class Plain:
            def __init__(self, n: int):
                self.n = n

        registry.register(Plain)
        stats = SerialPathStats()
        Encoder(registry, stats=stats).encode(Plain(1))
        assert stats.encodes_fast == 0
        assert stats.frames_encoded == 1
