"""Tests for the lazily-armed recursion guard in the serializer."""

import sys

import repro.serial.encoder as encoder_module
from repro.serial.decoder import Decoder
from repro.serial.encoder import _LAZY_GUARD_DEPTH, Encoder


def _nested_list(depth: int) -> object:
    value: object = "leaf"
    for _ in range(depth):
        value = [value]
    return value


class TestLazyArming:
    def test_shallow_encode_never_walks_the_stack(self, monkeypatch):
        calls = []
        real = encoder_module._stack_depth
        monkeypatch.setattr(
            encoder_module, "_stack_depth", lambda: calls.append(1) or real()
        )
        Encoder().encode({"a": [1, 2, 3], "b": ("x", {"y"}), "c": b"bytes"})
        assert calls == []

    def test_shallow_decode_never_walks_the_stack(self, monkeypatch):
        frame = Encoder().encode([1, [2, [3]]])
        calls = []
        real = encoder_module._stack_depth
        monkeypatch.setattr(
            encoder_module, "_stack_depth", lambda: calls.append(1) or real()
        )
        assert Decoder().decode(frame) == [1, [2, [3]]]
        assert calls == []

    def test_deep_encode_arms_exactly_once(self, monkeypatch):
        calls = []
        real = encoder_module._stack_depth
        monkeypatch.setattr(
            encoder_module, "_stack_depth", lambda: calls.append(1) or real()
        )
        Encoder().encode(_nested_list(_LAZY_GUARD_DEPTH * 4))
        assert len(calls) == 1

    def test_deep_graph_still_roundtrips(self):
        depth = 3000  # far past any default interpreter recursion limit
        value = _nested_list(depth)
        decoded = Encoder().encode(value)
        result = Decoder().decode(decoded)
        for _ in range(depth):
            assert isinstance(result, list) and len(result) == 1
            result = result[0]
        assert result == "leaf"

    def test_recursion_limit_restored_after_deep_encode(self):
        before = sys.getrecursionlimit()
        Encoder().encode(_nested_list(3000))
        assert sys.getrecursionlimit() == before
