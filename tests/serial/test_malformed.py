"""Decoder robustness against malformed frames."""

import pytest

from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.util.errors import SerializationError


@pytest.fixture
def registry():
    return TypeRegistry()


def test_truncated_frame(registry):
    data = Encoder(registry).encode("hello world")
    with pytest.raises(SerializationError, match="truncated"):
        Decoder(registry).decode(data[:-3])


def test_trailing_garbage(registry):
    data = Encoder(registry).encode(42)
    with pytest.raises(SerializationError, match="trailing"):
        Decoder(registry).decode(data + b"\x00")


def test_unknown_tag(registry):
    with pytest.raises(SerializationError, match="unknown wire tag"):
        Decoder(registry).decode(b"\xee")


def test_empty_frame(registry):
    with pytest.raises(SerializationError):
        Decoder(registry).decode(b"")


def test_dangling_backreference(registry):
    from repro.serial import tags

    frame = bytes([tags.REF]) + (99).to_bytes(4, "big")
    with pytest.raises(SerializationError, match="dangling"):
        Decoder(registry).decode(frame)


def test_unknown_object_type_name(registry):
    sender = TypeRegistry()

    class OnlyHere:
        pass

    sender.register(OnlyHere, name="sender.OnlyHere")
    data = Encoder(sender).encode(OnlyHere())
    with pytest.raises(SerializationError, match="sender.OnlyHere"):
        Decoder(registry).decode(data)


def test_depth_limit_enforced(registry):
    nested = current = []
    for _ in range(20):
        nxt: list = []
        current.append(nxt)
        current = nxt
    encoder = Encoder(registry, max_depth=10)
    with pytest.raises(SerializationError, match="depth"):
        encoder.encode(nested)


def test_oversized_int_rejected(registry):
    with pytest.raises(SerializationError, match="too large"):
        Encoder(registry).encode(1 << 3000)


def test_corrupt_length_prefix(registry):
    from repro.serial import tags

    # STR claiming 2^31 bytes with nothing behind it.
    frame = bytes([tags.STR]) + (2**31).to_bytes(4, "big")
    with pytest.raises(SerializationError):
        Decoder(registry).decode(frame)
