"""Property-based tests for the serializer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.measure import encoded_size
from repro.serial.registry import TypeRegistry

_registry = TypeRegistry()
_encoder = Encoder(_registry)
_decoder = Decoder(_registry)

# JSON-ish values: everything the wire format supports natively, nested.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**256), max_value=2**256),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)

hashables = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.text(max_size=20),
    st.binary(max_size=20),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(hashables, children, max_size=6),
        st.sets(hashables, max_size=6),
        st.frozensets(hashables, max_size=6),
        st.tuples(children, children),
    ),
    max_leaves=25,
)


@given(values)
@settings(max_examples=300, deadline=None)
def test_roundtrip_identity(value):
    assert _decoder.decode(_encoder.encode(value)) == value


@given(values)
@settings(max_examples=150, deadline=None)
def test_encoding_is_deterministic(value):
    assert _encoder.encode(value) == _encoder.encode(value)


@given(values)
@settings(max_examples=150, deadline=None)
def test_encoded_size_matches_frame_length(value):
    assert encoded_size(value, _registry) == len(_encoder.encode(value))


@given(values)
@settings(max_examples=100, deadline=None)
def test_type_preservation(value):
    result = _decoder.decode(_encoder.encode(value))
    assert type(result) is type(value)


@given(st.lists(st.integers(), min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_aliased_sublists_stay_aliased(items):
    result = _decoder.decode(_encoder.encode([items, items, {"again": items}]))
    assert result[0] is result[1]
    assert result[0] is result[2]["again"]


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_decoder_never_crashes_on_noise(noise):
    """Arbitrary bytes must either decode or raise SerializationError —
    never segfault, hang, or raise something unexpected."""
    from repro.util.errors import SerializationError

    try:
        _decoder.decode(noise)
    except SerializationError:
        pass
