"""Tests for swizzle hooks."""

import pytest

from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.serial.swizzle import SwizzleDescriptor
from repro.util.errors import SerializationError


class Secret:
    """A type the encoder will swizzle away instead of serializing."""

    def __init__(self, token: str):
        self.token = token


class TokenSwizzler:
    """Encodes Secret values as descriptors carrying only the token."""

    def swizzle(self, value):
        if isinstance(value, Secret):
            return SwizzleDescriptor("secret", value.token)
        return None

    def unswizzle(self, descriptor):
        raise AssertionError("encoder-side hook should not decode")


class TokenUnswizzler:
    def __init__(self):
        self.seen: list[SwizzleDescriptor] = []

    def swizzle(self, value):
        raise AssertionError("decoder-side hook should not encode")

    def unswizzle(self, descriptor):
        self.seen.append(descriptor)
        return Secret(descriptor.data + ":rebuilt")


def test_swizzled_value_travels_as_descriptor():
    registry = TypeRegistry()
    unswizzler = TokenUnswizzler()
    encoder = Encoder(registry, TokenSwizzler())
    decoder = Decoder(registry, unswizzler)

    data = encoder.encode({"cred": Secret("abc")})
    result = decoder.decode(data)
    assert isinstance(result["cred"], Secret)
    assert result["cred"].token == "abc:rebuilt"
    assert unswizzler.seen[0].kind == "secret"


def test_swizzled_aliases_materialize_once():
    registry = TypeRegistry()
    unswizzler = TokenUnswizzler()
    encoder = Encoder(registry, TokenSwizzler())
    decoder = Decoder(registry, unswizzler)

    secret = Secret("shared")
    result = decoder.decode(encoder.encode([secret, secret]))
    assert result[0] is result[1]
    assert len(unswizzler.seen) == 1


def test_unswizzled_descriptor_decodes_as_itself_by_default():
    registry = TypeRegistry()
    encoder = Encoder(registry, TokenSwizzler())
    decoder = Decoder(registry)  # NullSwizzler: returns the descriptor
    result = decoder.decode(encoder.encode(Secret("x")))
    assert isinstance(result, SwizzleDescriptor)
    assert (result.kind, result.data) == ("secret", "x")


def test_unregistered_type_without_swizzler_fails():
    registry = TypeRegistry()
    encoder = Encoder(registry)
    with pytest.raises(SerializationError):
        encoder.encode(Secret("x"))


def test_swizzler_can_pass_structured_data():
    registry = TypeRegistry()

    class StructSwizzler(TokenSwizzler):
        def swizzle(self, value):
            if isinstance(value, Secret):
                return SwizzleDescriptor("secret", {"token": value.token, "n": 3})
            return None

    decoder = Decoder(registry)
    result = decoder.decode(Encoder(registry, StructSwizzler()).encode(Secret("t")))
    assert result.data == {"token": "t", "n": 3}
