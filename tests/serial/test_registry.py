"""Tests for the wire-type registry."""

import pytest

from repro.serial.registry import TypeRegistry
from repro.util.errors import SerializationError


class Sample:
    def __init__(self, value=0):
        self.value = value


class Other:
    pass


class TestRegister:
    def test_default_wire_name(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        assert entry.name.endswith("Sample")
        assert "test_registry" in entry.name

    def test_custom_wire_name(self):
        registry = TypeRegistry()
        entry = registry.register(Sample, name="my.Sample")
        assert registry.lookup_name("my.Sample") is entry

    def test_reregistration_is_idempotent(self):
        registry = TypeRegistry()
        first = registry.register(Sample)
        second = registry.register(Sample)
        assert first is second

    def test_name_collision_rejected(self):
        registry = TypeRegistry()
        registry.register(Sample, name="x")
        with pytest.raises(SerializationError):
            registry.register(Other, name="x")

    def test_lookup_unregistered_class_fails_with_hint(self):
        registry = TypeRegistry()
        with pytest.raises(SerializationError, match="not registered"):
            registry.lookup_class(Sample)

    def test_lookup_unknown_name_fails(self):
        registry = TypeRegistry()
        with pytest.raises(SerializationError, match="unknown wire type"):
            registry.lookup_name("ghost")

    def test_is_registered(self):
        registry = TypeRegistry()
        assert not registry.is_registered(Sample)
        registry.register(Sample)
        assert registry.is_registered(Sample)


class TestStateHandling:
    def test_default_state_is_vars(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        assert entry.get_state(Sample(value=7)) == {"value": 7}

    def test_getstate_setstate_honoured(self):
        class WithHooks:
            def __init__(self):
                self.a, self.b = 1, 2

            def __getstate__(self):
                return (self.a, self.b)

            def __setstate__(self, state):
                self.a, self.b = state

        registry = TypeRegistry()
        entry = registry.register(WithHooks)
        instance = WithHooks()
        state = entry.get_state(instance)
        assert state == (1, 2)
        rebuilt = entry.factory()
        entry.set_state(rebuilt, state)
        assert (rebuilt.a, rebuilt.b) == (1, 2)

    def test_factory_skips_init(self):
        inits = []

        class Tracked:
            def __init__(self):
                inits.append(1)

        registry = TypeRegistry()
        entry = registry.register(Tracked)
        entry.factory()
        assert inits == []

    def test_custom_hooks(self):
        registry = TypeRegistry()
        entry = registry.register(
            Sample,
            name="tuple.Sample",
            get_state=lambda obj: obj.value,
            set_state=lambda obj, state: setattr(obj, "value", state),
        )
        instance = Sample(9)
        assert entry.get_state(instance) == 9

    def test_bad_default_state_type_rejected(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        target = entry.factory()
        with pytest.raises(SerializationError):
            entry.set_state(target, "not-a-dict")


class TestChild:
    def test_child_inherits_entries(self):
        parent = TypeRegistry()
        parent.register(Sample)
        child = parent.child()
        assert child.is_registered(Sample)

    def test_child_additions_do_not_leak_up(self):
        parent = TypeRegistry()
        child = parent.child()
        child.register(Sample)
        assert not parent.is_registered(Sample)
