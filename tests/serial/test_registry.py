"""Tests for the wire-type registry."""

import pytest

from repro.serial.registry import TypeRegistry
from repro.util.errors import SerializationError


class Sample:
    def __init__(self, value=0):
        self.value = value


class Other:
    pass


class TestRegister:
    def test_default_wire_name(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        assert entry.name.endswith("Sample")
        assert "test_registry" in entry.name

    def test_custom_wire_name(self):
        registry = TypeRegistry()
        entry = registry.register(Sample, name="my.Sample")
        assert registry.lookup_name("my.Sample") is entry

    def test_reregistration_is_idempotent(self):
        registry = TypeRegistry()
        first = registry.register(Sample)
        second = registry.register(Sample)
        assert first is second

    def test_name_collision_rejected(self):
        registry = TypeRegistry()
        registry.register(Sample, name="x")
        with pytest.raises(SerializationError):
            registry.register(Other, name="x")

    def test_lookup_unregistered_class_fails_with_hint(self):
        registry = TypeRegistry()
        with pytest.raises(SerializationError, match="not registered"):
            registry.lookup_class(Sample)

    def test_lookup_unknown_name_fails(self):
        registry = TypeRegistry()
        with pytest.raises(SerializationError, match="unknown wire type"):
            registry.lookup_name("ghost")

    def test_is_registered(self):
        registry = TypeRegistry()
        assert not registry.is_registered(Sample)
        registry.register(Sample)
        assert registry.is_registered(Sample)


class TestStateHandling:
    def test_default_state_is_vars(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        assert entry.get_state(Sample(value=7)) == {"value": 7}

    def test_getstate_setstate_honoured(self):
        class WithHooks:
            def __init__(self):
                self.a, self.b = 1, 2

            def __getstate__(self):
                return (self.a, self.b)

            def __setstate__(self, state):
                self.a, self.b = state

        registry = TypeRegistry()
        entry = registry.register(WithHooks)
        instance = WithHooks()
        state = entry.get_state(instance)
        assert state == (1, 2)
        rebuilt = entry.factory()
        entry.set_state(rebuilt, state)
        assert (rebuilt.a, rebuilt.b) == (1, 2)

    def test_factory_skips_init(self):
        inits = []

        class Tracked:
            def __init__(self):
                inits.append(1)

        registry = TypeRegistry()
        entry = registry.register(Tracked)
        entry.factory()
        assert inits == []

    def test_custom_hooks(self):
        registry = TypeRegistry()
        entry = registry.register(
            Sample,
            name="tuple.Sample",
            get_state=lambda obj: obj.value,
            set_state=lambda obj, state: setattr(obj, "value", state),
        )
        instance = Sample(9)
        assert entry.get_state(instance) == 9

    def test_bad_default_state_type_rejected(self):
        registry = TypeRegistry()
        entry = registry.register(Sample)
        target = entry.factory()
        with pytest.raises(SerializationError):
            entry.set_state(target, "not-a-dict")


class TestStateGetterEdgeCases:
    """Wire-level coverage for the default state hooks on awkward classes."""

    def _wire(self, registry):
        from repro.serial.decoder import Decoder
        from repro.serial.encoder import Encoder

        return Encoder(registry), Decoder(registry)

    def test_getstate_setstate_class_roundtrips_over_wire(self):
        class Hooked:
            def __init__(self, a=0, b=0):
                self.a, self.b = a, b
                self.cache = object()  # deliberately unserializable

            def __getstate__(self):
                return (self.a, self.b)

            def __setstate__(self, state):
                self.a, self.b = state
                self.cache = None

        registry = TypeRegistry()
        registry.register(Hooked)
        encoder, decoder = self._wire(registry)
        result = decoder.decode(encoder.encode(Hooked(3, 4)))
        assert (result.a, result.b) == (3, 4)
        assert result.cache is None  # __setstate__ ran, not vars().update

    def test_getstate_class_gets_no_compiled_codec(self):
        from repro.serial.compiled import codec_for

        class Hooked:
            def __init__(self, a: int = 0):
                self.a = a

            def __getstate__(self):
                return (self.a,)

            def __setstate__(self, state):
                (self.a,) = state

        registry = TypeRegistry()
        registry.register(Hooked)
        assert codec_for(Hooked) is None

    def test_slots_class_needs_explicit_hooks(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self, x=0, y=0):
                self.x, self.y = x, y

        registry = TypeRegistry()
        entry = registry.register(Slotted)
        # The default getter is vars()-based: a __dict__-less instance
        # cannot use it.  (obicomp rejects __slots__ outright; direct
        # registrations must supply hooks.)
        with pytest.raises(TypeError):
            entry.get_state(Slotted(1, 2))

    def test_slots_class_roundtrips_with_explicit_hooks(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self, x=0, y=0):
                self.x, self.y = x, y

        registry = TypeRegistry()
        registry.register(
            Slotted,
            get_state=lambda o: (o.x, o.y),
            set_state=lambda o, s: (setattr(o, "x", s[0]), setattr(o, "y", s[1])),
        )
        encoder, decoder = self._wire(registry)
        result = decoder.decode(encoder.encode(Slotted(5, 6)))
        assert (result.x, result.y) == (5, 6)

    def test_memo_survives_id_reuse_under_gc_pressure(self):
        """``__getstate__`` may return a *fresh* temporary every call.  If
        the encoder's memo did not keep memoized values alive, a freed
        temporary could donate its ``id()`` to a later object and turn a
        distinct value into a bogus back-reference."""

        class Churner:
            def __init__(self, n=0):
                self.n = n

            def __getstate__(self):
                # A fresh list each call: without a keepalive this dies as
                # soon as the encoder finishes writing it.
                return [self.n, "pad" * self.n]

            def __setstate__(self, state):
                self.n = state[0]

        registry = TypeRegistry()
        registry.register(Churner)
        encoder, decoder = self._wire(registry)
        originals = [Churner(n) for n in range(64)]
        result = decoder.decode(encoder.encode(originals))
        assert [item.n for item in result] == list(range(64))
        assert len({id(item) for item in result}) == 64


class TestChild:
    def test_child_inherits_entries(self):
        parent = TypeRegistry()
        parent.register(Sample)
        child = parent.child()
        assert child.is_registered(Sample)

    def test_child_additions_do_not_leak_up(self):
        parent = TypeRegistry()
        child = parent.child()
        child.register(Sample)
        assert not parent.is_registered(Sample)
