"""Encode/decode roundtrip tests."""

import pytest

from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.util.errors import SerializationError


@pytest.fixture
def codec():
    registry = TypeRegistry()
    return Encoder(registry), Decoder(registry), registry


def roundtrip(codec, value):
    encoder, decoder, _registry = codec
    return decoder.decode(encoder.encode(value))


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            -256,
            2**63,
            -(2**63) - 1,
            2**200,
            0.0,
            -0.5,
            3.141592653589793,
            float("inf"),
            "",
            "hello",
            "unicode: héllo ✓ 日本語",
            b"",
            b"\x00\xff\x01",
        ],
    )
    def test_value_roundtrips(self, codec, value):
        assert roundtrip(codec, value) == value

    def test_nan_roundtrips(self, codec):
        result = roundtrip(codec, float("nan"))
        assert result != result  # NaN

    def test_bool_stays_bool(self, codec):
        assert roundtrip(codec, True) is True
        assert roundtrip(codec, 1) == 1 and roundtrip(codec, 1) is not True

    def test_bytearray_roundtrips_as_bytearray(self, codec):
        result = roundtrip(codec, bytearray(b"ab"))
        assert result == bytearray(b"ab")
        assert type(result) is bytearray

    def test_bytearray_is_mutable_after_decode(self, codec):
        result = roundtrip(codec, {"buf": bytearray(b"\x00\x01")})
        result["buf"][0] = 0xFF
        assert result["buf"] == bytearray(b"\xff\x01")

    def test_bytearray_alias_preserved(self, codec):
        shared = bytearray(b"shared")
        result = roundtrip(codec, [shared, shared])
        assert result[0] is result[1]
        assert type(result[0]) is bytearray

    def test_bytearray_distinct_from_bytes(self, codec):
        result = roundtrip(codec, [b"ab", bytearray(b"ab")])
        assert type(result[0]) is bytes
        assert type(result[1]) is bytearray


class TestContainers:
    @pytest.mark.parametrize(
        "value",
        [
            [],
            [1, 2, 3],
            (1, "two", 3.0),
            {"a": 1, "b": [2, 3]},
            {1, 2, 3},
            frozenset({"x", "y"}),
            [{"nested": ({"deep": [1]},)}],
            {(1, 2): "tuple-key"},
        ],
    )
    def test_container_roundtrips(self, codec, value):
        result = roundtrip(codec, value)
        assert result == value
        assert type(result) is type(value)

    def test_shared_list_alias_preserved(self, codec):
        shared = [1, 2]
        value = {"first": shared, "second": shared}
        result = roundtrip(codec, value)
        assert result["first"] is result["second"]

    def test_shared_set_alias_preserved(self, codec):
        shared = {1}
        result = roundtrip(codec, [shared, shared])
        assert result[0] is result[1]

    def test_self_referential_list(self, codec):
        value: list = [1]
        value.append(value)
        result = roundtrip(codec, value)
        assert result[0] == 1
        assert result[1] is result

    def test_cycle_through_dict(self, codec):
        value: dict = {}
        value["me"] = value
        result = roundtrip(codec, value)
        assert result["me"] is result

    def test_distinct_equal_objects_stay_distinct(self, codec):
        value = [[1], [1]]
        result = roundtrip(codec, value)
        assert result[0] == result[1]
        assert result[0] is not result[1]


class TestObjects:
    def test_object_state_roundtrips(self, codec):
        encoder, decoder, registry = codec

        class Point:
            def __init__(self, x=0, y=0):
                self.x, self.y = x, y

        registry.register(Point)
        result = decoder.decode(encoder.encode(Point(3, 4)))
        assert (result.x, result.y) == (3, 4)
        assert type(result) is Point

    def test_object_cycle(self, codec):
        encoder, decoder, registry = codec

        class Node:
            pass

        registry.register(Node)
        a, b = Node(), Node()
        a.peer, b.peer = b, a
        result = decoder.decode(encoder.encode(a))
        assert result.peer.peer is result

    def test_object_aliasing(self, codec):
        encoder, decoder, registry = codec

        class Leaf:
            pass

        registry.register(Leaf)
        leaf = Leaf()
        result = decoder.decode(encoder.encode([leaf, leaf]))
        assert result[0] is result[1]

    def test_constructor_not_called_on_decode(self, codec):
        encoder, decoder, registry = codec
        calls = []

        class Logged:
            def __init__(self):
                calls.append(1)
                self.ok = True

        registry.register(Logged)
        data = encoder.encode(Logged())
        calls.clear()
        result = decoder.decode(data)
        assert calls == []
        assert result.ok


class TestDeterminism:
    def test_same_value_same_bytes(self, codec):
        encoder, _decoder, _registry = codec
        value = {"k": [1, 2, {"x": (3, 4)}], "s": {3, 1, 2}}
        assert encoder.encode(value) == encoder.encode(value)

    def test_set_order_does_not_matter(self, codec):
        encoder, _decoder, _registry = codec
        assert encoder.encode({1, 2, 3}) == encoder.encode({3, 1, 2})

    def test_mixed_type_set_same_bytes_across_encoders(self, codec):
        _encoder, _decoder, registry = codec
        value = {1, "one", 2.0, (3,)}
        assert Encoder(registry).encode(value) == Encoder(registry).encode(value)

    def test_object_set_independent_of_identity(self, codec):
        """The uncomparable-set fallback keys on wire bytes, not ``repr``:
        a default repr embeds ``id()``, which differs across processes.
        Two structurally equal sets built from *different* instances must
        encode to the same bytes."""
        _encoder, _decoder, registry = codec

        class Item:
            def __init__(self, n=0):
                self.n = n

        registry.register(Item)
        first = {Item(1), Item(2), "tiebreak"}
        second = {Item(2), Item(1), "tiebreak"}
        frames = {Encoder(registry).encode(first), Encoder(registry).encode(second)}
        assert len(frames) == 1

    def test_object_set_roundtrips_after_canonicalization(self, codec):
        encoder, decoder, registry = codec

        class Tag:
            def __init__(self, name=""):
                self.name = name

        registry.register(Tag)
        result = decoder.decode(encoder.encode({Tag("a"), Tag("b"), 3}))
        assert {getattr(item, "name", item) for item in result} == {"a", "b", 3}

    def test_unserializable_set_element_still_fails(self, codec):
        encoder, _decoder, _registry = codec

        class Rogue:
            pass

        with pytest.raises(SerializationError):
            encoder.encode({Rogue(), 1})

    def test_deep_list_roundtrips(self, codec):
        value = current = []
        for _ in range(2000):
            nxt: list = []
            current.append(nxt)
            current = nxt
        result = roundtrip(codec, value)
        depth = 0
        while result:
            result = result[0]
            depth += 1
        assert depth == 2000
