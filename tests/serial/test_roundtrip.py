"""Encode/decode roundtrip tests."""

import pytest

from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry


@pytest.fixture
def codec():
    registry = TypeRegistry()
    return Encoder(registry), Decoder(registry), registry


def roundtrip(codec, value):
    encoder, decoder, _registry = codec
    return decoder.decode(encoder.encode(value))


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            -256,
            2**63,
            -(2**63) - 1,
            2**200,
            0.0,
            -0.5,
            3.141592653589793,
            float("inf"),
            "",
            "hello",
            "unicode: héllo ✓ 日本語",
            b"",
            b"\x00\xff\x01",
        ],
    )
    def test_value_roundtrips(self, codec, value):
        assert roundtrip(codec, value) == value

    def test_nan_roundtrips(self, codec):
        result = roundtrip(codec, float("nan"))
        assert result != result  # NaN

    def test_bool_stays_bool(self, codec):
        assert roundtrip(codec, True) is True
        assert roundtrip(codec, 1) == 1 and roundtrip(codec, 1) is not True

    def test_bytearray_decodes_as_bytes(self, codec):
        assert roundtrip(codec, bytearray(b"ab")) == b"ab"


class TestContainers:
    @pytest.mark.parametrize(
        "value",
        [
            [],
            [1, 2, 3],
            (1, "two", 3.0),
            {"a": 1, "b": [2, 3]},
            {1, 2, 3},
            frozenset({"x", "y"}),
            [{"nested": ({"deep": [1]},)}],
            {(1, 2): "tuple-key"},
        ],
    )
    def test_container_roundtrips(self, codec, value):
        result = roundtrip(codec, value)
        assert result == value
        assert type(result) is type(value)

    def test_shared_list_alias_preserved(self, codec):
        shared = [1, 2]
        value = {"first": shared, "second": shared}
        result = roundtrip(codec, value)
        assert result["first"] is result["second"]

    def test_shared_set_alias_preserved(self, codec):
        shared = {1}
        result = roundtrip(codec, [shared, shared])
        assert result[0] is result[1]

    def test_self_referential_list(self, codec):
        value: list = [1]
        value.append(value)
        result = roundtrip(codec, value)
        assert result[0] == 1
        assert result[1] is result

    def test_cycle_through_dict(self, codec):
        value: dict = {}
        value["me"] = value
        result = roundtrip(codec, value)
        assert result["me"] is result

    def test_distinct_equal_objects_stay_distinct(self, codec):
        value = [[1], [1]]
        result = roundtrip(codec, value)
        assert result[0] == result[1]
        assert result[0] is not result[1]


class TestObjects:
    def test_object_state_roundtrips(self, codec):
        encoder, decoder, registry = codec

        class Point:
            def __init__(self, x=0, y=0):
                self.x, self.y = x, y

        registry.register(Point)
        result = decoder.decode(encoder.encode(Point(3, 4)))
        assert (result.x, result.y) == (3, 4)
        assert type(result) is Point

    def test_object_cycle(self, codec):
        encoder, decoder, registry = codec

        class Node:
            pass

        registry.register(Node)
        a, b = Node(), Node()
        a.peer, b.peer = b, a
        result = decoder.decode(encoder.encode(a))
        assert result.peer.peer is result

    def test_object_aliasing(self, codec):
        encoder, decoder, registry = codec

        class Leaf:
            pass

        registry.register(Leaf)
        leaf = Leaf()
        result = decoder.decode(encoder.encode([leaf, leaf]))
        assert result[0] is result[1]

    def test_constructor_not_called_on_decode(self, codec):
        encoder, decoder, registry = codec
        calls = []

        class Logged:
            def __init__(self):
                calls.append(1)
                self.ok = True

        registry.register(Logged)
        data = encoder.encode(Logged())
        calls.clear()
        result = decoder.decode(data)
        assert calls == []
        assert result.ok


class TestDeterminism:
    def test_same_value_same_bytes(self, codec):
        encoder, _decoder, _registry = codec
        value = {"k": [1, 2, {"x": (3, 4)}], "s": {3, 1, 2}}
        assert encoder.encode(value) == encoder.encode(value)

    def test_set_order_does_not_matter(self, codec):
        encoder, _decoder, _registry = codec
        assert encoder.encode({1, 2, 3}) == encoder.encode({3, 1, 2})

    def test_deep_list_roundtrips(self, codec):
        value = current = []
        for _ in range(2000):
            nxt: list = []
            current.append(nxt)
            current = nxt
        result = roundtrip(codec, value)
        depth = 0
        while result:
            result = result[0]
            depth += 1
        assert depth == 2000
