"""Tests for the MobileNode facade."""

from repro.mobility.node import MobileNode
from repro.mobility.reconcile import ReconcileAction
from tests.models import chain_indices


def test_hoard_tracks_baseline(mobile):
    _w, _office, node, _master = mobile
    replica = node.hoard("counter")
    assert not node.reconciler.is_dirty(replica)
    replica.increment()
    assert node.reconciler.is_dirty(replica)


def test_go_online_reconciles_by_default(mobile):
    _w, _office, node, master = mobile
    replica = node.hoard("counter")
    node.go_offline()
    replica.increment(2)
    report = node.go_online()
    assert report.count(ReconcileAction.PUSHED) == 1
    assert master.value == 2


def test_go_online_can_skip_reconcile(mobile):
    _w, _office, node, master = mobile
    replica = node.hoard("counter")
    node.go_offline()
    replica.increment(2)
    assert node.go_online(reconcile=False) is None
    assert master.value == 0


def test_prefetch_via_node(mobile):
    from repro.core.interfaces import Incremental

    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain", mode=Incremental(2))
    assert node.prefetch(chain) >= 1
    node.go_offline()
    assert chain_indices(chain) == list(range(5))


def test_is_online_property(mobile):
    _w, _office, node, _master = mobile
    assert node.is_online
    node.go_offline()
    assert not node.is_online


def test_repr_summarizes(mobile):
    _w, _office, node, _master = mobile
    node.hoard("counter")
    text = repr(node)
    assert "pda" in text and "hoarded=1" in text
    node.go_offline()
    assert "offline" in repr(node)
