"""Tests for relaxed mobile transactions."""

import pytest

from repro.mobility.transactions import MobileTransaction, TxState
from repro.util.errors import ReplicationError, TransactionAborted
from tests.models import Counter


@pytest.fixture
def tx_setup(mobile):
    world, office, node, master = mobile
    replica = node.hoard("counter")
    return world, office, node, master, replica


class TestCommit:
    def test_clean_commit_pushes_writes(self, tx_setup):
        _w, _office, node, master, replica = tx_setup
        tx = node.transaction()
        tx.write(replica, "increment", 5)
        versions = tx.commit()
        assert master.value == 5
        assert tx.state is TxState.COMMITTED
        assert len(versions) == 1

    def test_read_only_transaction_commits_without_puts(self, tx_setup):
        world, _office, node, _master, replica = tx_setup
        tx = node.transaction()
        assert tx.read(replica, "read") == 0
        before = world.network.stats.total_bytes
        versions = tx.commit()
        assert versions == {}
        # Validation costs one small get_version call, not a put.
        assert world.network.stats.total_bytes - before < 600

    def test_offline_work_commits_after_reconnect(self, tx_setup):
        _w, _office, node, master, replica = tx_setup
        node.go_offline()
        tx = node.transaction()
        tx.write(replica, "increment", 7)  # all local
        node.go_online(reconcile=False)
        tx.commit()
        assert master.value == 7

    def test_concurrent_committer_aborts_and_rolls_back(self, tx_setup):
        world, _office, node, master, replica = tx_setup
        tx = node.transaction()
        tx.write(replica, "increment", 100)

        other_site = world.create_site("other")
        other = other_site.replicate("counter")
        other.increment(1)
        other_site.put_back(other)  # bumps the master version

        with pytest.raises(TransactionAborted) as info:
            tx.commit()
        assert tx.state is TxState.ABORTED
        assert len(info.value.conflicts) == 1
        assert replica.read() == 0  # rolled back
        assert master.value == 1  # the other writer's value survives

    def test_commit_twice_rejected(self, tx_setup):
        _w, _office, node, _master, replica = tx_setup
        tx = node.transaction()
        tx.write(replica, "increment")
        tx.commit()
        with pytest.raises(TransactionAborted):
            tx.commit()


class TestRollback:
    def test_rollback_restores_first_touch_state(self, tx_setup):
        _w, _office, node, _master, replica = tx_setup
        replica.increment(3)  # pre-transaction state: 3
        tx = node.transaction()
        tx.write(replica, "increment", 10)
        tx.write(replica, "increment", 10)
        tx.rollback()
        assert replica.read() == 3
        assert tx.state is TxState.ABORTED

    def test_operations_after_rollback_rejected(self, tx_setup):
        _w, _office, node, _master, replica = tx_setup
        tx = node.transaction()
        tx.rollback()
        with pytest.raises(TransactionAborted):
            tx.write(replica, "increment")


class TestContextManager:
    def test_clean_exit_commits(self, tx_setup):
        _w, _office, node, master, replica = tx_setup
        with node.transaction() as tx:
            tx.write(replica, "increment", 2)
        assert master.value == 2

    def test_exception_rolls_back_and_propagates(self, tx_setup):
        _w, _office, node, master, replica = tx_setup
        with pytest.raises(ValueError):
            with node.transaction() as tx:
                tx.write(replica, "increment", 9)
                raise ValueError("application bug")
        assert replica.read() == 0
        assert master.value == 0


class TestGuards:
    def test_non_replica_rejected(self, tx_setup):
        _w, _office, node, _master, _replica = tx_setup
        tx = node.transaction()
        with pytest.raises(ReplicationError):
            tx.write(Counter(), "increment")

    def test_touched_count(self, tx_setup):
        _w, _office, node, _master, replica = tx_setup
        tx = node.transaction()
        tx.read(replica, "read")
        tx.write(replica, "increment")
        assert tx.touched_count == 1
        tx.commit()
