"""Mobility-suite fixtures: an office master and a mobile node."""

import pytest

from repro.core.costs import CostModel
from repro.core.runtime import World
from repro.mobility.node import MobileNode
from tests.models import Counter, Folder, make_chain


@pytest.fixture
def mobile():
    """(world, office_site, mobile_node, master_counter).

    The office exports a Counter as 'counter' and a 5-node chain as
    'chain'.
    """
    with World.loopback(costs=CostModel.zero()) as world:
        office = world.create_site("office")
        pda_site = world.create_site("pda")
        master = Counter(0)
        office.export(master, name="counter")
        office.export(make_chain(5), name="chain")
        node = MobileNode(pda_site)
        yield world, office, node, master
