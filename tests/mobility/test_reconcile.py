"""Tests for reconnection reconciliation."""

import pytest

from repro.mobility.reconcile import (
    ReconcileAction,
    Reconciler,
    keep_local,
    keep_master,
)
from repro.util.errors import ConsistencyError


@pytest.fixture
def tracked(mobile):
    world, office, node, master = mobile
    replica = node.hoard("counter")  # MobileNode tracks on hoard
    return world, office, node, master, replica


class TestClassification:
    def test_up_to_date(self, tracked):
        _w, _office, node, _master, _replica = tracked
        report = node.reconciler.reconcile()
        assert report.count(ReconcileAction.UP_TO_DATE) == 1

    def test_dirty_local_pushes(self, tracked):
        _w, _office, node, master, replica = tracked
        replica.increment(4)
        assert node.reconciler.is_dirty(replica)
        report = node.reconciler.reconcile()
        assert report.count(ReconcileAction.PUSHED) == 1
        assert master.value == 4
        assert not node.reconciler.is_dirty(replica)

    def test_master_moved_pulls(self, tracked):
        _w, office, node, master, replica = tracked
        master.value = 8
        office.touch(master)
        report = node.reconciler.reconcile()
        assert report.count(ReconcileAction.PULLED) == 1
        assert replica.read() == 8

    def test_both_changed_is_conflict(self, tracked):
        _w, office, node, master, replica = tracked
        replica.increment(1)
        master.value = 50
        office.touch(master)
        report = node.reconciler.reconcile()
        assert report.conflicts != []
        # Nothing was moved either way without a resolver.
        assert master.value == 50
        assert replica.read() == 1


class TestResolvers:
    def test_keep_local_overwrites_master(self, tracked):
        _w, office, node, master, replica = tracked
        replica.increment(1)
        master.value = 50
        office.touch(master)
        report = node.reconciler.reconcile(on_conflict=keep_local)
        assert report.count(ReconcileAction.PUSHED) == 1
        assert master.value == 1

    def test_keep_master_discards_local(self, tracked):
        _w, office, node, master, replica = tracked
        replica.increment(1)
        master.value = 50
        office.touch(master)
        report = node.reconciler.reconcile(on_conflict=keep_master)
        assert report.count(ReconcileAction.PULLED) == 1
        assert replica.read() == 50

    def test_custom_merge_resolver(self, tracked):
        _w, office, node, master, replica = tracked
        replica.increment(3)
        master.value = 10
        office.touch(master)

        def merge(site, rep):
            local = rep.read()
            site.refresh(rep)
            rep.value = rep.value + local
            site.put_back(rep)
            return ReconcileAction.PUSHED

        node.reconciler.reconcile(on_conflict=merge)
        assert master.value == 13


class TestBaselines:
    def test_untracked_replica_is_never_dirty(self, mobile):
        _w, _office, node, _master = mobile
        reconciler = Reconciler(node.site)
        replica = node.site.replicate("counter")
        replica.increment(9)
        # A second reconciler with no baseline for it:
        fresh = Reconciler(node.site)
        assert not fresh.is_dirty(replica)

    def test_refresh_resets_baseline(self, tracked):
        _w, office, node, master, replica = tracked
        master.value = 2
        office.touch(master)
        node.site.refresh(replica)
        assert not node.reconciler.is_dirty(replica)

    def test_report_repr_and_counts(self, tracked):
        _w, _office, node, _master, replica = tracked
        replica.increment()
        report = node.reconciler.reconcile()
        assert "pushed=1" in repr(report)


class TestEndToEndScenario:
    def test_full_offline_cycle(self, mobile):
        """hoard → disconnect → edit both sides → reconnect → resolve."""
        _w, office, node, master = mobile
        replica = node.hoard("counter")
        node.go_offline(voluntary=True)
        replica.increment(5)
        master.value = 100
        office.touch(master)
        report = node.go_online()
        assert report is not None
        assert report.conflicts != []
        final = node.reconciler.reconcile(on_conflict=keep_local)
        assert master.value == 5
