"""Tests for hoarding and prefetching."""

from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from tests.models import chain_indices


def test_hoard_defaults_to_transitive_closure(mobile):
    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain")
    assert node.hoard_store.is_complete("chain")
    node.go_offline()
    assert chain_indices(chain) == list(range(5))  # no faults offline


def test_partial_hoard_is_reported_incomplete(mobile):
    _w, _office, node, _master = mobile
    node.hoard_store.hoard("chain", mode=Incremental(2))
    assert not node.hoard_store.is_complete("chain")


def test_prefetch_completes_a_partial_graph(mobile):
    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain", mode=Incremental(2))
    resolved = node.hoard_store.prefetch(chain)
    assert resolved >= 1
    assert node.hoard_store.is_complete("chain")
    node.go_offline()
    assert chain_indices(chain) == list(range(5))


def test_prefetch_bounded_by_max_faults(mobile):
    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain", mode=Incremental(1))
    resolved = node.hoard_store.prefetch(chain, max_faults=1)
    assert resolved == 1
    assert not node.hoard_store.is_complete("chain")


def test_prefetch_on_complete_graph_is_zero(mobile):
    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain")
    assert node.hoard_store.prefetch(chain) == 0


def test_hoard_contents_management(mobile):
    _w, _office, node, _master = mobile
    replica = node.hoard_store.hoard("counter")
    assert "counter" in node.hoard_store
    assert node.hoard_store.get("counter") is replica
    assert node.hoard_store.names() == ["counter"]
    node.hoard_store.unpin("counter")
    assert len(node.hoard_store) == 0
    assert node.hoard_store.get("counter") is None
    assert not node.hoard_store.is_complete("counter")


def test_hoarded_graph_with_resolved_proxies_counts_complete(mobile):
    _w, _office, node, _master = mobile
    chain = node.hoard_store.hoard("chain", mode=Incremental(2))
    # Resolve the frontier by traversal rather than prefetch.
    assert chain_indices(chain) == list(range(5))
    assert node.hoard_store.is_complete("chain")
