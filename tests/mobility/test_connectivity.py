"""Tests for the connectivity manager."""

import pytest

from repro.mobility.connectivity import ConnectivityManager
from repro.util.errors import DisconnectedError


def test_initially_online(mobile):
    _w, _office, node, _master = mobile
    assert node.connectivity.is_online
    assert not node.connectivity.is_voluntary


def test_go_offline_blocks_traffic(mobile):
    _w, _office, node, _master = mobile
    node.connectivity.go_offline()
    with pytest.raises(DisconnectedError):
        node.site.replicate("counter")


def test_voluntary_flag_propagates_to_errors(mobile):
    _w, _office, node, _master = mobile
    node.connectivity.go_offline(voluntary=True)
    assert node.connectivity.is_voluntary
    with pytest.raises(DisconnectedError) as info:
        node.site.replicate("counter")
    assert info.value.voluntary is True


def test_go_online_restores(mobile):
    _w, _office, node, _master = mobile
    node.connectivity.go_offline()
    node.connectivity.go_online()
    assert node.site.replicate("counter").read() == 0


def test_offline_context_manager(mobile):
    _w, _office, node, _master = mobile
    with node.connectivity.offline():
        assert not node.connectivity.is_online
        assert node.connectivity.is_voluntary
    assert node.connectivity.is_online


def test_offline_context_restores_on_exception(mobile):
    _w, _office, node, _master = mobile
    with pytest.raises(RuntimeError):
        with node.connectivity.offline():
            raise RuntimeError("app failure while offline")
    assert node.connectivity.is_online


def test_events_published(mobile):
    _w, _office, node, _master = mobile
    transitions = []
    node.site.events.subscribe(
        "connectivity_changed",
        lambda **kw: transitions.append((kw["online"], kw["voluntary"])),
    )
    node.connectivity.go_offline(voluntary=True)
    node.connectivity.go_online()
    assert transitions == [(False, True), (True, False)]


def test_repr_reflects_state(mobile):
    _w, _office, node, _master = mobile
    manager: ConnectivityManager = node.connectivity
    assert "online" in repr(manager)
    manager.go_offline(voluntary=True)
    assert "voluntary" in repr(manager)
