"""Tests for fallback invocation."""

import pytest

from repro.mobility.offline import ServedBy
from repro.util.errors import ObjectFaultError


def test_online_calls_hit_the_master(mobile):
    _w, _office, node, master = mobile
    node.hoard("counter")
    master.value = 9
    result = node.call("counter", "read")
    assert result.value == 9
    assert result.served_by is ServedBy.MASTER
    assert not result.possibly_stale


def test_offline_falls_back_to_hoarded_replica(mobile):
    _w, _office, node, master = mobile
    replica = node.hoard("counter")
    replica.increment(3)
    node.go_offline(voluntary=True)
    result = node.call("counter", "read")
    assert result.value == 3
    assert result.served_by is ServedBy.REPLICA
    assert result.possibly_stale
    assert result.disconnection_voluntary is True


def test_offline_without_replica_raises_with_hint(mobile):
    _w, _office, node, _master = mobile
    node.go_offline()
    with pytest.raises(ObjectFaultError, match="hoard"):
        node.call("counter", "read")


def test_explicit_replica_argument_wins(mobile):
    _w, _office, node, _master = mobile
    replica = node.site.replicate("counter")  # not hoarded
    replica.increment(2)
    node.go_offline()
    result = node.invoker.call("counter", "read", replica=replica)
    assert result.value == 2


def test_fallback_found_via_cached_name_after_online_use(mobile):
    """A name used while online is correlatable to its replica offline,
    even without the hoard."""
    _w, _office, node, _master = mobile
    node.call("counter", "read")  # caches the name → ref mapping
    replica = node.site.replicate("counter")
    replica.increment(4)
    node.go_offline()
    result = node.invoker.call("counter", "read")
    assert result.value == 4
    assert result.served_by is ServedBy.REPLICA


def test_arguments_forwarded_on_both_paths(mobile):
    _w, _office, node, master = mobile
    node.hoard("counter")
    online = node.call("counter", "increment", 5)
    assert online.value == 5 and master.value == 5
    node.go_offline()
    offline = node.call("counter", "increment", 2)
    assert offline.value == 2  # replica was at 0: local copy
    assert master.value == 5  # master untouched while offline


def test_local_replica_of_helper(mobile):
    _w, _office, node, _master = mobile
    replica = node.hoard("counter")
    assert node.invoker.local_replica_of(replica) is replica
    from tests.models import Counter

    assert node.invoker.local_replica_of(Counter()) is None
