"""Tests for mobile agents."""

import pytest

from repro import obiwan
from repro.core.costs import CostModel
from repro.core.runtime import World
from repro.mobility.agent import AgentHost, launch_agent
from repro.util.errors import DisconnectedError, ReplicationError
from tests.models import Counter


@obiwan.compile
class CourierAgent:
    """Carries a reference to a remote object and reads it on arrival."""

    def __init__(self, cargo=None):
        self.cargo = cargo
        self.delivered_value = None

    def on_arrive(self, site):
        # The cargo reference travelled as a proxy descriptor; touching
        # it here faults against its provider.
        self.delivered_value = self.cargo.read()
        return self.delivered_value


@pytest.fixture
def agent_world():
    with World.loopback(costs=CostModel.zero()) as world:
        home = world.create_site("home")
        stops = []
        for index, name in enumerate(("alpha", "beta", "gamma")):
            site = world.create_site(name)
            AgentHost(site)
            counter = Counter(10 * (index + 1))
            ref = site.export(counter)
            stops.append((site, counter, ref))
        yield world, home, stops


class TestItineraries:
    def test_agent_visits_all_sites_and_returns(self, agent_world):
        world, home, stops = agent_world
        # Give every stop a uniformly named local object by exporting
        # under per-site names through each site's own export table.
        for site, counter, _ref in stops:
            site.export(counter, name=f"counter@{site.name}")

        @obiwan.compile
        class NamedSurveyAgent:
            def __init__(self):
                self.readings = {}

            def on_arrive(self, site):
                replica = site.replicate(f"counter@{site.name}")
                self.readings[site.name] = replica.read()
                return self.readings[site.name]

        trip = launch_agent(home, NamedSurveyAgent(), ["alpha", "beta", "gamma"])
        assert trip.sites_visited == ["alpha", "beta", "gamma"]
        assert trip.agent.readings == {"alpha": 10, "beta": 20, "gamma": 30}
        assert [result for _s, result in trip.visits] == [10, 20, 30]

    def test_returned_agent_is_a_fresh_instance(self, agent_world):
        world, home, stops = agent_world

        @obiwan.compile
        class HopCounterAgent:
            def __init__(self):
                self.hops = 0

            def on_arrive(self, site):
                self.hops += 1
                return self.hops

        original = HopCounterAgent()
        trip = launch_agent(home, original, ["alpha", "beta"])
        assert trip.agent is not original
        assert trip.agent.hops == 2
        assert original.hops == 0  # the stay-behind copy never ran

    def test_agent_carries_remote_reference(self, agent_world):
        world, home, stops = agent_world
        _site, counter, ref = stops[2]  # gamma's counter
        cargo = home.replicate(ref)  # home holds a replica
        agent = CourierAgent(cargo=cargo)
        trip = launch_agent(home, agent, ["alpha"])
        assert trip.agent.delivered_value == 30


class TestFailures:
    def test_unhosted_site_rejects_agents(self, agent_world):
        world, home, _stops = agent_world
        bare = world.create_site("no-host")

        @obiwan.compile
        class LostAgent:
            def __init__(self):
                self.x = 0

            def on_arrive(self, site):
                return None

        with pytest.raises(Exception):
            launch_agent(home, LostAgent(), ["no-host"])

    def test_disconnected_stop_surfaces(self, agent_world):
        world, home, _stops = agent_world
        world.network.disconnect("beta")

        @obiwan.compile
        class StrandedAgent:
            def __init__(self):
                self.x = 0

            def on_arrive(self, site):
                return site.name

        with pytest.raises(DisconnectedError):
            launch_agent(home, StrandedAgent(), ["alpha", "beta"])

    def test_uncompiled_agent_rejected(self, agent_world):
        _world, home, _stops = agent_world

        class Plain:
            def on_arrive(self, site):
                return None

        with pytest.raises(ReplicationError, match="compiled"):
            launch_agent(home, Plain(), ["alpha"])

    def test_agent_without_on_arrive_rejected(self, agent_world):
        _world, home, _stops = agent_world
        with pytest.raises(ReplicationError, match="on_arrive"):
            launch_agent(home, Counter(), ["alpha"])

    def test_empty_itinerary_rejected(self, agent_world):
        _world, home, _stops = agent_world

        @obiwan.compile
        class HomebodyAgent:
            def __init__(self):
                self.x = 0

            def on_arrive(self, site):
                return None

        with pytest.raises(ReplicationError, match="itinerary"):
            launch_agent(home, HomebodyAgent(), [])
