"""Integration: the paper's Figure 1 walked with full accounting.

Beyond the unit-level protocol tests, this module checks *observable
economics*: how many messages and bytes each protocol step costs, and
that the data structures at each site match the paper's situations
(a) → (b) → (c).
"""

import pytest

from repro.core.costs import CostModel
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from tests.models import Chain


@pytest.fixture
def figure1():
    with World.loopback(costs=CostModel.zero()) as world:
        s2 = world.create_site("S2")
        s1 = world.create_site("S1")
        c = Chain(index=3)
        b = Chain(index=2, nxt=c)
        a = Chain(index=1, nxt=b)
        s2.export(a, name="a")
        yield world, s2, s1, a, b, c


def test_situation_a_only_aproxyin_is_remote(figure1):
    world, s2, s1, a, b, c = figure1
    # Exactly two exported objects on S2: the name server lives on S2
    # (first site) plus AProxyIn.
    assert len(s2.endpoint.objects) == 2
    assert s2.is_master(obi_id_of(a))
    assert not s2.is_master(obi_id_of(b))  # B has no proxy-in yet


def test_get_costs_exactly_two_round_trips(figure1):
    """Replicating A costs one name-server lookup + one get."""
    world, s2, s1, a, b, c = figure1
    before = world.network.stats.total_messages
    s1.replicate("a")
    assert world.network.stats.total_messages - before == 4  # 2 calls x 2


def test_situation_b_data_structures(figure1):
    world, s2, s1, a, b, c = figure1
    a1 = s1.replicate("a")
    # S2 now has BProxyIn exported (pair created during get).
    assert len(s2.endpoint.objects) == 3
    # S1 holds A' and one pending proxy-out for B.
    assert s1.is_replica(obi_id_of(a))
    assert isinstance(a1.next, ProxyOutBase)
    assert s1.local_node_for(obi_id_of(b)) is a1.next


def test_fault_costs_one_round_trip(figure1):
    world, s2, s1, a, b, c = figure1
    a1 = s1.replicate("a")
    before = world.network.stats.total_messages
    a1.next.get_index()  # demand()
    assert world.network.stats.total_messages - before == 2


def test_situation_c_no_indirection_left(figure1):
    world, s2, s1, a, b, c = figure1
    a1 = s1.replicate("a")
    a1.next.get_index()
    b1 = a1.next
    assert not isinstance(b1, ProxyOutBase)
    # Invoking B' again costs no messages at all: direct invocation.
    before = world.network.stats.total_messages
    assert b1.get_index() == 2
    assert world.network.stats.total_messages == before
    # C is now the frontier.
    assert isinstance(b1.next, ProxyOutBase)


def test_replication_bytes_scale_with_payload(figure1):
    world, s2, s1, a, b, c = figure1
    a.payload = b"\xab" * 4096
    before = world.network.stats.bytes_between("S1", "S2")
    s1.replicate("a")
    moved = world.network.stats.bytes_between("S1", "S2") - before
    assert moved > 4096


def test_full_figure1_lifecycle(figure1):
    """(a) → (b) → (c) → put → refresh, asserting state at each stage."""
    world, s2, s1, a, b, c = figure1
    a1 = s1.replicate("a")  # (b)
    assert a1.get_index() == 1
    assert a1.next.get_index() == 2  # (c) via fault
    b1 = a1.next
    assert b1.next.get_index() == 3  # C faulted too
    c1 = b1.next

    # Replica updates master.
    c1.set_index(33)
    s1.put_back(c1)
    assert c.index == 33

    # Master updates replica.
    b.index = 22
    s2.touch(b)
    s1.refresh(b1)
    assert b1.get_index() == 22

    # Both invocation paths remain live (paper Section 2.1).
    assert s1.remote_stub("a").get_index() == 1
    assert a1.get_index() == 1
