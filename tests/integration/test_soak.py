"""Soak test: a long, mixed, deterministic scenario.

One provider, four consumers with different habits (an RMI desk client,
a replicating laptop, a clustering analyst, a flaky PDA), hundreds of
interleaved operations including disconnections — then global invariant
checks.  This is the "whole middleware under sustained mixed load"
test; everything it exercises has a focused test elsewhere, but only
here do the mechanisms run *against each other* for a while.
"""

import random

from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from repro.core.telemetry import snapshot
from repro.util.errors import ObiwanError
from tests.models import Counter, Folder


def test_soak_mixed_workload():
    rng = random.Random(2002)
    with World.loopback(costs=CostModel.zero()) as world:
        hub = world.create_site("hub")

        # The shared estate: 12 counters and a folder indexing them.
        counters = [Counter(0) for _ in range(12)]
        folder = Folder("estate")
        for index, counter in enumerate(counters):
            folder.add(f"c{index}", counter)
        hub.export(folder, name="estate")
        for index, counter in enumerate(counters):
            hub.export(counter, name=f"counter:{index}")

        desk = world.create_site("desk")       # RMI only
        laptop = world.create_site("laptop")   # replicates on use
        analyst = world.create_site("analyst")  # bulk clusters
        pda = world.create_site("pda")         # flaky connectivity

        laptop_replicas: dict[int, object] = {}
        pda_replicas: dict[int, object] = {}
        expected: list[int] = [0] * 12  # oracle for master values
        pda_offline = False
        errors_seen = 0
        connectivity_toggles = 0

        analyst_view = analyst.replicate("estate", mode=Cluster())

        for step in range(600):
            actor = rng.choice(("desk", "laptop", "analyst", "pda", "weather"))
            index = rng.randrange(12)

            if actor == "desk":
                stub = desk.remote_stub(f"counter:{index}")
                stub.increment()
                expected[index] += 1

            elif actor == "laptop":
                replica = laptop_replicas.get(index)
                if replica is None:
                    replica = laptop.replicate(f"counter:{index}")
                    laptop_replicas[index] = replica
                laptop.refresh(replica)
                replica.increment()
                laptop.put_back(replica)
                expected[index] += 1

            elif actor == "analyst":
                # Bulk read of the whole estate through the cluster view;
                # values may be stale — only structure is asserted here.
                child = analyst_view.child(f"c{index}")
                assert not isinstance(child, ProxyOutBase)
                child.read()

            elif actor == "pda":
                if pda_offline:
                    # Work locally on whatever is hoarded.
                    replica = pda_replicas.get(index)
                    if replica is not None:
                        replica.read()
                    continue
                try:
                    replica = pda_replicas.get(index)
                    if replica is None:
                        replica = pda.replicate(f"counter:{index}")
                        pda_replicas[index] = replica
                    pda.refresh(replica)
                    replica.increment()
                    pda.put_back(replica)
                    expected[index] += 1
                except ObiwanError:
                    errors_seen += 1

            else:  # weather: toggle the PDA's connectivity
                if pda_offline:
                    world.network.reconnect("pda")
                else:
                    world.network.disconnect("pda", voluntary=rng.random() < 0.5)
                pda_offline = not pda_offline
                connectivity_toggles += 1

        # ------------------------------------------------------------------
        # invariants
        # ------------------------------------------------------------------
        # 1. The oracle matches every master (all writers were serial
        #    refresh+put, so no lost updates are possible).
        for index, counter in enumerate(counters):
            assert counter.value == expected[index], f"counter {index}"

        # 2. A final sync converges every consumer replica to the master.
        world.network.reconnect("pda")
        for store in (laptop_replicas, pda_replicas):
            for index, replica in store.items():
                owner = laptop if store is laptop_replicas else pda
                owner.refresh(replica)
                assert replica.read() == expected[index]

        # 3. No replica object aliases a master.
        for store in (laptop_replicas, pda_replicas):
            for index, replica in store.items():
                assert replica is not counters[index]
                assert obi_id_of(replica) == obi_id_of(counters[index])

        # 4. All resolved proxies are collectable.
        for site in (laptop, analyst, pda):
            site.gc_stats.force_collect()
            assert site.gc_stats.resolved_alive == 0

        # 5. Telemetry is self-consistent.
        hub_snap = snapshot(hub)
        assert hub_snap.masters >= 13  # folder + counters
        assert hub_snap.bytes_sent > 0 and hub_snap.bytes_received > 0

        # Sanity: the deterministic seed really exercised the offline
        # paths — the PDA went up and down repeatedly and holds replicas.
        assert connectivity_toggles > 20
        assert snapshot(pda).replicas > 0
        del errors_seen  # recorded for debugging only
