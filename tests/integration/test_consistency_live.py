"""Consistency protocols over live transports and in combination.

The consistency layer's casts (invalidations, epidemic pushes) take a
different transport path than request/response; these tests prove the
full stack works over real sockets and threads, and that protocols
compose on one object.
"""

import time

import pytest

from repro.consistency import (
    InvalidationConsumer,
    InvalidationMaster,
    LeaseConsistency,
    ReadPolicy,
    UpdateDisseminator,
    UpdateSubscriber,
)
from repro.core.runtime import World
from tests.models import Counter


def _await(predicate, timeout=5.0):
    """Poll until a cross-thread effect lands (live transports only)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.mark.parametrize("factory", [World.threaded, World.tcp], ids=["threaded", "tcp"])
def test_invalidation_over_live_transport(factory):
    with factory() as world:
        master_site = world.create_site("M")
        writer = world.create_site("W")
        reader = world.create_site("R")
        master = Counter(0)
        master_site.export(master, name="counter")
        InvalidationMaster.export_on(master_site)

        w_consumer = InvalidationConsumer(writer)
        r_consumer = InvalidationConsumer(reader, policy=ReadPolicy.REFRESH)
        wr = w_consumer.track(writer.replicate("counter"))
        rr = r_consumer.track(reader.replicate("counter"))

        wr.increment(3)
        w_consumer.write_back(wr)

        assert _await(lambda: r_consumer.is_stale(rr)), "invalidation cast lost"
        assert r_consumer.read(rr).read() == 3


@pytest.mark.parametrize("factory", [World.threaded, World.tcp], ids=["threaded", "tcp"])
def test_epidemic_over_live_transport(factory):
    with factory() as world:
        master_site = world.create_site("M")
        writer = world.create_site("W")
        reader = world.create_site("R")
        master = Counter(0)
        master_site.export(master, name="counter")
        UpdateDisseminator.export_on(master_site)

        subscriber = UpdateSubscriber(reader)
        rr = subscriber.track(reader.replicate("counter"))
        wr = writer.replicate("counter")
        wr.increment(9)
        writer.put_back(wr)

        assert _await(lambda: rr.read() == 9), "epidemic push lost"
        assert subscriber.updates_received >= 1


def test_lease_and_invalidation_compose(zero_world):
    """A reader can hold both a lease (cheap bound) and an invalidation
    subscription (precise bound) on one replica; whichever fires first
    triggers the refresh."""
    master_site = zero_world.create_site("M")
    writer = zero_world.create_site("W")
    reader = zero_world.create_site("R")
    master = Counter(0)
    master_site.export(master, name="counter")
    InvalidationMaster.export_on(master_site)

    w_consumer = InvalidationConsumer(writer)
    invalidation = InvalidationConsumer(reader, policy=ReadPolicy.REFRESH)
    lease = LeaseConsistency(reader, duration=10.0, policy=ReadPolicy.REFRESH)

    wr = w_consumer.track(writer.replicate("counter"))
    rr = reader.replicate("counter")
    invalidation.track(rr)
    lease.track(rr)

    # Within the lease, before any write: both protocols serve locally.
    before = zero_world.network.stats.total_messages
    assert lease.read(invalidation.read(rr)).read() == 0
    assert zero_world.network.stats.total_messages == before

    # A remote write: invalidation fires first (lease still valid).
    wr.increment(4)
    w_consumer.write_back(wr)
    fresh = invalidation.read(rr)
    assert fresh.read() == 4
    assert lease.read(fresh).read() == 4  # lease unaffected

    # Later, with no writes, the lease expiry alone triggers a refresh.
    zero_world.clock.advance(11.0)
    refreshed = lease.read(rr)
    assert refreshed.read() == 4
    assert lease.remaining(rr) > 0
