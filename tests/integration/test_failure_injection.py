"""Failure injection: lossy links, mid-operation partitions, crashes.

The paper's environment is "slow and unreliable connections"; these
tests check that the middleware fails *cleanly* — clear exceptions, no
corrupted local state — and recovers when conditions improve.
"""

import pytest

from repro.core.costs import CostModel
from repro.core.interfaces import Incremental
from repro.core.meta import obi_id_of
from repro.core.runtime import World
from repro.simnet.link import Link
from repro.util.errors import DisconnectedError, TransportError
from tests.models import Counter, chain_indices, make_chain


@pytest.fixture
def flaky_world():
    """A world whose default link loses no frames, but which tests can
    rewire per-pair with lossy links."""
    with World.loopback(costs=CostModel.zero(), seed=1234) as world:
        yield world


class TestLossyLinks:
    def test_replication_over_lossy_link_raises_transport_error(self, flaky_world):
        provider = flaky_world.create_site("provider")
        consumer = flaky_world.create_site("consumer")
        provider.export(make_chain(5), name="chain")
        flaky_world.network.set_link(
            "provider",
            "consumer",
            Link(latency_s=0.001, bandwidth_bps=1e7, loss_probability=0.95),
        )
        with pytest.raises(TransportError):
            for _ in range(50):  # some attempt will hit a drop
                consumer.replicate("chain")

    def test_state_is_clean_after_failed_replication(self, flaky_world):
        provider = flaky_world.create_site("provider")
        consumer = flaky_world.create_site("consumer")
        master = Counter(3)
        provider.export(master, name="counter")
        lossy = Link(latency_s=0.001, bandwidth_bps=1e7, loss_probability=0.9999)
        flaky_world.network.set_link("provider", "consumer", lossy)
        with pytest.raises(TransportError):
            consumer.replicate("counter")
        # No half-registered replica.
        assert consumer.replica_info(obi_id_of(master)) is None
        # Restore the link: everything works.
        flaky_world.network.set_link(
            "provider", "consumer", Link(latency_s=0.001, bandwidth_bps=1e7)
        )
        assert consumer.replicate("counter").read() == 3


class TestMidOperationPartitions:
    def test_partition_between_replicate_and_put(self, flaky_world):
        provider = flaky_world.create_site("provider")
        consumer = flaky_world.create_site("consumer")
        master = Counter(0)
        provider.export(master, name="counter")
        replica = consumer.replicate("counter")
        flaky_world.network.partition({"provider"}, {"consumer"})
        replica.increment(5)
        with pytest.raises(DisconnectedError):
            consumer.put_back(replica)
        # Local state survives; master untouched.
        assert replica.read() == 5
        assert master.value == 0
        flaky_world.network.heal()
        consumer.put_back(replica)
        assert master.value == 5

    def test_fault_mid_traversal_under_partition(self, flaky_world):
        provider = flaky_world.create_site("provider")
        consumer = flaky_world.create_site("consumer")
        provider.export(make_chain(6), name="chain")
        head = consumer.replicate("chain", mode=Incremental(2))
        flaky_world.network.partition({"provider"}, {"consumer"})
        # The already-replicated prefix still works...
        assert head.get_index() == 0
        assert head.get_next().get_index() == 1
        # ...the frontier does not.
        frontier = head.get_next().get_next()
        with pytest.raises(DisconnectedError):
            frontier.get_index()
        flaky_world.network.heal()
        assert chain_indices(head) == list(range(6))


class TestProviderCrash:
    def test_detached_provider_yields_clean_errors(self, flaky_world):
        provider = flaky_world.create_site("provider")
        consumer = flaky_world.create_site("consumer")
        provider.export(Counter(1), name="counter")
        replica = consumer.replicate("counter")
        flaky_world.network.detach("provider")  # the site process dies
        with pytest.raises(TransportError):
            consumer.refresh(replica)
        assert replica.read() == 1  # replica remains the survivor copy
