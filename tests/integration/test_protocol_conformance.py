"""Protocol conformance: the exact frames each operation may send.

The trace recorder pins down the middleware's message complexity —
these tests fail if an implementation change silently adds round trips
to a core operation, the kind of regression aggregate timing can hide.
"""

import pytest

from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.runtime import World
from repro.simnet.trace import TraceRecorder
from tests.models import Counter, chain_indices, make_chain


@pytest.fixture
def traced():
    with World.loopback(costs=CostModel.zero()) as world:
        provider = world.create_site("P")
        consumer = world.create_site("C")
        trace = TraceRecorder(world.network)
        yield world, provider, consumer, trace
        trace.detach()


def test_replicate_by_name_is_exactly_two_round_trips(traced):
    world, provider, consumer, trace = traced
    provider.export(Counter(), name="counter")
    trace.clear()
    consumer.replicate("counter")
    assert trace.sequence() == [
        ("request", "C", "P"),   # name-server lookup (NS lives on P)
        ("response", "P", "C"),
        ("request", "C", "P"),   # get
        ("response", "P", "C"),
    ]


def test_replicate_by_ref_is_one_round_trip(traced):
    world, provider, consumer, trace = traced
    ref = provider.export(Counter())
    trace.clear()
    consumer.replicate(ref)
    assert trace.round_trips() == 1
    assert len(trace) == 2


def test_each_fault_is_one_round_trip(traced):
    world, provider, consumer, trace = traced
    provider.export(make_chain(7), name="chain")
    head = consumer.replicate("chain", mode=Incremental(2))
    trace.clear()
    chain_indices(head)  # 5 remaining objects / chunk 2 → 3 faults
    assert trace.round_trips() == 3
    assert len(trace) == 6


def test_transitive_closure_is_one_get_regardless_of_size(traced):
    world, provider, consumer, trace = traced
    provider.export(make_chain(50), name="chain")
    ref = consumer.naming.lookup("chain")
    trace.clear()
    head = consumer.replicate(ref, mode=Transitive())
    assert trace.round_trips() == 1
    chain_indices(head)  # traversal adds nothing
    assert trace.round_trips() == 1


def test_cluster_fetch_same_trips_fewer_bytes(traced):
    world, provider, consumer, trace = traced
    provider.export(make_chain(30), name="chain")
    ref = consumer.naming.lookup("chain")

    trace.clear()
    consumer.replicate(ref, mode=Incremental(30))
    per_object_bytes = trace.bytes_total()
    per_object_trips = trace.round_trips()

    fresh = world.create_site("C2")
    trace.clear()
    fresh.replicate(ref, mode=Cluster(size=30))
    cluster_bytes = trace.bytes_total()
    assert trace.round_trips() == per_object_trips == 1
    assert cluster_bytes < per_object_bytes  # no per-member provider refs


def test_put_and_refresh_are_one_round_trip_each(traced):
    world, provider, consumer, trace = traced
    provider.export(Counter(), name="counter")
    replica = consumer.replicate("counter")
    trace.clear()
    consumer.put_back(replica)
    assert trace.round_trips() == 1
    trace.clear()
    consumer.refresh(replica)
    assert trace.round_trips() == 1


def test_local_invocations_send_nothing(traced):
    world, provider, consumer, trace = traced
    provider.export(Counter(), name="counter")
    replica = consumer.replicate("counter")
    trace.clear()
    for _ in range(100):
        replica.increment()
    assert len(trace) == 0


def test_rmi_invocation_is_one_round_trip_per_call(traced):
    world, provider, consumer, trace = traced
    provider.export(Counter(), name="counter")
    stub = consumer.remote_stub("counter")
    trace.clear()
    stub.increment()
    stub.increment()
    assert trace.round_trips() == 2
