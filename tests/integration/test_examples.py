"""Smoke tests: every shipped example must run clean, as a subprocess.

Examples are documentation that executes; a broken example is a broken
promise to the first user.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _env_with_src():
    """Subprocesses don't inherit pytest's sys.path; add src explicitly."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        env=_env_with_src(),
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
    assert "Traceback" not in result.stderr


def test_quickstart_output_tells_the_figure1_story():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        env=_env_with_src(),
        timeout=60,
    )
    out = result.stdout
    assert "proxy-out: True" in out
    assert "fault -> B" in out
    assert "put_back applied" in out
    assert "refresh applied" in out
