"""Integration: the full OBIWAN stack on the threaded and TCP transports.

The loopback transport is synchronous; these tests prove the middleware
also works when requests genuinely cross threads or sockets.
"""

import threading

import pytest

from repro.core.interfaces import Cluster, Incremental
from repro.core.meta import obi_id_of
from repro.core.runtime import World
from repro.mobility.node import MobileNode
from tests.models import Counter, chain_indices, make_chain


@pytest.fixture(params=["threaded", "tcp"])
def live_world(request):
    factory = World.threaded if request.param == "threaded" else World.tcp
    with factory() as world:
        yield world


def test_replicate_fault_put_refresh(live_world):
    provider = live_world.create_site("provider")
    consumer = live_world.create_site("consumer")
    provider.export(make_chain(10), name="chain")

    head = consumer.replicate("chain", mode=Incremental(3))
    assert chain_indices(head) == list(range(10))

    head.set_index(100)
    consumer.put_back(head)

    master_head = provider.master_object_for(obi_id_of(head))
    assert master_head.index == 100


def test_cluster_over_live_transport(live_world):
    provider = live_world.create_site("provider")
    consumer = live_world.create_site("consumer")
    provider.export(make_chain(12), name="chain")
    head = consumer.replicate("chain", mode=Cluster(size=5))
    assert chain_indices(head) == list(range(12))


def test_concurrent_consumers_threaded():
    with World.threaded() as world:
        provider = world.create_site("provider")
        master = Counter(0)
        provider.export(master, name="counter")

        errors: list[Exception] = []
        done = threading.Barrier(4, timeout=10)

        def consume(name: str):
            try:
                site = world.create_site(name)
                replica = site.replicate("counter")
                assert replica.read() >= 0
                for _ in range(5):
                    site.refresh(replica)
                done.wait()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                try:
                    done.abort()
                except Exception:  # noqa: BLE001
                    pass

        threads = [
            threading.Thread(target=consume, args=(f"consumer-{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert not errors


def test_mobility_over_tcp():
    """Disconnection is a logical state, honoured even on real sockets."""
    with World.tcp() as world:
        office = world.create_site("office")
        pda_site = world.create_site("pda")
        office.export(Counter(1), name="counter")
        node = MobileNode(pda_site)
        replica = node.hoard("counter")
        node.go_offline(voluntary=True)
        result = node.call("counter", "read")
        assert result.value == 1
        assert result.possibly_stale
        report = node.go_online()
        assert report is not None
