"""Integration: many sites sharing one object graph."""

import pytest

from repro.core.costs import CostModel
from repro.core.interfaces import Cluster, Incremental, Transitive
from repro.core.runtime import World
from tests.models import Counter, Folder, chain_indices, make_chain


@pytest.fixture
def world():
    with World.loopback(costs=CostModel.zero()) as w:
        yield w


def test_five_consumers_converge_via_put_and_refresh(world):
    provider = world.create_site("provider")
    master = Counter(0)
    provider.export(master, name="counter")
    consumers = [world.create_site(f"c{i}") for i in range(5)]
    replicas = [site.replicate("counter") for site in consumers]

    # Each consumer adds its index+1, serially, with refresh-before-write.
    for index, (site, replica) in enumerate(zip(consumers, replicas)):
        site.refresh(replica)
        replica.increment(index + 1)
        site.put_back(replica)
    assert master.value == sum(range(1, 6))

    for site, replica in zip(consumers, replicas):
        site.refresh(replica)
        assert replica.read() == 15


def test_different_modes_against_same_master(world):
    provider = world.create_site("provider")
    provider.export(make_chain(20), name="chain")
    eager = world.create_site("eager")
    lazy = world.create_site("lazy")
    bulk = world.create_site("bulk")

    assert chain_indices(eager.replicate("chain", mode=Transitive())) == list(range(20))
    assert chain_indices(lazy.replicate("chain", mode=Incremental(3))) == list(range(20))
    assert chain_indices(bulk.replicate("chain", mode=Cluster(size=8))) == list(range(20))


def test_graph_spanning_three_sites(world):
    """A references B's object which references C's object; faults chase
    providers across sites."""
    sa = world.create_site("sa")
    sb = world.create_site("sb")
    sc = world.create_site("sc")

    leaf = Counter(99)
    sc.export(leaf, name="leaf")
    middle = Folder("middle")
    middle.add("leaf", sb.replicate("leaf"))  # sb holds a replica of leaf
    sb.export(middle, name="middle")

    reader = world.create_site("reader")
    replica = reader.replicate("middle", mode=Incremental(1))
    # The leaf arrives as a proxy whose provider is sb's chain.
    assert replica.child("leaf").read() == 99


def test_two_providers_one_consumer(world):
    p1 = world.create_site("p1")
    p2 = world.create_site("p2")
    consumer = world.create_site("consumer")
    p1.export(Counter(1), name="one")
    p2.export(Counter(2), name="two")
    r1 = consumer.replicate("one")
    r2 = consumer.replicate("two")
    assert (r1.read(), r2.read()) == (1, 2)
    r1.increment(10)
    r2.increment(20)
    consumer.put_back(r1)
    consumer.put_back(r2)
    assert consumer.replica_info.__self__ is consumer  # sanity


def test_fan_out_read_heavy_workload_bytes(world):
    """Replication amortizes: after replicating, 100 local reads move
    zero bytes, while 100 RMI reads move plenty."""
    provider = world.create_site("provider")
    provider.export(Counter(5), name="counter")
    rmi_site = world.create_site("rmi-site")
    lmi_site = world.create_site("lmi-site")

    stats = world.network.stats
    stub = rmi_site.remote_stub("counter")
    before = stats.bytes_between("provider", "rmi-site")
    for _ in range(100):
        stub.read()
    rmi_bytes = stats.bytes_between("provider", "rmi-site") - before

    replica = lmi_site.replicate("counter")
    before = stats.bytes_between("provider", "lmi-site")
    for _ in range(100):
        replica.read()
    lmi_bytes = stats.bytes_between("provider", "lmi-site") - before

    assert lmi_bytes == 0
    assert rmi_bytes > 5000
