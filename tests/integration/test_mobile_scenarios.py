"""Integration: end-to-end mobile scenarios from the paper's narrative.

"A user wants to access data using a PC in his office, using a laptop
while in the airport or in the hotel, using a PDA in a taxi …" — these
tests act that story out against the middleware.
"""

import pytest

from repro.consistency import (
    InvalidationConsumer,
    InvalidationMaster,
    ReadPolicy,
    UpdateDisseminator,
    UpdateSubscriber,
)
from repro.core.costs import CostModel
from repro.core.runtime import World
from repro.mobility.node import MobileNode
from repro.mobility.reconcile import ReconcileAction, keep_local
from repro.util.errors import DisconnectedError
from tests.models import Folder, make_chain


@pytest.fixture
def office_world():
    with World.loopback(costs=CostModel.zero()) as world:
        office = world.create_site("office")
        documents = Folder("documents")
        report = Folder("report")
        report.add("intro", make_chain(3))
        documents.add("report", report)
        office.export(documents, name="documents")
        yield world, office, documents


class TestDayInTheLife:
    def test_office_laptop_pda_roaming(self, office_world):
        world, office, documents = office_world

        # Morning: work on the office PC via RMI — always fresh.
        pc = world.create_site("office-pc")
        stub = pc.remote_stub("documents")
        assert stub.get_name() == "documents"

        # Noon: laptop hoards the documents, goes to the airport.
        laptop = MobileNode(world.create_site("laptop"))
        docs = laptop.hoard("documents")
        laptop.go_offline(voluntary=False)
        assert docs.child("report").get_name() == "report"  # no network

        # The PDA was never prepared; it cannot reach anything.
        pda = MobileNode(world.create_site("pda"))
        pda.go_offline(voluntary=True)
        with pytest.raises(Exception):
            pda.call("documents", "get_name")

        # Evening: laptop edits offline, reconnects, pushes.
        docs.add("notes", make_chain(2))
        report = laptop.go_online()
        assert report.count(ReconcileAction.PUSHED) == 1
        assert "notes" in documents.index

    def test_voluntary_disconnection_to_save_cost(self, office_world):
        """'Some disconnections will be voluntary (e.g., due to a high
        dollar cost)' — the flag survives to the application."""
        world, _office, _documents = office_world
        pda = MobileNode(world.create_site("pda"))
        pda.hoard("documents")
        pda.go_offline(voluntary=True)
        try:
            pda.site.replicate("documents")
            raise AssertionError("should have been disconnected")
        except DisconnectedError as error:
            assert error.voluntary is True


class TestCollaborationUnderMobility:
    def test_invalidation_plus_disconnection(self, office_world):
        world, office, documents = office_world
        InvalidationMaster.export_on(office)

        desk = world.create_site("desk")
        roaming = world.create_site("roaming")
        desk_consumer = InvalidationConsumer(desk, policy=ReadPolicy.REFRESH)
        roam_consumer = InvalidationConsumer(roaming, policy=ReadPolicy.SERVE_STALE)
        desk_replica = desk_consumer.track(desk.replicate("documents"))
        roam_replica = roam_consumer.track(roaming.replicate("documents"))

        world.network.disconnect("roaming")
        desk_replica.name = "documents-v2"
        desk_consumer.write_back(desk_replica)
        assert documents.name == "documents-v2"

        # The roaming site missed the invalidation but still reads.
        assert roam_consumer.read(roam_replica).get_name() == "documents"

        world.network.reconnect("roaming")
        roaming.refresh(roam_replica)
        assert roam_replica.get_name() == "documents-v2"

    def test_epidemic_board_with_churning_connectivity(self, office_world):
        world, office, _documents = office_world
        from tests.models import Counter

        score = Counter(0)
        office.export(score, name="score")
        UpdateDisseminator.export_on(office)

        players = []
        for name in ("p1", "p2", "p3"):
            site = world.create_site(name)
            subscriber = UpdateSubscriber(site)
            replica = subscriber.track(site.replicate("score"))
            players.append((site, subscriber, replica))

        writer_site, _, writer_replica = players[0]
        world.network.disconnect("p3")
        writer_replica.increment(5)
        writer_site.put_back(writer_replica)

        assert players[1][2].read() == 5  # online subscriber converged
        assert players[2][2].read() == 0  # offline one did not
        world.network.reconnect("p3")
        players[2][0].refresh(players[2][2])
        assert players[2][2].read() == 5

    def test_conflicting_offline_edits_resolved(self, office_world):
        world, office, documents = office_world
        alice = MobileNode(world.create_site("alice"))
        docs = alice.hoard("documents")

        alice.go_offline()
        docs.name = "alice-edition"
        documents.name = "office-edition"
        office.touch(documents)

        report = alice.go_online()
        assert report.conflicts != []
        alice.reconciler.reconcile(on_conflict=keep_local)
        assert documents.name == "alice-edition"
