"""Concurrency stress: many client threads against one provider.

The threaded transport serializes each site's *inbound* work on one
dispatcher, but client threads drive their own sites concurrently, so
the provider's tables see real cross-thread pressure.  These tests run
enough concurrent operations to surface table races if the locking is
wrong.
"""

import threading

import pytest

from repro.core.interfaces import Incremental
from repro.core.meta import obi_id_of
from repro.core.runtime import World
from tests.models import Counter, chain_indices, make_chain


@pytest.mark.parametrize("consumers", [4, 8])
def test_concurrent_first_replication_one_master(consumers):
    """Simultaneous first-touch of the same object must create exactly
    one proxy-in at the provider."""
    with World.threaded() as world:
        provider = world.create_site("provider")
        master = Counter(7)
        ref = provider.export(master)

        ready = threading.Barrier(consumers, timeout=10)
        errors: list[Exception] = []
        replicas: dict[str, object] = {}

        def consume(name: str):
            try:
                site = world.create_site(name)
                ready.wait()
                replicas[name] = site.replicate(ref)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=consume, args=(f"c{i}",)) for i in range(consumers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert not errors
        assert len(replicas) == consumers
        assert all(r.read() == 7 for r in replicas.values())
        # Exactly one provider record for the master.
        assert provider.has_exported(obi_id_of(master))


def test_concurrent_chunked_traversals():
    """Several consumers fault through the same list at once; every one
    must see the full, correct sequence."""
    with World.threaded() as world:
        provider = world.create_site("provider")
        provider.export(make_chain(40), name="chain")

        results: dict[str, list[int]] = {}
        errors: list[Exception] = []

        def traverse(name: str, chunk: int):
            try:
                site = world.create_site(name)
                head = site.replicate("chain", mode=Incremental(chunk))
                results[name] = chain_indices(head)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=traverse, args=(f"t{i}", 1 + i * 3))
            for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert all(seq == list(range(40)) for seq in results.values())


def test_concurrent_puts_serialize_at_the_master():
    """Interleaved put_back calls from many threads must not lose
    version bumps (each accepted put increments by exactly one)."""
    with World.threaded() as world:
        provider = world.create_site("provider")
        master = Counter(0)
        provider.export(master, name="counter")

        per_thread = 10
        thread_count = 6
        versions: list[int] = []
        lock = threading.Lock()
        errors: list[Exception] = []

        def writer(name: str):
            try:
                site = world.create_site(name)
                replica = site.replicate("counter")
                for _ in range(per_thread):
                    replica.increment()
                    version = site.put_back(replica)
                    with lock:
                        versions.append(version)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(f"w{i}",)) for i in range(thread_count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        total = per_thread * thread_count
        # Every put got a distinct, gap-free version number.
        assert sorted(versions) == list(range(2, total + 2))
        assert provider.master_version(master) == total + 1
