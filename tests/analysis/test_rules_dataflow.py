"""Positive/negative cases for the replica-leak rule (OBI103)."""


class TestReplicaLeak:
    def test_raw_container_return_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Agenda:
                def __init__(self):
                    self.entries = []

                def all(self):
                    return self.entries
            """,
            rule="OBI103",
        )
        assert len(findings) == 1
        assert "self.entries" in findings[0].message

    def test_dict_attr_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Index:
                def __init__(self):
                    self.by_key = {}

                def mapping(self):
                    return self.by_key
            """,
            rule="OBI103",
        )
        assert len(findings) == 1

    def test_copied_return_passes(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Agenda:
                def __init__(self):
                    self.entries = []

                def all(self):
                    return list(self.entries)
            """,
            rule="OBI103",
        )
        assert findings == []

    def test_scalar_attr_return_passes(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Doc:
                def __init__(self, title=""):
                    self.title = title
                    self.tags = []

                def get_title(self):
                    return self.title
            """,
            rule="OBI103",
        )
        assert findings == []

    def test_private_method_not_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Agenda:
                def __init__(self):
                    self.entries = []

                def _raw(self):
                    return self.entries

                def act(self):
                    pass
            """,
            rule="OBI103",
        )
        assert findings == []
