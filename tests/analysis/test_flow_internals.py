"""Unit tests for the flow layer's stages: symbols, call graph, lock
analysis.  The rule-level behavior is covered by test_flow_rules /
test_flow_fixtures; these pin the intermediate facts the rules consume.
"""

from __future__ import annotations


def _func(project, qualname):
    for func in project.symtab.functions:
        if func.qualname == qualname:
            return func
    raise AssertionError(f"no function {qualname!r} in project")


class TestSymbols:
    def test_lock_attrs_from_init_and_dataclass_field(self, flow_project):
        project = flow_project(
            mod="""
            import threading
            from dataclasses import dataclass, field

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}

            @dataclass
            class Stats:
                _lock: threading.Lock = field(default_factory=threading.Lock)
                count: int = 0
            """
        )
        (plain,) = project.symtab.class_named("Plain")
        (stats,) = project.symtab.class_named("Stats")
        assert plain.lock_attrs == {"_lock"}
        assert stats.lock_attrs == {"_lock"}

    def test_attr_types_from_annotated_param_and_constructor(self, flow_project):
        project = flow_project(
            mod="""
            class Endpoint:
                def invoke(self):
                    pass

            class Site:
                def __init__(self, endpoint: Endpoint):
                    self.endpoint = endpoint
                    self.backup = Endpoint()
            """
        )
        (site,) = project.symtab.class_named("Site")
        assert site.attr_types["endpoint"] == "Endpoint"
        assert site.attr_types["backup"] == "Endpoint"

    def test_string_annotation_resolves(self, flow_project):
        project = flow_project(
            mod="""
            class Site:
                pass

            def handle(site: "Site"):
                site.spin()
            """
        )
        (site,) = project.symtab.class_named("Site")
        assert site.name == "Site"


class TestCallGraph:
    def test_self_method_and_module_function_resolve(self, flow_project):
        project = flow_project(
            mod="""
            def helper():
                pass

            class Worker:
                def run(self):
                    self.step()
                    helper()

                def step(self):
                    pass
            """
        )
        run = _func(project, "Worker.run")
        callees = {
            callee.qualname
            for site in project.graph.sites_of(run)
            for callee in site.callees
        }
        assert callees == {"Worker.step", "helper"}

    def test_typed_attribute_dispatch(self, flow_project):
        project = flow_project(
            mod="""
            class Endpoint:
                def invoke(self, ref):
                    pass

            class Site:
                def __init__(self, endpoint: Endpoint):
                    self.endpoint = endpoint

                def fetch(self, ref):
                    return self.endpoint.invoke(ref)
            """
        )
        fetch = _func(project, "Site.fetch")
        callees = {
            callee.qualname
            for site in project.graph.sites_of(fetch)
            for callee in site.callees
        }
        assert "Endpoint.invoke" in callees

    def test_cross_module_import_resolves(self, flow_project):
        project = flow_project(
            faults="""
            def resolve_fault(site, proxy):
                pass
            """,
            runtime="""
            from faults import resolve_fault

            def handle(site, proxy):
                return resolve_fault(site, proxy)
            """,
        )
        handle = _func(project, "handle")
        callees = {
            callee.qualname
            for site in project.graph.sites_of(handle)
            for callee in site.callees
        }
        assert "resolve_fault" in callees

    def test_ambiguous_names_do_not_resolve(self, flow_project):
        project = flow_project(
            mod="""
            class Store:
                def get(self, key):
                    return key

            def use(thing):
                return thing.get("x")
            """
        )
        use = _func(project, "use")
        assert project.graph.sites_of(use) == []

    def test_same_named_methods_on_two_classes_do_not_merge(self, flow_project):
        """Unique-name dispatch is per owning class: a method name shared
        by two classes proves nothing about an unknown receiver, and
        resolving to both would fuse lock contexts that never meet."""
        project = flow_project(
            alpha="""
            class Master:
                def refresh(self):
                    pass
            """,
            beta="""
            class Replica:
                def refresh(self):
                    pass

            def poke(thing):
                thing.refresh()
            """,
        )
        poke = _func(project, "poke")
        assert project.graph.sites_of(poke) == []

    def test_unique_method_on_one_class_still_resolves(self, flow_project):
        project = flow_project(
            mod="""
            class Master:
                def refresh_epoch(self):
                    pass

            def poke(thing):
                thing.refresh_epoch()
            """
        )
        poke = _func(project, "poke")
        callees = {
            callee.qualname
            for site in project.graph.sites_of(poke)
            for callee in site.callees
        }
        assert callees == {"Master.refresh_epoch"}


class TestLockAnalysis:
    def test_held_sets_in_summaries(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put_item(self, item):
                    with self._lock:
                        self._items.append(item)
                    self._items.reverse()
            """
        )
        put_item = _func(project, "Box.put_item")
        summary = project.locks.summaries[put_item.key]
        writes = [a for a in summary.accesses if a.kind == "write"]
        assert any(a.held == ("Box._lock",) for a in writes)
        assert any(a.held == () for a in writes)

    def test_must_entry_held_for_private_helper(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = {}

                def insert(self, key, row):
                    with self._lock:
                        self._store(key, row)

                def replace(self, key, row):
                    with self._lock:
                        self._store(key, row)

                def _store(self, key, row):
                    self._rows[key] = row
            """
        )
        store = _func(project, "Table._store")
        insert = _func(project, "Table.insert")
        assert project.locks.must_entry_held[store.key] == {"Table._lock"}
        assert project.locks.must_entry_held[insert.key] == frozenset()

    def test_public_helper_gets_no_must_context(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = {}

                def insert(self, key, row):
                    with self._lock:
                        self.store(key, row)

                def store(self, key, row):
                    self._rows[key] = row
            """
        )
        store = _func(project, "Table.store")
        assert project.locks.must_entry_held[store.key] == frozenset()

    def test_may_entry_held_propagates_through_calls(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Chain:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.middle()

                def middle(self):
                    self.inner()

                def inner(self):
                    pass
            """
        )
        inner = _func(project, "Chain.inner")
        assert "Chain._lock" in project.locks.may_entry_held[inner.key]

    def test_order_edges_record_nesting(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Two:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def both(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )
        edges = {(e.held, e.acquired) for e in project.locks.order_edges()}
        assert ("Two._a", "Two._b") in edges
        assert ("Two._b", "Two._a") not in edges

    def test_guarded_fields_inferred(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def store(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def drop(self, key):
                    self._entries.pop(key, None)
            """
        )
        (field,) = project.guarded.fields
        assert (field.cls.name, field.attr, field.lock) == (
            "Cache",
            "_entries",
            "Cache._lock",
        )
        kinds = {(v.func.qualname, v.kind) for v in project.guarded.violations}
        assert ("Cache.drop", "write") in kinds


STRIPED_MOD = """
import threading

class Striped:
    def __init__(self):
        self._stripe_locks = [threading.Lock() for _ in range(8)]
        self._tables = [{} for _ in range(8)]
"""


class TestStripeInternals:
    def test_lock_family_and_stripe_table_detected(self, flow_project):
        project = flow_project(mod=STRIPED_MOD)
        (cls,) = project.symtab.class_named("Striped")
        assert cls.lock_families == {"_stripe_locks"}
        assert cls.stripe_tables == {"_tables"}
        assert cls.lock_attrs == set()

    def test_annassign_style_detected(self, flow_project):
        project = flow_project(
            mod="""
            import threading

            class Striped:
                def __init__(self, count):
                    self._stripe_locks: list = [threading.RLock() for _ in range(count)]
                    self._masters: list[dict] = [{} for _ in range(count)]
            """
        )
        (cls,) = project.symtab.class_named("Striped")
        assert cls.lock_families == {"_stripe_locks"}
        assert cls.stripe_tables == {"_masters"}

    def test_snapshot_read_flag_set(self, flow_project):
        project = flow_project(
            mod="""
            def snapshot_read(func):
                return func

            class Striped:
                @snapshot_read
                def peek(self):
                    pass

                def poke(self):
                    pass
            """
        )
        assert _func(project, "Striped.peek").snapshot_read
        assert not _func(project, "Striped.poke").snapshot_read

    def test_family_acquire_gets_keyed_identity(self, flow_project):
        project = flow_project(
            mod=STRIPED_MOD
            + """
    def put(self, idx, oid, value):
        with self._stripe_locks[idx]:
            self._tables[idx][oid] = value
            """
        )
        put = _func(project, "Striped.put")
        summary = project.locks.summaries[put.key]
        assert [a.lock for a in summary.acquires] == ["Striped._stripe_locks[idx]"]
        (write,) = [a for a in summary.accesses if a.kind == "write"]
        assert write.attr == "_tables"
        assert write.subscript_key == "idx"
        assert write.held == ("Striped._stripe_locks[idx]",)

    def test_canonical_key_normalizes_self_name(self, flow_project):
        """A method whose self parameter is named ``site`` still produces
        ``self``-relative keys, so caller and callee contexts compare."""
        project = flow_project(
            mod=STRIPED_MOD
            + """
    def shard(self):
        return 0

    def put(site, idx, oid, value):
        with site._stripe_locks[site.shard()]:
            pass
            """
        )
        put = _func(project, "Striped.put")
        summary = project.locks.summaries[put.key]
        assert [a.lock for a in summary.acquires] == [
            "Striped._stripe_locks[self.shard()]"
        ]

    def test_ascending_range_loop_marks_acquire_ordered(self, flow_project):
        project = flow_project(
            mod=STRIPED_MOD
            + """
    def drain(self):
        for idx in range(8):
            with self._stripe_locks[idx]:
                pass

    def grab_two(self, i, j):
        with self._stripe_locks[i]:
            with self._stripe_locks[j]:
                pass
            """
        )
        drain = _func(project, "Striped.drain")
        (ordered,) = project.locks.summaries[drain.key].acquires
        assert ordered.ordered
        grab = _func(project, "Striped.grab_two")
        assert all(not a.ordered for a in project.locks.summaries[grab.key].acquires)

    def test_sorted_unpack_records_ranks(self, flow_project):
        project = flow_project(
            mod=STRIPED_MOD
            + """
    def pair(self, i, j):
        lo, hi = sorted((i, j))
        with self._stripe_locks[lo]:
            with self._stripe_locks[hi]:
                pass
            """
        )
        pair = _func(project, "Striped.pair")
        ranks = project.locks.summaries[pair.key].sorted_ranks
        assert ranks["lo"][1] < ranks["hi"][1]
        assert ranks["lo"][0] == ranks["hi"][0]
