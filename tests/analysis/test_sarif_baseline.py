"""SARIF output and baseline workflows."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.report import render_sarif
from repro.analysis.rules import build_rules

DIRTY = """
    import time

    def stamp():
        return time.time()

    def stamp_again():
        return time.time()
"""

CLEAN = """
    def fine():
        return 1
"""


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(textwrap.dedent(DIRTY), encoding="utf-8")
    return path


class TestSarif:
    def test_schema_shape(self, dirty_file):
        report = analyze_paths([dirty_file])
        payload = json.loads(render_sarif(report, build_rules()))
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "obilint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"OBI101", "OBI108", "OBI201", "OBI206"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in {"warning", "error"}
        assert len(run["results"]) == 2
        result = run["results"][0]
        assert result["ruleId"] == "OBI108"
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("dirty.py")
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_cli_format_sarif(self, dirty_file, capsys):
        exit_code = main([str(dirty_file), "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert exit_code == 0  # OBI108 is a warning; not strict

    def test_baselined_results_marked(self, dirty_file, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline(baseline, analyze_paths([dirty_file]))
        report = apply_baseline(
            analyze_paths([dirty_file]), load_baseline(baseline)
        )
        payload = json.loads(render_sarif(report, build_rules()))
        states = [r.get("baselineState") for r in payload["runs"][0]["results"]]
        assert states.count("unchanged") == 2


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, dirty_file, tmp_path):
        baseline = tmp_path / "base.json"
        first = analyze_paths([dirty_file], strict=True)
        assert len(first.findings) == 2
        write_baseline(baseline, first)

        second = apply_baseline(
            analyze_paths([dirty_file], strict=True), load_baseline(baseline)
        )
        assert second.findings == []
        assert len(second.baselined) == 2
        assert not second.failed(strict=True)

    def test_new_finding_beyond_baseline_fails(self, dirty_file, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline(baseline, analyze_paths([dirty_file], strict=True))

        grown = dirty_file.read_text(encoding="utf-8") + (
            "\n\ndef third():\n    return time.time()\n"
        )
        dirty_file.write_text(grown, encoding="utf-8")
        report = apply_baseline(
            analyze_paths([dirty_file], strict=True), load_baseline(baseline)
        )
        assert len(report.findings) == 1  # only the third stamp is new
        assert len(report.baselined) == 2
        assert report.failed(strict=True)

    def test_fixed_finding_never_unmasks_another(self, dirty_file, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline(baseline, analyze_paths([dirty_file], strict=True))

        # Fix one of the two findings; the other stays baselined.
        source = dirty_file.read_text(encoding="utf-8").replace(
            "def stamp_again():\n    return time.time()", "def stamp_again():\n    return 2"
        )
        dirty_file.write_text(source, encoding="utf-8")
        report = apply_baseline(
            analyze_paths([dirty_file], strict=True), load_baseline(baseline)
        )
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_parse_failures_are_never_baselined(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps({"version": 1, "entries": {f"{path}::OBI001": 5}}),
            encoding="utf-8",
        )
        report = apply_baseline(analyze_paths([path]), load_baseline(baseline))
        assert report.failed()

    def test_cli_write_then_check(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main([str(dirty_file), "--write-baseline", str(baseline)]) == 0
        assert "baseline of 2 finding(s)" in capsys.readouterr().out

        exit_code = main([str(dirty_file), "--strict", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2 baselined" in out

    def test_cli_missing_baseline_is_usage_error(self, dirty_file, tmp_path, capsys):
        exit_code = main(
            [str(dirty_file), "--baseline", str(tmp_path / "nope.json")]
        )
        assert exit_code == 2
        assert "baseline file not found" in capsys.readouterr().err

    def test_version_mismatch_rejected(self, dirty_file, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"version": 99, "entries": {}}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(baseline)

    def test_clean_tree_writes_empty_baseline(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(textwrap.dedent(CLEAN), encoding="utf-8")
        baseline = tmp_path / "base.json"
        recorded = write_baseline(baseline, analyze_paths([path], strict=True))
        assert recorded == 0
        assert load_baseline(baseline) == {}
