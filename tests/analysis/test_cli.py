"""CLI behavior: exit codes, formats, subprocess entry point, self-hosting."""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

BAD = """
from repro import obiwan

@obiwan.compile
class Bad:
    def get(self):
        pass
"""

CLEAN = """
from repro import obiwan

@obiwan.compile
class Good:
    def business(self):
        pass
"""


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _subprocess_env():
    env = os.environ.copy()
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "good.py", CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "OBI102" in out
        assert "FAIL" in out

    def test_warning_only_passes_unless_strict(self, tmp_path, capsys):
        _write(
            tmp_path,
            "warn.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert main([str(tmp_path)]) == 0
        assert main([str(tmp_path), "--strict"]) == 1

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2


class TestFormats:
    def test_json_schema(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["failed"] is True
        assert payload["files_analyzed"] == 1
        assert payload["summary"]["errors"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "OBI102"
        assert finding["name"] == "interface-shadowing"
        assert finding["severity"] == "error"
        assert finding["line"] > 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("OBI101", "OBI104", "OBI108"):
            assert rule_id in out

    def test_select_and_ignore(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD)
        assert main([str(tmp_path), "--select", "OBI108"]) == 0
        assert main([str(tmp_path), "--ignore", "OBI102"]) == 0

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        # A typo'd --select must not silently select nothing and pass CI.
        _write(tmp_path, "bad.py", BAD)
        assert main([str(tmp_path), "--select", "OBI999"]) == 2
        assert main([str(tmp_path), "--ignore", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestJobs:
    def test_parallel_report_matches_serial(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD)
        _write(tmp_path, "good.py", CLEAN)
        _write(
            tmp_path,
            "warn.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        _write(tmp_path, "broken.py", "def oops(:\n")
        assert main([str(tmp_path), "--format", "json"]) == 1
        serial = capsys.readouterr().out
        assert main([str(tmp_path), "--format", "json", "--jobs", "4"]) == 1
        parallel = capsys.readouterr().out
        assert json.loads(serial) == json.loads(parallel)

    def test_invalid_jobs_is_usage_error(self, tmp_path, capsys):
        _write(tmp_path, "good.py", CLEAN)
        assert main([str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestSelfHost:
    def test_src_and_examples_clean_under_strict(self, capsys):
        # The acceptance bar: the analyzer passes over its own codebase.
        assert (
            main([str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "examples"), "--strict"])
            == 0
        )

    def test_subprocess_entry_point(self, tmp_path):
        _write(tmp_path, "bad.py", BAD)
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            timeout=120,
        )
        assert result.returncode == 1, result.stderr
        assert "OBI102" in result.stdout

    def test_subprocess_strict_self_host(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(REPO_ROOT / "src" / "repro"),
                str(REPO_ROOT / "examples"),
                "--strict",
            ],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout


@pytest.mark.parametrize(
    ("rule_id", "source"),
    [
        (
            "OBI101",
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                __slots__ = ("x",)

                def act(self):
                    pass
            """,
        ),
        ("OBI102", BAD),
        (
            "OBI103",
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                def __init__(self):
                    self.items = []

                def all(self):
                    return self.items
            """,
        ),
        (
            "OBI104",
            """
            import threading

            lock = threading.Lock()

            def push(sock, data):
                with lock:
                    sock.sendall(data)
            """,
        ),
        (
            "OBI105",
            """
            from repro.consistency.lease import LeaseConsistency

            class Sub(LeaseConsistency):
                def read(self, replica):
                    return replica
            """,
        ),
        (
            "OBI106",
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                cache = []

                def act(self):
                    pass
            """,
        ),
        (
            "OBI107",
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
        ),
        (
            "OBI108",
            """
            import time

            def stamp():
                return time.time()
            """,
        ),
    ],
)
def test_every_rule_fails_the_cli_in_strict_mode(tmp_path, capsys, rule_id, source):
    """Acceptance: a fixture violating each rule makes the CLI exit non-zero."""
    _write(tmp_path, "fixture.py", source)
    assert main([str(tmp_path), "--strict"]) == 1
    assert rule_id in capsys.readouterr().out
