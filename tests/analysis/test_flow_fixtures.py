"""Every seeded-defect fixture under fixtures/flow/ is caught by its rule.

The fixture files are the flow layer's regression corpus: each one holds
exactly the defect its OBI2xx rule exists for, so a refactor that stops
detecting one fails here first.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "flow"

CASES = [
    ("obi201_lock_cycle.py", "OBI201"),
    ("obi202_blocking_under_lock.py", "OBI202"),
    ("obi203_unguarded_state.py", "OBI203"),
    ("obi204_put_without_source.py", "OBI204"),
    ("obi205_demand_outside_fault.py", "OBI205"),
    ("obi206_splice_escape.py", "OBI206"),
    ("obi207_stripe_key_mismatch.py", "OBI207"),
    ("obi208_stripe_order.py", "OBI208"),
    ("obi209_snapshot_read_mutation.py", "OBI209"),
    ("obi210_feed_apply_epoch.py", "OBI210"),
]

#: The stripe fixtures are each built to trip exactly one discipline.
STRIPE_CASES = [case for case in CASES if case[1] in {"OBI207", "OBI208", "OBI209"}]


@pytest.mark.parametrize(("fixture", "rule"), CASES)
def test_fixture_detected_by_its_rule(fixture, rule):
    report = analyze_paths([FIXTURES / fixture], select={rule})
    rules_hit = {finding.rule for finding in report.all_findings()}
    assert rule in rules_hit, f"{fixture} not detected by {rule}"


def test_every_flow_rule_has_a_fixture():
    from repro.analysis.rules import build_rules

    flow_ids = {rule.id for rule in build_rules() if rule.id.startswith("OBI2")}
    assert flow_ids == {rule for _fixture, rule in CASES}


@pytest.mark.parametrize(("fixture", "rule"), STRIPE_CASES)
def test_stripe_fixture_triggers_exactly_its_rule(fixture, rule):
    """With every flow rule running, each stripe fixture trips only its own."""
    all_flow = {f"OBI20{n}" for n in range(1, 10)} | {"OBI210"}
    report = analyze_paths([FIXTURES / fixture], select=all_flow)
    assert {finding.rule for finding in report.all_findings()} == {rule}


def test_obi203_fixture_flags_both_evict_and_lookup():
    report = analyze_paths([FIXTURES / "obi203_unguarded_state.py"], select={"OBI203"})
    messages = [finding.message for finding in report.all_findings()]
    assert any("evict" in message for message in messages)
    assert any("lookup" in message for message in messages)


def test_fixtures_stay_suppressible():
    """A justified suppression silences a flow finding like any other."""
    source = (FIXTURES / "obi205_demand_outside_fault.py").read_text(encoding="utf-8")
    patched = source.replace(
        "(proxy._obi_mode,))",
        "(proxy._obi_mode,))  # obilint: disable=OBI205 -- test fixture",
    )
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "suppressed_demand.py"
        path.write_text(patched, encoding="utf-8")
        report = analyze_paths([path], select={"OBI205"})
        assert not report.findings
        assert any(f.rule == "OBI205" for f in report.suppressed)
