"""Positive and negative cases for the flow rules OBI201–OBI209."""

from __future__ import annotations


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestOBI201LockOrderCycle:
    def test_opposite_order_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            rule="OBI201",
        )
        assert rules_of(findings) == {"OBI201"}
        assert "lock-order cycle" in findings[0].message

    def test_consistent_order_clean(self, lint):
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            rule="OBI201",
        )
        assert findings == []

    def test_cycle_through_call_graph(self, lint):
        """The cycle needs interprocedural context: each function takes
        only one lock directly."""
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._take_b()

                def _take_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        self._take_a()

                def _take_a(self):
                    with self._a:
                        pass
            """,
            rule="OBI201",
        )
        assert rules_of(findings) == {"OBI201"}


class TestOBI202BlockingUnderLock:
    def test_blocking_callee_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Flusher:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock

                def flush(self, data):
                    with self._lock:
                        self._push(data)

                def _push(self, data):
                    self._sock.sendall(data)
            """,
            rule="OBI202",
        )
        assert rules_of(findings) == {"OBI202"}
        assert "sendall" in findings[0].message

    def test_send_after_lock_released_clean(self, lint):
        findings = lint(
            """
            import threading

            class Flusher:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock
                    self._dirty = []

                def flush(self):
                    with self._lock:
                        batch = list(self._dirty)
                    for data in batch:
                        self._push(data)

                def _push(self, data):
                    self._sock.sendall(data)
            """,
            rule="OBI202",
        )
        assert findings == []


class TestOBI203UnguardedState:
    def test_unlocked_write_and_read_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def store(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def evict(self, key):
                    self._entries.pop(key, None)

                def lookup(self, key):
                    return self._entries.get(key)
            """,
            rule="OBI203",
        )
        assert rules_of(findings) == {"OBI203"}
        assert len(findings) == 2

    def test_private_helper_under_lock_clean(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def store(self, key, value):
                    with self._lock:
                        self._store(key, value)

                def _store(self, key, value):
                    self._entries[key] = value
            """,
            rule="OBI203",
        )
        assert findings == []

    def test_init_writes_exempt(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._entries["warm"] = True

                def store(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """,
            rule="OBI203",
        )
        assert findings == []

    def test_lone_locked_write_among_many_unlocked_clean(self, lint):
        """When most writers skip the lock, the lock is the anomaly —
        don't flag the majority."""
        findings = lint(
            """
            import threading

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1

                def bump_again(self):
                    self.count += 1

                def rare(self):
                    with self._lock:
                        self.count += 1
            """,
            rule="OBI203",
        )
        assert findings == []


class TestOBI204PutWithoutSource:
    def test_blind_put_flagged(self, lint):
        findings = lint(
            """
            class Writer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def push(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert rules_of(findings) == {"OBI204"}

    def test_put_with_get_elsewhere_in_class_clean(self, lint):
        findings = lint(
            """
            class Consumer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def replicate(self, mode):
                    return self.endpoint.invoke(self.provider, "get", (mode,))

                def put_back(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert findings == []

    def test_source_through_called_helper_clean(self, lint):
        findings = lint(
            """
            class Consumer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def _fetch(self, mode):
                    return self.endpoint.invoke(self.provider, "get", (mode,))

                def put_back(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert findings == []

    def test_string_constants_not_confused_with_verbs(self, lint):
        """acl-style policy tables mention "put" without invoking it."""
        findings = lint(
            """
            class Policy:
                def __init__(self):
                    self.rules = []

                def allow(self, pattern, verb):
                    self.rules.append((pattern, verb))

            def harden(policy):
                policy.allow("*", "put")
            """,
            rule="OBI204",
        )
        assert findings == []


class TestOBI205DemandOutsideFaultPath:
    def test_demand_elsewhere_flagged(self, lint):
        findings = lint(
            """
            def eager(site, proxy):
                return site.endpoint.invoke(proxy.provider, "demand", (proxy.mode,))
            """,
            rule="OBI205",
        )
        assert rules_of(findings) == {"OBI205"}

    def test_batched_demand_elsewhere_flagged(self, lint):
        findings = lint(
            """
            def eager_batch(site, proxies):
                calls = [(p.provider, "demand", (p.mode,)) for p in proxies]
                return site.endpoint.invoke_batch(proxies[0].provider.site_id, calls)
            """,
            rule="OBI205",
        )
        assert rules_of(findings) == {"OBI205"}

    def test_other_verbs_clean(self, lint):
        findings = lint(
            """
            def fetch(site, ref, mode):
                return site.endpoint.invoke(ref, "get", (mode,))
            """,
            rule="OBI205",
        )
        assert findings == []


class TestOBI206SpliceEscape:
    def test_store_before_splice_flagged(self, lint):
        findings = lint(
            """
            def splice(proxy, replica):
                proxy.resolved = replica

            class Handler:
                def __init__(self):
                    self.last = None

                def resolve(self, proxy, package):
                    local = integrate(package)
                    self.last = local
                    splice(proxy, local)
                    return local

            def integrate(package):
                return package
            """,
            rule="OBI206",
        )
        assert rules_of(findings) == {"OBI206"}
        assert "stored" in findings[0].message

    def test_escape_after_splice_clean(self, lint):
        findings = lint(
            """
            def splice(proxy, replica):
                proxy.resolved = replica

            class Handler:
                def __init__(self):
                    self.last = None

                def resolve(self, proxy, package):
                    local = integrate(package)
                    splice(proxy, local)
                    self.last = local
                    return local

            def integrate(package):
                return package
            """,
            rule="OBI206",
        )
        assert findings == []


STRIPED_HEADER = """
import threading

class Striped:
    def __init__(self):
        self._stripe_locks = [threading.Lock() for _ in range(8)]
        self._tables = [{} for _ in range(8)]
"""


class TestOBI207StripeKeyMismatch:
    def test_matching_key_clean(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def put(self, idx, oid, value):
        with self._stripe_locks[idx]:
            self._tables[idx][oid] = value
            """,
            rule="OBI207",
        )
        assert findings == []

    def test_wrong_key_flagged(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def put(self, idx, other, oid, value):
        with self._stripe_locks[idx]:
            self._tables[other][oid] = value
            """,
            rule="OBI207",
        )
        assert rules_of(findings) == {"OBI207"}
        assert "keys do not match" in findings[0].message

    def test_no_lock_flagged(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def peek(self, idx, oid):
        return self._tables[idx].get(oid)
            """,
            rule="OBI207",
        )
        assert rules_of(findings) == {"OBI207"}
        assert "no" in findings[0].message

    def test_whole_table_access_needs_some_stripe_lock(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def total(self):
        return sum(len(shard) for shard in self._tables)
            """,
            rule="OBI207",
        )
        assert rules_of(findings) == {"OBI207"}
        assert "whole-table" in findings[0].message

    def test_snapshot_read_read_exempt(self, lint):
        findings = lint(
            """
            import threading

            def snapshot_read(func):
                return func

            class Striped:
                def __init__(self):
                    self._stripe_locks = [threading.Lock() for _ in range(8)]
                    self._tables = [{} for _ in range(8)]

                @snapshot_read
                def peek(self, idx, oid):
                    return self._tables[idx].get(oid)
            """,
            rule="OBI207",
        )
        assert findings == []

    def test_helper_with_must_held_entry_clean(self, lint):
        """A private helper only ever called under stripe ``idx``'s lock
        inherits that context — provided it names the key ``idx`` too."""
        findings = lint(
            STRIPED_HEADER
            + """
    def put(self, idx, oid, value):
        with self._stripe_locks[idx]:
            self._store(idx, oid, value)

    def _store(self, idx, oid, value):
        self._tables[idx][oid] = value
            """,
            rule="OBI207",
        )
        assert findings == []

    def test_constructor_exempt(self, lint):
        """__init__ builds the shards bare-handed — the instance is not
        shared yet, so the whole-table rebind is not a violation."""
        findings = lint(
            STRIPED_HEADER
            + """
    def resize(self, idx):
        with self._stripe_locks[idx]:
            self._tables[idx].clear()
            """,
            rule="OBI207",
        )
        assert findings == []


class TestOBI208StripeOrder:
    def test_unordered_nesting_flagged(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def move(self, oid, src, dst):
        with self._stripe_locks[src]:
            with self._stripe_locks[dst]:
                pass
            """,
            rule="OBI208",
        )
        assert rules_of(findings) == {"OBI208"}
        assert "ascending" in findings[0].message

    def test_sorted_unpack_proof_clean(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def move(self, oid, i, j):
        lo, hi = sorted((i, j))
        with self._stripe_locks[lo]:
            with self._stripe_locks[hi]:
                pass
            """,
            rule="OBI208",
        )
        assert findings == []

    def test_sorted_unpack_wrong_way_flagged(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def move(self, oid, i, j):
        lo, hi = sorted((i, j))
        with self._stripe_locks[hi]:
            with self._stripe_locks[lo]:
                pass
            """,
            rule="OBI208",
        )
        assert rules_of(findings) == {"OBI208"}

    def test_ascending_range_loop_clean(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def drain(self):
        held = []
        for idx in range(8):
            with self._stripe_locks[idx]:
                held.append(idx)
            """,
            rule="OBI208",
        )
        assert findings == []

    def test_reentrant_same_stripe_clean(self, lint):
        findings = lint(
            STRIPED_HEADER
            + """
    def touch(self, idx):
        with self._stripe_locks[idx]:
            with self._stripe_locks[idx]:
                pass
            """,
            rule="OBI208",
        )
        assert findings == []


class TestOBI209SnapshotReadMutation:
    def test_reachable_write_flagged(self, lint):
        findings = lint(
            """
            import threading

            def snapshot_read(func):
                return func

            class Striped:
                def __init__(self):
                    self._stripe_locks = [threading.Lock() for _ in range(8)]
                    self._tables = [{} for _ in range(8)]

                def _bump(self, idx, oid):
                    with self._stripe_locks[idx]:
                        self._tables[idx][oid] = 1

                @snapshot_read
                def observe(self, idx, oid):
                    self._bump(idx, oid)
                    return self._tables[idx].get(oid)
            """,
            rule="OBI209",
        )
        assert rules_of(findings) == {"OBI209"}
        assert "snapshot read" in findings[0].message

    def test_direct_write_flagged(self, lint):
        findings = lint(
            """
            import threading

            def snapshot_read(func):
                return func

            class Striped:
                def __init__(self):
                    self._stripe_locks = [threading.Lock() for _ in range(8)]
                    self._tables = [{} for _ in range(8)]

                @snapshot_read
                def observe(self, idx, oid):
                    self._tables[idx][oid] = 1
                    return self._tables[idx].get(oid)
            """,
            rule="OBI209",
        )
        assert rules_of(findings) == {"OBI209"}

    def test_read_only_path_clean(self, lint):
        findings = lint(
            """
            import threading

            def snapshot_read(func):
                return func

            class Striped:
                def __init__(self):
                    self._stripe_locks = [threading.Lock() for _ in range(8)]
                    self._tables = [{} for _ in range(8)]

                def _shard(self, idx):
                    return self._tables[idx]

                @snapshot_read
                def observe(self, idx, oid):
                    return self._shard(idx).get(oid)
            """,
            rule="OBI209",
        )
        assert findings == []

    def test_writes_to_unguarded_state_clean(self, lint):
        """A snapshot read may touch fields no lock owns (e.g. a plain
        counter) — only guarded or striped state is protected."""
        findings = lint(
            """
            def snapshot_read(func):
                return func

            class Plain:
                def __init__(self):
                    self.peeks = 0
                    self.value = None

                @snapshot_read
                def observe(self):
                    self.peeks += 1
                    return self.value
            """,
            rule="OBI209",
        )
        assert findings == []
