"""Positive and negative cases for the flow rules OBI201–OBI206."""

from __future__ import annotations


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestOBI201LockOrderCycle:
    def test_opposite_order_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            rule="OBI201",
        )
        assert rules_of(findings) == {"OBI201"}
        assert "lock-order cycle" in findings[0].message

    def test_consistent_order_clean(self, lint):
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            rule="OBI201",
        )
        assert findings == []

    def test_cycle_through_call_graph(self, lint):
        """The cycle needs interprocedural context: each function takes
        only one lock directly."""
        findings = lint(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._take_b()

                def _take_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        self._take_a()

                def _take_a(self):
                    with self._a:
                        pass
            """,
            rule="OBI201",
        )
        assert rules_of(findings) == {"OBI201"}


class TestOBI202BlockingUnderLock:
    def test_blocking_callee_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Flusher:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock

                def flush(self, data):
                    with self._lock:
                        self._push(data)

                def _push(self, data):
                    self._sock.sendall(data)
            """,
            rule="OBI202",
        )
        assert rules_of(findings) == {"OBI202"}
        assert "sendall" in findings[0].message

    def test_send_after_lock_released_clean(self, lint):
        findings = lint(
            """
            import threading

            class Flusher:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock
                    self._dirty = []

                def flush(self):
                    with self._lock:
                        batch = list(self._dirty)
                    for data in batch:
                        self._push(data)

                def _push(self, data):
                    self._sock.sendall(data)
            """,
            rule="OBI202",
        )
        assert findings == []


class TestOBI203UnguardedState:
    def test_unlocked_write_and_read_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def store(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def evict(self, key):
                    self._entries.pop(key, None)

                def lookup(self, key):
                    return self._entries.get(key)
            """,
            rule="OBI203",
        )
        assert rules_of(findings) == {"OBI203"}
        assert len(findings) == 2

    def test_private_helper_under_lock_clean(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def store(self, key, value):
                    with self._lock:
                        self._store(key, value)

                def _store(self, key, value):
                    self._entries[key] = value
            """,
            rule="OBI203",
        )
        assert findings == []

    def test_init_writes_exempt(self, lint):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._entries["warm"] = True

                def store(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """,
            rule="OBI203",
        )
        assert findings == []

    def test_lone_locked_write_among_many_unlocked_clean(self, lint):
        """When most writers skip the lock, the lock is the anomaly —
        don't flag the majority."""
        findings = lint(
            """
            import threading

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1

                def bump_again(self):
                    self.count += 1

                def rare(self):
                    with self._lock:
                        self.count += 1
            """,
            rule="OBI203",
        )
        assert findings == []


class TestOBI204PutWithoutSource:
    def test_blind_put_flagged(self, lint):
        findings = lint(
            """
            class Writer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def push(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert rules_of(findings) == {"OBI204"}

    def test_put_with_get_elsewhere_in_class_clean(self, lint):
        findings = lint(
            """
            class Consumer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def replicate(self, mode):
                    return self.endpoint.invoke(self.provider, "get", (mode,))

                def put_back(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert findings == []

    def test_source_through_called_helper_clean(self, lint):
        findings = lint(
            """
            class Consumer:
                def __init__(self, endpoint, provider):
                    self.endpoint = endpoint
                    self.provider = provider

                def _fetch(self, mode):
                    return self.endpoint.invoke(self.provider, "get", (mode,))

                def put_back(self, package):
                    return self.endpoint.invoke(self.provider, "put", (package,))
            """,
            rule="OBI204",
        )
        assert findings == []

    def test_string_constants_not_confused_with_verbs(self, lint):
        """acl-style policy tables mention "put" without invoking it."""
        findings = lint(
            """
            class Policy:
                def __init__(self):
                    self.rules = []

                def allow(self, pattern, verb):
                    self.rules.append((pattern, verb))

            def harden(policy):
                policy.allow("*", "put")
            """,
            rule="OBI204",
        )
        assert findings == []


class TestOBI205DemandOutsideFaultPath:
    def test_demand_elsewhere_flagged(self, lint):
        findings = lint(
            """
            def eager(site, proxy):
                return site.endpoint.invoke(proxy.provider, "demand", (proxy.mode,))
            """,
            rule="OBI205",
        )
        assert rules_of(findings) == {"OBI205"}

    def test_batched_demand_elsewhere_flagged(self, lint):
        findings = lint(
            """
            def eager_batch(site, proxies):
                calls = [(p.provider, "demand", (p.mode,)) for p in proxies]
                return site.endpoint.invoke_batch(proxies[0].provider.site_id, calls)
            """,
            rule="OBI205",
        )
        assert rules_of(findings) == {"OBI205"}

    def test_other_verbs_clean(self, lint):
        findings = lint(
            """
            def fetch(site, ref, mode):
                return site.endpoint.invoke(ref, "get", (mode,))
            """,
            rule="OBI205",
        )
        assert findings == []


class TestOBI206SpliceEscape:
    def test_store_before_splice_flagged(self, lint):
        findings = lint(
            """
            def splice(proxy, replica):
                proxy.resolved = replica

            class Handler:
                def __init__(self):
                    self.last = None

                def resolve(self, proxy, package):
                    local = integrate(package)
                    self.last = local
                    splice(proxy, local)
                    return local

            def integrate(package):
                return package
            """,
            rule="OBI206",
        )
        assert rules_of(findings) == {"OBI206"}
        assert "stored" in findings[0].message

    def test_escape_after_splice_clean(self, lint):
        findings = lint(
            """
            def splice(proxy, replica):
                proxy.resolved = replica

            class Handler:
                def __init__(self):
                    self.last = None

                def resolve(self, proxy, package):
                    local = integrate(package)
                    splice(proxy, local)
                    self.last = local
                    return local

            def integrate(package):
                return package
            """,
            rule="OBI206",
        )
        assert findings == []
