"""Positive/negative cases for the compiled-class rules (OBI101/102/106)."""


class TestUnserializableState:
    def test_slots_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                __slots__ = ("x",)

                def act(self):
                    pass
            """,
            rule="OBI101",
        )
        assert len(findings) == 1
        assert findings[0].rule == "OBI101"
        assert "__slots__" in findings[0].message

    def test_lock_field_flagged(self, lint):
        findings = lint(
            """
            import threading
            from repro.core.obicomp import compile_class

            @compile_class
            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()

                def act(self):
                    pass
            """,
            rule="OBI101",
        )
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message

    def test_from_import_lock_resolved(self, lint):
        findings = lint(
            """
            from threading import Lock
            from repro import obiwan

            @obiwan.compile
            class Bad:
                def __init__(self):
                    self.guard = Lock()

                def act(self):
                    pass
            """,
            rule="OBI101",
        )
        assert len(findings) == 1

    def test_open_and_socket_flagged(self, lint):
        findings = lint(
            """
            import socket
            from repro import obiwan

            @obiwan.compile
            class Bad:
                def __init__(self, path):
                    self.fh = open(path)
                    self.sock = socket.socket()

                def act(self):
                    pass
            """,
            rule="OBI101",
        )
        assert len(findings) == 2

    def test_clean_compiled_class_passes(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Good:
                def __init__(self):
                    self.entries = []

                def act(self):
                    pass
            """,
            rule="OBI101",
        )
        assert findings == []

    def test_uncompiled_class_with_lock_passes(self, lint):
        findings = lint(
            """
            import threading

            class PlainHelper:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            rule="OBI101",
        )
        assert findings == []


class TestInterfaceShadowing:
    def test_get_put_demand_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                def get(self):
                    pass

                def put(self, pkg):
                    pass

                def demand(self):
                    pass
            """,
            rule="OBI102",
        )
        assert {f.rule for f in findings} == {"OBI102"}
        assert len(findings) == 3

    def test_get_version_and_update_member_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                def get_version(self):
                    pass

                def updateMember(self, m):
                    pass
            """,
            rule="OBI102",
        )
        assert len(findings) == 2

    def test_prefixed_names_pass(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Good:
                def get_title(self):
                    pass

                def put_away(self):
                    pass
            """,
            rule="OBI102",
        )
        assert findings == []

    def test_private_control_name_passes(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Good:
                def _get(self):
                    pass

                def act(self):
                    pass
            """,
            rule="OBI102",
        )
        assert findings == []


class TestMutableClassDefault:
    def test_list_default_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                cache = []

                def act(self):
                    pass
            """,
            rule="OBI106",
        )
        assert len(findings) == 1
        assert "cache" in findings[0].message

    def test_dict_call_and_annotated_flagged(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Bad:
                index: dict = dict()
                tags = set()

                def act(self):
                    pass
            """,
            rule="OBI106",
        )
        assert len(findings) == 2

    def test_immutable_defaults_pass(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Good:
                LIMIT = 10
                NAME = "good"
                SHAPE = (1, 2)

                def act(self):
                    pass
            """,
            rule="OBI106",
        )
        assert findings == []

    def test_instance_level_container_passes(self, lint):
        findings = lint(
            """
            from repro import obiwan

            @obiwan.compile
            class Good:
                def __init__(self):
                    self.cache = []

                def act(self):
                    pass
            """,
            rule="OBI106",
        )
        assert findings == []
