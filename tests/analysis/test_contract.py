"""The contract must stay consistent with the live runtime.

These tests are the drift alarms: if someone renames a proxy-in control
method, adds a wire tag, or reshuffles the error hierarchy, the analyzer
contract fails here instead of silently rotting.
"""

from repro.analysis import contract
from repro.core.proxy_in import PROXY_IN_CONTROL_METHODS
from repro.serial import tags
from repro.serial.registry import global_registry
from repro.util.errors import ObiwanError, ReplicationError, TransportError


class TestReservedNames:
    def test_derived_from_proxy_in(self):
        # Every control method the proxy-in actually exposes is reserved.
        assert set(PROXY_IN_CONTROL_METHODS) <= contract.RESERVED_CONTROL_METHODS

    def test_paper_verbs_reserved(self):
        assert "updateMember" in contract.RESERVED_CONTROL_METHODS
        assert "get" in contract.RESERVED_CONTROL_METHODS
        assert "put" in contract.RESERVED_CONTROL_METHODS
        assert "demand" in contract.RESERVED_CONTROL_METHODS


class TestWireCrossCheck:
    def test_builtins_match_tag_table(self):
        # One encodable builtin per value tag (tags also cover the
        # structural OBJECT/REF/SWIZZLED envelopes and bool's two tags).
        tag_names = {
            name for name in vars(tags) if not name.startswith("_")
        }
        assert {"NONE", "INT", "FLOAT", "STR", "BYTES", "BYTEARRAY", "LIST",
                "TUPLE", "DICT", "SET", "FROZENSET", "OBJECT_SCHEMA"} <= tag_names
        assert {list, dict, set, frozenset, bytes, bytearray} <= contract.WIRE_ENCODABLE_BUILTINS

    def test_tag_bytes_are_unique(self):
        values = [
            value for name, value in vars(tags).items()
            if not name.startswith("_") and isinstance(value, int)
        ]
        assert len(values) == len(set(values))

    def test_schema_codec_names_track_the_codec_cache(self):
        from repro.serial.compiled import codec_for
        from repro.serial.registry import TypeRegistry

        class Probe:
            def __init__(self, n: int):
                self.n = n

        TypeRegistry().register(Probe, name="contract.Probe")
        assert codec_for(Probe) is not None
        names = contract.schema_codec_names()
        assert "contract.Probe" in names
        # Every advertised codec corresponds to a class that compiled one.
        from repro.serial.compiled import registered_codec_names

        assert names == registered_codec_names()

    def test_unserializable_factories_are_not_registered(self):
        # No "unserializable" type may quietly gain a registry entry:
        # if one does, the rule must be updated, not bypassed.
        import queue
        import threading

        for cls in (
            type(threading.Lock()),
            type(threading.RLock()),
            threading.Thread,
            threading.Event,
            queue.Queue,
        ):
            assert not global_registry.is_registered(cls), cls

    def test_factories_cover_threading_and_sockets(self):
        assert "threading.Lock" in contract.UNSERIALIZABLE_FACTORIES
        assert "socket.socket" in contract.UNSERIALIZABLE_FACTORIES
        assert "open" in contract.UNSERIALIZABLE_FACTORIES


class TestErrorHierarchy:
    def test_replication_errors_discovered(self):
        assert "ReplicationError" in contract.REPLICATION_ERROR_NAMES
        assert "TransportError" in contract.REPLICATION_ERROR_NAMES
        assert issubclass(ReplicationError, ObiwanError)
        assert issubclass(TransportError, ObiwanError)

    def test_foreign_errors_not_included(self):
        assert "ValueError" not in contract.REPLICATION_ERROR_NAMES
        assert "KeyError" not in contract.REPLICATION_ERROR_NAMES


class TestProtocolDiscovery:
    def test_all_shipped_protocols_found(self):
        names = contract.concrete_protocol_names()
        assert {
            "LeaseConsistency",
            "ManualConsistency",
            "InvalidationConsumer",
            "UpdateSubscriber",
            "LwwReplica",
            "VectorReplica",
        } <= names
        assert "ConsistencyProtocol" not in names
