"""The seeded OBI401 fixture is caught by its rule, and only by it.

Same contract as the flow and wire corpora: the fixture under
``fixtures/reactor/`` holds exactly the defect OBI401 exists for and
trips no other rule even with the full catalog selected — the precision
claim the reactor-discipline rule ships with.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURE = Path(__file__).parent / "fixtures" / "reactor" / "obi401_blocking_call.py"


def test_fixture_detected_by_obi401():
    report = analyze_paths([FIXTURE], select={"OBI401"})
    findings = report.all_findings()
    assert {finding.rule for finding in findings} == {"OBI401"}
    # sleep + recv in on_events, lock + join in on_flush_command, sleep in pump
    assert len(findings) == 5
    lines = {finding.line for finding in findings}
    assert len(lines) == 5, "each seeded defect is anchored at its own line"


def test_fixture_trips_exactly_obi401():
    report = analyze_paths([FIXTURE])
    assert {finding.rule for finding in report.all_findings()} == {"OBI401"}


def test_shipped_reactor_is_clean():
    """The transport that motivated the rule satisfies it."""
    src = Path(__file__).parents[2] / "src" / "repro" / "simnet" / "reactor.py"
    report = analyze_paths([src], select={"OBI401"})
    assert report.all_findings() == []
