"""Fixtures for the obilint test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_paths


@pytest.fixture
def lint(tmp_path):
    """Analyze a source snippet; returns the list of (non-suppressed) findings.

    ``lint(source)`` runs every rule; ``lint(source, rule="OBI101")``
    narrows to one rule so positive/negative cases stay focused.
    """

    counter = [0]

    def run(source: str, *, rule: str | None = None, strict: bool = False):
        counter[0] += 1
        path = tmp_path / f"fixture_{counter[0]}.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = analyze_paths(
            [path], select={rule} if rule else None, strict=strict
        )
        return report.all_findings()

    return run


@pytest.fixture
def flow_project(tmp_path):
    """Build a :class:`repro.analysis.flow.Project` from named snippets.

    ``flow_project(runtime="...", faults="...")`` writes one module per
    keyword and returns the Project over them, for unit tests that poke
    the symbol table / call graph / analyses directly.
    """
    from repro.analysis.engine import ModuleSource
    from repro.analysis.flow import Project

    def build(**sources):
        modules = []
        for name, source in sources.items():
            path = tmp_path / f"{name}.py"
            path.write_text(textwrap.dedent(source), encoding="utf-8")
            modules.append(ModuleSource.parse(path, display_path=f"{name}.py"))
        return Project(modules)

    return build


@pytest.fixture
def lint_report(tmp_path):
    """Like ``lint`` but returns the whole :class:`AnalysisReport`."""

    counter = [0]

    def run(source: str, *, rule: str | None = None, strict: bool = False):
        counter[0] += 1
        path = tmp_path / f"report_fixture_{counter[0]}.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return analyze_paths([path], select={rule} if rule else None, strict=strict)

    return run
