"""Seeded defect: striped-table access under the wrong stripe lock (OBI207).

``note`` hashes the oid to stripe ``idx`` and touches shard ``idx`` —
fine.  ``cross_shard_read`` holds stripe ``idx``'s lock but reads shard
``other``: a lock is held, yet it guards a different shard, so the read
races with ``other``'s locked writers exactly as if no lock were held.
"""

import threading
import zlib


class StripedDirectory:
    def __init__(self):
        self._stripe_locks = [threading.Lock() for _ in range(8)]
        self._records = [{} for _ in range(8)]

    def _stripe_of(self, oid):
        return zlib.crc32(oid.encode("utf-8")) % 8

    def note(self, oid, version):
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            self._records[idx][oid] = version

    def cross_shard_read(self, oid, other):
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            return self._records[other].get(oid)
