"""Seeded defect: two stripe locks nested without an ordering proof (OBI208).

``move`` takes stripe ``src`` then stripe ``dst`` with nothing relating
the two indices: a concurrent ``move`` with the arguments swapped nests
them the other way and deadlocks inside the one family.  ``merge`` shows
the accepted discipline — ``lo, hi = sorted((i, j))`` ranks the keys, so
locking ``lo`` before ``hi`` is provably ascending and stays clean.
"""

import threading


class StripedTransfer:
    def __init__(self):
        self._stripe_locks = [threading.Lock() for _ in range(8)]
        self._tables = [{} for _ in range(8)]

    def move(self, oid, src, dst):
        with self._stripe_locks[src]:
            record = self._tables[src].pop(oid, None)
            with self._stripe_locks[dst]:
                self._tables[dst][oid] = record

    def merge(self, oid, i, j):
        lo, hi = sorted((i, j))
        with self._stripe_locks[lo]:
            with self._stripe_locks[hi]:
                self._tables[lo][oid] = self._tables[hi].get(oid)
