"""Seeded defect: the replica escapes before splice completes (OBI206).

``resolve`` publishes the replica into an attribute before
``splice`` has rewritten the demanders — a reader of ``last_resolved``
can observe a replica whose aliases still point at the proxy.
"""


def splice(proxy, replica):
    for holder in proxy.demanders:
        holder.replace(proxy, replica)
    proxy.resolved = replica


class FaultHandler:
    def __init__(self, site):
        self.site = site
        self.last_resolved = None

    def resolve(self, proxy, package):
        local = self.site.integrate(package)
        self.last_resolved = local
        splice(proxy, local)
        return local
