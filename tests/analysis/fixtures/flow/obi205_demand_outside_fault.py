"""Seeded defect: a ``demand`` issued outside the fault path (OBI205).

This module is not the fault resolver, so its demand bypasses fault
coalescing, sibling batching, and the fault-path statistics.
"""


def eager_fetch(site, proxy):
    return site.endpoint.invoke(proxy._obi_provider, "demand", (proxy._obi_mode,))
