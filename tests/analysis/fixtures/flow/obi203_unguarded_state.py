"""Seeded defect: a lock-owned table accessed without the lock (OBI203).

``store`` and ``invalidate`` maintain ``_entries`` under ``_lock``;
``evict`` pops and ``lookup`` reads with no lock at all — the same shape
as the ``Site.evict`` defect this rule was grown from.
"""

import threading


class ReplicaCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def store(self, oid, replica):
        with self._lock:
            self._entries[oid] = replica

    def invalidate(self, oid):
        with self._lock:
            self._entries.pop(oid, None)

    def evict(self, oid):
        self._entries.pop(oid, None)

    def lookup(self, oid):
        return self._entries.get(oid)
