"""Seeded defect: a declared snapshot read that mutates state (OBI209).

``observe`` is decorated ``@snapshot_read`` — a promise of lock-free,
read-only behaviour — yet it calls ``_bump``, which writes a striped
table.  The helper even takes the correct stripe lock, so OBI207 is
satisfied; the defect is purely that a mutation is reachable from a
path declared to be a read.
"""

import threading
import zlib


def snapshot_read(func):
    func.__obiwan_snapshot_read__ = True
    return func


class StripedCounter:
    def __init__(self):
        self._stripe_locks = [threading.Lock() for _ in range(8)]
        self._counts = [{} for _ in range(8)]

    def _bump(self, oid, idx):
        with self._stripe_locks[idx]:
            self._counts[idx][oid] = self._counts[idx].get(oid, 0) + 1

    @snapshot_read
    def observe(self, oid):
        idx = zlib.crc32(oid.encode("utf-8")) % 8
        self._bump(oid, idx)
        return self._counts[idx].get(oid)
