"""Seeded defect: a helper called under a lock blocks on the network
(OBI202).

``flush`` itself contains no send — the hazard is one call away, in
``_push``, which is why the intra-function OBI104 cannot see it.
"""

import threading


class ReplicaFlusher:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._sock = sock
        self._dirty = []

    def flush(self):
        with self._lock:
            while self._dirty:
                self._push(self._dirty.pop())

    def _push(self, package):
        self._sock.sendall(package)
