"""Seeded defect: two locks taken in opposite orders (OBI201).

``transfer`` takes the table lock then the journal lock; ``checkpoint``
takes them the other way around.  Two threads, one in each, deadlock.
"""

import threading


class ReplicaLedger:
    def __init__(self):
        self._table_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._table = {}
        self._journal = []

    def transfer(self, oid, version):
        with self._table_lock:
            self._table[oid] = version
            with self._journal_lock:
                self._journal.append((oid, version))

    def checkpoint(self):
        with self._journal_lock:
            entries = list(self._journal)
            with self._table_lock:
                for oid, version in entries:
                    self._table.setdefault(oid, version)
