"""Seeded defect: a component that writes back replicas it never
acquired (OBI204).

``BlindWriter`` issues the protocol's ``put`` but no ``get`` or
``demand`` is reachable from any of its methods — nothing here ever
obtained the replica whose state it pushes.
"""


class BlindWriter:
    def __init__(self, endpoint, provider):
        self.endpoint = endpoint
        self.provider = provider

    def push(self, package):
        return self.endpoint.invoke(self.provider, "put", (package,))
