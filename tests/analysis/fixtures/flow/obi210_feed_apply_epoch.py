"""Seeded defect: a feed frame applied with no epoch check (OBI210).

``MirrorTable.ingest`` applies every frame in a batch without ever
comparing the batch's epoch against its own — after a failover, a
deposed primary still pushing frames at the old epoch would overwrite
state the new primary owns (a split-brain write).  ``ingest_checked``
is the guarded shape the rule accepts: the epoch comparison precedes
every apply in the same function.
"""


def apply_feed_frame(site, frame):
    site.objects[frame.oid] = frame.payload
    return True


class MirrorTable:
    def __init__(self):
        self.objects = {}
        self.epoch = 1

    def ingest(self, batch):
        applied = 0
        for frame in batch.frames:
            if apply_feed_frame(self, frame):
                applied += 1
        return applied

    def ingest_checked(self, batch):
        if batch.epoch < self.epoch:
            return 0
        applied = 0
        for frame in batch.frames:
            if apply_feed_frame(self, frame):
                applied += 1
        return applied
