"""Seeded defect: wire state holding a lock (OBI303).

A registered class whose instances guard their own mutation with a
``threading.Lock`` stored on the instance.  Under reflective dict state
every attribute travels, so the first get/put that serializes an
instance dies on the lock — at runtime, on the hot path.
"""

import threading

from repro.serial.registry import global_registry


class TrackedCounter:
    def __init__(self, value=0):
        self.value = value
        self.lock = threading.Lock()  # wire-visible: dict state ships every attr


global_registry.register(TrackedCounter, name="fixture.TrackedCounter")
