"""Seeded defect: a new tag byte collides with a committed one (OBI301).

A vendored tag table where DELTA was added by picking "the next number"
without checking — 0x05 is already STR, so every string frame and every
delta frame now dispatch to whichever decoder branch wins.
"""

NONE = 0x00
FALSE = 0x01
TRUE = 0x02
INT = 0x03
FLOAT = 0x04
STR = 0x05
BYTES = 0x06
DELTA = 0x05  # collides with STR
