"""Seeded defect: a committed state tuple was reordered (OBI302).

This module re-registers the ``core.ObjectMeta`` wire name with
``version`` and ``interface`` swapped relative to the committed
``.github/wire-baseline.json`` — a refactor that "tidied" the field
order.  State tuples are positional: every deployed peer now decodes a
version where it expects an interface name.
"""

from repro.serial.registry import global_registry


class ObjectMeta:
    def __init__(self, obi_id="", interface="", version=1, provider=None, cluster_root=None):
        self.obi_id = obi_id
        self.interface = interface
        self.version = version
        self.provider = provider
        self.cluster_root = cluster_root

    def __getstate__(self):
        return (self.obi_id, self.version, self.interface, self.provider, self.cluster_root)

    def __setstate__(self, state):
        (self.obi_id, self.version, self.interface, self.provider, self.cluster_root) = state


global_registry.register(ObjectMeta, name="core.ObjectMeta")
