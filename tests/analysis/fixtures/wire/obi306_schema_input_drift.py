"""Seeded defect: a compiled class with a branch-only schema field (OBI306).

``derive_schema`` walks every ``self.X = ...`` in ``__init__`` — also
the ones inside conditionals — so ``bonus`` enters the compiled wire
schema.  But an instance built with ``premium=False`` never assigns it:
the reflective path ships a state dict without ``bonus`` while the
compiled codec's schema hash promises it, and the two paths disagree
about the class's wire shape.
"""

import obiwan


@obiwan.compile
class Account:
    def __init__(self, owner: str = "", premium: bool = False):
        self.owner = owner
        self.premium = premium
        if premium:
            self.bonus = 100  # schema-visible, but only on this branch
