"""Seeded defect: a widened state tuple emitted unconditionally (OBI305).

``WideMode`` copied the ``*rest`` compatibility unpack from
``ReplicationMode`` but not the discipline that makes it work: the
getter always returns the 4-tuple, so even peers that never set
``turbo`` ship the widened frame — frames stop being byte-identical
across versions and the capability negotiation can no longer tell a
pre-widening peer from an opted-out one.
"""

from repro.serial.registry import global_registry


class WideMode:
    def __init__(self, chunk=1, depth=0, clustered=False, turbo=0):
        self.chunk = chunk
        self.depth = depth
        self.clustered = clustered
        self.turbo = turbo


def _mode_state(mode):
    # Defect: no ``if mode.turbo:`` guard — the wide tuple always ships.
    return (mode.chunk, mode.depth, mode.clustered, mode.turbo)


def _mode_set_state(mode, state):
    chunk, depth, clustered, *rest = state
    mode.chunk = chunk
    mode.depth = depth
    mode.clustered = clustered
    mode.turbo = rest[0] if rest else 0


global_registry.register(
    WideMode,
    name="fixture.WideMode",
    get_state=_mode_state,
    set_state=_mode_set_state,
)
