"""Seeded defect: a negotiated verb with no downgrade path (OBI304).

``get_schema`` is not part of the seed protocol, so only upgraded peers
implement it — but this caller neither wraps the invoke in
``negotiation.probe()`` nor handles a ``NeedFull`` reply.  Against an
older site the RPC hard-fails instead of falling back.
"""


class SchemaFetcher:
    def __init__(self, endpoint):
        self.endpoint = endpoint

    def fetch(self, ref):
        return self.endpoint.invoke(ref, "get_schema", ())
