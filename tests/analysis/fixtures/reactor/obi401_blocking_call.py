"""Seeded defect for OBI401: blocking calls on the reactor loop thread.

Every construct below parks the one event-loop thread all connections
share — a sleep, a blocking-mode socket read, a thread join, a lock
acquire and a coroutine that sleeps instead of awaiting.  obilint must
flag each, and nothing else.
"""

import socket
import threading
import time

from repro.simnet.reactor import loop_callback


class SleepyMuxer:
    """A reactor connection whose callbacks violate the loop discipline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sock = socket.socket()
        self._worker = threading.Thread(target=self._drain)
        self._draining = False

    def _drain(self) -> None:
        """Worker-thread body; blocking is fine here."""

    @loop_callback
    def on_events(self, mask: int) -> bytes:
        time.sleep(0.05)  # parks the shared loop for 50 ms
        return self._sock.recv(4096)  # module never calls setblocking(False)

    @loop_callback
    def on_flush_command(self) -> None:
        with self._lock:  # contended acquire convoys every connection
            self._draining = True
        self._worker.join()  # waits on another thread from the loop


async def pump(conn: SleepyMuxer) -> None:
    time.sleep(0.01)  # blocks the coroutine's event loop instead of awaiting
