"""Positive/negative cases for the protocol-super-call rule (OBI105)."""


class TestProtocolSuperCall:
    def test_override_without_super_flagged(self, lint):
        findings = lint(
            """
            from repro.consistency.lease import LeaseConsistency

            class NoisyLease(LeaseConsistency):
                def read(self, replica):
                    return replica
            """,
            rule="OBI105",
        )
        assert len(findings) == 1
        assert "super().read()" in findings[0].message

    def test_write_back_without_super_flagged(self, lint):
        findings = lint(
            """
            from repro.consistency import VectorReplica

            class Audited(VectorReplica):
                def write_back(self, replica):
                    print("writing")
                    return replica
            """,
            rule="OBI105",
        )
        assert len(findings) == 1

    def test_override_with_super_passes(self, lint):
        findings = lint(
            """
            from repro.consistency.lease import LeaseConsistency

            class NoisyLease(LeaseConsistency):
                def read(self, replica):
                    print("reading")
                    return super().read(replica)
            """,
            rule="OBI105",
        )
        assert findings == []

    def test_abstract_base_subclass_exempt(self, lint):
        # ConsistencyProtocol's verbs are abstract: implementing them
        # without super() is the whole point of subclassing it.
        findings = lint(
            """
            from repro.consistency.base import ConsistencyProtocol

            class Fresh(ConsistencyProtocol):
                def read(self, replica):
                    return replica

                def write_back(self, replica):
                    return replica
            """,
            rule="OBI105",
        )
        assert findings == []

    def test_non_verb_methods_exempt(self, lint):
        findings = lint(
            """
            from repro.consistency.lease import LeaseConsistency

            class Extended(LeaseConsistency):
                def remaining_lease(self, replica):
                    return 0.0
            """,
            rule="OBI105",
        )
        assert findings == []
