"""Engine behavior: suppressions, selection, parse failures, reports."""

import textwrap

from repro.analysis import analyze_paths
from repro.analysis.engine import Analyzer
from repro.analysis.rules import ALL_RULES, build_rules
from repro.analysis.suppressions import parse_suppressions

BAD_CLASS = """
from repro import obiwan

@obiwan.compile
class Bad:
    def get(self):
        pass
"""


class TestSuppressions:
    def test_same_line_suppression_by_id(self, lint_report, tmp_path):
        source = """
        from repro import obiwan

        @obiwan.compile
        class Bad:
            def get(self):  # obilint: disable=OBI102 -- legacy wire name, callers migrated in #42
                pass
        """
        report = lint_report(source, rule="OBI102")
        assert report.all_findings() == []
        assert len(report.suppressed) == 1

    def test_same_line_suppression_by_slug(self, lint_report):
        source = """
        from repro import obiwan

        @obiwan.compile
        class Bad:
            def get(self):  # obilint: disable=interface-shadowing -- legacy name
                pass
        """
        report = lint_report(source, rule="OBI102")
        assert report.all_findings() == []

    def test_file_level_suppression(self, lint_report):
        source = """
        # obilint: disable-file=OBI108 -- this module wraps wall time on purpose
        import time

        def a():
            return time.time()

        def b():
            return time.monotonic()
        """
        report = lint_report(source, rule="OBI108")
        assert report.all_findings() == []
        assert len(report.suppressed) == 2

    def test_suppression_only_covers_listed_rule(self, lint_report):
        source = """
        from repro import obiwan

        @obiwan.compile
        class Bad:
            cache = []

            def get(self):  # obilint: disable=OBI106 -- wrong rule id
                pass
        """
        report = lint_report(source)
        assert any(f.rule == "OBI102" for f in report.all_findings())

    def test_strict_requires_justification(self, lint_report):
        source = """
        from repro import obiwan

        @obiwan.compile
        class Bad:
            def get(self):  # obilint: disable=OBI102
                pass
        """
        relaxed = lint_report(source, rule="OBI102")
        assert relaxed.all_findings() == []
        strict = lint_report(source, rule="OBI102", strict=True)
        bare = [f for f in strict.all_findings() if f.rule == "OBI002"]
        assert len(bare) == 1
        assert strict.failed(strict=True)

    def test_parse_multiple_rules_one_comment(self):
        index = parse_suppressions(
            "x = 1  # obilint: disable=OBI101, OBI106 -- generated module\n"
        )
        assert index.matches("OBI101", "unserializable-state", 1)
        assert index.matches("OBI106", "mutable-class-default", 1)
        assert not index.matches("OBI102", "interface-shadowing", 1)


class TestEngine:
    def test_rule_selection(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(textwrap.dedent(BAD_CLASS), encoding="utf-8")
        report = analyze_paths([path], select={"OBI108"})
        assert report.all_findings() == []
        report = analyze_paths([path], select={"OBI102"})
        assert len(report.all_findings()) == 1

    def test_rule_ignore(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(textwrap.dedent(BAD_CLASS), encoding="utf-8")
        report = analyze_paths([path], ignore={"OBI102"})
        assert report.all_findings() == []

    def test_parse_failure_is_error_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        report = analyze_paths([path])
        assert report.failed()
        assert report.all_findings()[0].rule == "OBI001"

    def test_directory_collection_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def broken(:\n", encoding="utf-8")
        files = Analyzer.collect_files([tmp_path])
        assert [f.name for f in files] == ["good.py"]

    def test_missing_path_raises(self, tmp_path):
        import pytest

        with pytest.raises(FileNotFoundError):
            Analyzer(build_rules()).run([tmp_path / "nope"])

    def test_overlapping_paths_deduplicated(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("x = 1\n", encoding="utf-8")
        files = Analyzer.collect_files([tmp_path, path])
        assert len(files) == 1

    def test_clean_report_passes_strict(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("def fine():\n    return 1\n", encoding="utf-8")
        report = analyze_paths([path], strict=True)
        assert not report.failed(strict=True)
        assert report.files_analyzed == 1


class TestCatalog:
    def test_twenty_five_rules_shipped(self):
        assert len(ALL_RULES) == 25
        assert len({rule.id for rule in ALL_RULES}) == 25

    def test_ids_and_names_stable(self):
        catalog = {rule.id: rule.name for rule in ALL_RULES}
        assert catalog == {
            "OBI101": "unserializable-state",
            "OBI102": "interface-shadowing",
            "OBI103": "replica-leak",
            "OBI104": "lock-discipline",
            "OBI105": "protocol-super-call",
            "OBI106": "mutable-class-default",
            "OBI107": "swallowed-exception",
            "OBI108": "nondeterministic-clock",
            "OBI201": "lock-order-cycle",
            "OBI202": "blocking-under-lock",
            "OBI203": "unguarded-state",
            "OBI204": "put-without-source",
            "OBI205": "demand-outside-fault-path",
            "OBI206": "splice-escape",
            "OBI207": "stripe-key-mismatch",
            "OBI208": "stripe-order",
            "OBI209": "snapshot-read-mutation",
            "OBI210": "feed-apply-outside-epoch-check",
            "OBI301": "tag-collision",
            "OBI302": "wire-baseline-drift",
            "OBI303": "unencodable-wire-field",
            "OBI304": "verb-without-fallback",
            "OBI305": "unguarded-widened-tuple",
            "OBI306": "schema-input-drift",
            "OBI401": "blocking-call-in-reactor",
        }

    def test_every_rule_documented(self):
        for rule in ALL_RULES:
            assert rule.description, rule.id
            assert rule.rationale, rule.id
