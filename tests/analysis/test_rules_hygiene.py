"""Positive/negative cases for the hygiene rules (OBI107/OBI108)."""


class TestSwallowedException:
    def test_bare_except_flagged(self, lint):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
            rule="OBI107",
        )
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_base_exception_without_reraise_flagged(self, lint):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except BaseException:
                    return None
            """,
            rule="OBI107",
        )
        assert len(findings) == 1

    def test_base_exception_with_reraise_passes(self, lint):
        findings = lint(
            """
            def risky(cleanup):
                try:
                    return 1
                except BaseException:
                    cleanup()
                    raise
            """,
            rule="OBI107",
        )
        assert findings == []

    def test_swallowed_replication_error_flagged(self, lint):
        findings = lint(
            """
            from repro.util.errors import ReplicationError

            def risky(site):
                try:
                    site.put_back(None)
                except ReplicationError:
                    pass
            """,
            rule="OBI107",
        )
        assert len(findings) == 1
        assert "ReplicationError" in findings[0].message

    def test_handled_replication_error_passes(self, lint):
        findings = lint(
            """
            from repro.util.errors import ReplicationError

            def risky(site, log):
                try:
                    site.put_back(None)
                except ReplicationError as exc:
                    log.warning("put failed: %s", exc)
            """,
            rule="OBI107",
        )
        assert findings == []

    def test_specific_foreign_exception_passes(self, lint):
        findings = lint(
            """
            def risky(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    return ""
            """,
            rule="OBI107",
        )
        assert findings == []


class TestNondeterministicClock:
    def test_time_time_flagged(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_perf_counter_via_from_import_flagged(self, lint):
        findings = lint(
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1

    def test_monotonic_flagged(self, lint):
        findings = lint(
            """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """,
            rule="OBI108",
        )
        assert len(findings) == 1
        assert "time.monotonic" in findings[0].message

    def test_perf_counter_flagged(self, lint):
        findings = lint(
            """
            import time

            def bench():
                return time.perf_counter()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1
        assert "time.perf_counter" in findings[0].message

    def test_system_random_flagged(self, lint):
        findings = lint(
            """
            import random

            def entropy():
                return random.SystemRandom().random()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1
        assert "SystemRandom" in findings[0].message

    def test_system_random_via_from_import_flagged(self, lint):
        findings = lint(
            """
            from random import SystemRandom

            def entropy():
                return SystemRandom().random()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1

    def test_seeded_system_random_still_flagged(self, lint):
        """SystemRandom ignores its seed argument — never replayable."""
        findings = lint(
            """
            import random

            def entropy():
                return random.SystemRandom(42).random()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1

    def test_global_random_flagged(self, lint):
        findings = lint(
            """
            import random

            def jitter():
                return random.random() + random.uniform(0, 1)
            """,
            rule="OBI108",
        )
        assert len(findings) == 2

    def test_unseeded_random_instance_flagged(self, lint):
        findings = lint(
            """
            import random

            def make_rng():
                return random.Random()
            """,
            rule="OBI108",
        )
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_seeded_random_instance_passes(self, lint):
        findings = lint(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            rule="OBI108",
        )
        assert findings == []

    def test_clock_abstraction_passes(self, lint):
        findings = lint(
            """
            def stamp(clock):
                return clock.now()
            """,
            rule="OBI108",
        )
        assert findings == []

    def test_clock_module_itself_exempt(self, tmp_path):
        from repro.analysis import analyze_paths

        clock_dir = tmp_path / "util"
        clock_dir.mkdir()
        path = clock_dir / "clock.py"
        path.write_text(
            "import time\n\ndef now():\n    return time.perf_counter()\n",
            encoding="utf-8",
        )
        report = analyze_paths([path], select={"OBI108"})
        assert report.all_findings() == []
