"""Every seeded-defect fixture under fixtures/wire/ is caught by its rule.

Same contract as the flow corpus: each fixture holds exactly the defect
its OBI3xx rule exists for, and trips *only* that rule even with every
wire rule selected — the precision claim OBI301–306 ship with.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.wire.rules import BASELINE_ENV

FIXTURES = Path(__file__).parent / "fixtures" / "wire"
REPO_BASELINE = Path(__file__).parents[2] / ".github" / "wire-baseline.json"

CASES = [
    ("obi301_tag_collision.py", "OBI301"),
    ("obi302_field_reorder.py", "OBI302"),
    ("obi303_unencodable_field.py", "OBI303"),
    ("obi304_verb_without_fallback.py", "OBI304"),
    ("obi305_unguarded_widened_tuple.py", "OBI305"),
    ("obi306_schema_input_drift.py", "OBI306"),
]

ALL_WIRE = {rule for _fixture, rule in CASES}


@pytest.fixture(autouse=True)
def pinned_baseline(monkeypatch):
    """OBI302 compares against the repo's committed baseline regardless of
    where the test process was started from."""
    monkeypatch.setenv(BASELINE_ENV, str(REPO_BASELINE))


@pytest.mark.parametrize(("fixture", "rule"), CASES)
def test_fixture_detected_by_its_rule(fixture, rule):
    report = analyze_paths([FIXTURES / fixture], select={rule})
    rules_hit = {finding.rule for finding in report.all_findings()}
    assert rule in rules_hit, f"{fixture} not detected by {rule}"


@pytest.mark.parametrize(("fixture", "rule"), CASES)
def test_fixture_trips_exactly_its_rule(fixture, rule):
    report = analyze_paths([FIXTURES / fixture], select=ALL_WIRE)
    assert {finding.rule for finding in report.all_findings()} == {rule}


def test_every_wire_rule_has_a_fixture():
    from repro.analysis.rules import build_rules

    wire_ids = {rule.id for rule in build_rules() if rule.id.startswith("OBI3")}
    assert wire_ids == ALL_WIRE


def test_self_host_is_clean_under_strict():
    """The shipped tree satisfies its own wire contract."""
    src = Path(__file__).parents[2] / "src" / "repro"
    report = analyze_paths([src], select=ALL_WIRE, strict=True)
    assert not report.failed(strict=True), [
        finding.format() for finding in report.all_findings()
    ]


def test_missing_baseline_silences_obi302_only(monkeypatch, tmp_path):
    """Without a committed baseline OBI302 has nothing to enforce — the
    other five rules keep working."""
    monkeypatch.setenv(BASELINE_ENV, str(tmp_path / "nowhere.json"))
    report = analyze_paths([FIXTURES / "obi302_field_reorder.py"], select=ALL_WIRE)
    assert not report.all_findings()
    report = analyze_paths([FIXTURES / "obi301_tag_collision.py"], select=ALL_WIRE)
    assert {finding.rule for finding in report.all_findings()} == {"OBI301"}


def test_wire_findings_stay_suppressible(tmp_path):
    source = (FIXTURES / "obi301_tag_collision.py").read_text(encoding="utf-8")
    patched = source.replace(
        "DELTA = 0x05  # collides with STR",
        "DELTA = 0x05  # obilint: disable=OBI301 -- test fixture",
    )
    path = tmp_path / "suppressed_tags.py"
    path.write_text(patched, encoding="utf-8")
    report = analyze_paths([path], select={"OBI301"})
    assert not report.findings
    assert any(finding.rule == "OBI301" for finding in report.suppressed)
