"""Positive/negative cases for the lock-discipline rule (OBI104)."""


class TestSendUnderLock:
    def test_send_while_holding_lock_flagged(self, lint):
        findings = lint(
            """
            import threading

            lock = threading.Lock()

            def push(sock, data):
                with lock:
                    sock.sendall(data)
            """,
            rule="OBI104",
        )
        assert len(findings) == 1
        assert "sendall" in findings[0].message

    def test_rmi_call_under_self_lock_flagged(self, lint):
        findings = lint(
            """
            import threading

            class Endpoint:
                def __init__(self):
                    self._table_lock = threading.Lock()

                def update(self, peer, payload):
                    with self._table_lock:
                        peer.call("site-b", payload)
            """,
            rule="OBI104",
        )
        assert len(findings) == 1

    def test_send_after_lock_released_passes(self, lint):
        findings = lint(
            """
            import threading

            lock = threading.Lock()

            def push(sock, data):
                with lock:
                    staged = bytes(data)
                sock.sendall(staged)
            """,
            rule="OBI104",
        )
        assert findings == []

    def test_nested_function_not_considered_held(self, lint):
        findings = lint(
            """
            import threading

            lock = threading.Lock()

            def make_sender(sock):
                with lock:
                    def later(data):
                        sock.sendall(data)
                    return later
            """,
            rule="OBI104",
        )
        assert findings == []


class TestLockOrdering:
    def test_abba_order_flagged_as_error(self, lint):
        findings = lint(
            """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def one():
                with lock_a:
                    with lock_b:
                        pass

            def two():
                with lock_b:
                    with lock_a:
                        pass
            """,
            rule="OBI104",
        )
        assert len(findings) == 1
        assert str(findings[0].severity) == "error"
        assert "both orders" in findings[0].message

    def test_consistent_order_passes(self, lint):
        findings = lint(
            """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def one():
                with lock_a:
                    with lock_b:
                        pass

            def two():
                with lock_a:
                    with lock_b:
                        pass
            """,
            rule="OBI104",
        )
        assert findings == []

    def test_non_lock_contexts_ignored(self, lint):
        findings = lint(
            """
            def copy(src_path, dst, data):
                with open(src_path) as fh:
                    dst.sendall(fh.read())
            """,
            rule="OBI104",
        )
        assert findings == []
