"""obiwire: extraction, spec canonicalization, diff, and CLI (PR 8).

The extraction tests run against the real tree, so they double as the
contract's regression net: if a refactor moves a registration or breaks
the widened-tuple discipline, the extracted spec changes here first.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.engine import ModuleSource
from repro.analysis.wire.cli import main as obiwire_main
from repro.analysis.wire.diff import diff_specs, has_breaking
from repro.analysis.wire.extract import extract_modules
from repro.analysis.wire.spec import WireClass, WireField, WireSpec, WireVerb

REPO = Path(__file__).parents[2]
SRC = REPO / "src" / "repro"


@pytest.fixture(scope="module")
def tree_spec() -> WireSpec:
    from repro.analysis.engine import Analyzer

    files = Analyzer.collect_files([SRC])
    return extract_modules([ModuleSource.parse(path) for path in files])


# ----------------------------------------------------------------------
# extraction over the real tree
# ----------------------------------------------------------------------
class TestExtraction:
    def test_tag_table_complete(self, tree_spec):
        from repro.serial import tags

        expected = {
            name: value
            for name, value in vars(tags).items()
            if name.isupper() and isinstance(value, int)
        }
        assert tree_spec.tags == expected

    def test_every_registered_class_extracted(self, tree_spec):
        # The live registry is the ground truth for what static
        # extraction must have found (dynamic/porting entries excluded —
        # they have no literal wire name to extract).
        expected = {
            "core.ObjectMeta",
            "core.ReplicaPackage",
            "core.PutEntry",
            "core.PutPackage",
            "core.PutDeltaEntry",
            "core.PutDeltaPackage",
            "core.RefreshDeltaRequest",
            "core.RefreshDeltaReply",
            "core.ReplicationMode",
            "core.Interface",
            "rmi.InvokeRequest",
            "rmi.InvokeSuccess",
            "rmi.InvokeFailure",
            "rmi.InvokeBatchRequest",
            "rmi.InvokeBatchResponse",
            "rmi.NeedFull",
            "rmi.RemoteRef",
            "consistency.VersionVector",
        }
        assert expected <= set(tree_spec.classes)

    def test_object_meta_field_order(self, tree_spec):
        meta = tree_spec.classes["core.ObjectMeta"]
        assert [f.name for f in meta.fields] == [
            "obi_id", "interface", "version", "provider", "cluster_root",
        ]
        assert not meta.optional_tail
        assert all(not f.optional for f in meta.fields)

    def test_replication_mode_widened_tail_with_guards(self, tree_spec):
        mode = tree_spec.classes["core.ReplicationMode"]
        assert mode.custom_state and mode.optional_tail
        by_name = {f.name: f for f in mode.fields}
        assert [f.name for f in mode.fields] == [
            "chunk", "depth", "clustered", "prefetch", "codec",
        ]
        assert not by_name["chunk"].optional
        assert by_name["prefetch"].optional and by_name["prefetch"].guard == "prefetch"
        assert by_name["codec"].optional and by_name["codec"].guard == "codec"

    def test_invoke_request_trace_is_guarded_optional(self, tree_spec):
        request = tree_spec.classes["rmi.InvokeRequest"]
        assert request.optional_tail
        trace = next(f for f in request.fields if f.name == "trace")
        assert trace.optional and trace.guard == "trace"

    def test_passthrough_classes(self, tree_spec):
        for name in ("core.PutPackage", "rmi.InvokeSuccess", "rmi.NeedFull"):
            assert tree_spec.classes[name].state == "passthrough"

    def test_seed_verbs_flagged(self, tree_spec):
        assert tree_spec.verbs["get"].seed
        assert tree_spec.verbs["put"].seed
        assert not tree_spec.verbs["put_delta"].seed

    def test_negotiated_verbs_carry_fallbacks(self, tree_spec):
        for verb in ("put_delta", "get_delta"):
            fallbacks = set(tree_spec.verbs[verb].fallbacks)
            assert "probe:delta_sync" in fallbacks, verb
            assert "need_full" in fallbacks, verb

    def test_extraction_is_deterministic(self, tree_spec):
        from repro.analysis.engine import Analyzer

        files = Analyzer.collect_files([SRC])
        again = extract_modules([ModuleSource.parse(path) for path in files])
        assert again.to_json() == tree_spec.to_json()
        assert again.fingerprint() == tree_spec.fingerprint()

    def test_committed_baseline_matches_the_tree(self, tree_spec):
        committed = WireSpec.load(REPO / ".github" / "wire-baseline.json")
        assert committed.fingerprint() == tree_spec.fingerprint(), (
            "the wire contract drifted; regenerate with "
            "'python -m repro.analysis.wire check src/repro --update'"
        )

    def test_spec_roundtrips_through_json(self, tree_spec):
        loaded = WireSpec.from_dict(json.loads(tree_spec.to_json()))
        assert loaded.fingerprint() == tree_spec.fingerprint()
        assert loaded.classes == tree_spec.classes


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _spec(**overrides) -> WireSpec:
    base = WireSpec(
        tags={"NONE": 0, "INT": 3},
        classes={
            "core.Thing": WireClass(
                cls="Thing",
                module="core/thing.py",
                state="tuple",
                fields=(WireField("a"), WireField("b")),
            )
        },
        verbs={"get": WireVerb(seed=True)},
    )
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestDiff:
    def test_identical_specs_have_no_changes(self):
        assert diff_specs(_spec(), _spec()) == []

    def test_tag_value_change_is_breaking(self):
        changes = diff_specs(_spec(), _spec(tags={"NONE": 0, "INT": 4}))
        assert has_breaking(changes)
        assert any(c.category == "tag-value-changed" for c in changes)

    def test_new_tag_is_compatible(self):
        changes = diff_specs(_spec(), _spec(tags={"NONE": 0, "INT": 3, "NEW": 17}))
        assert not has_breaking(changes)
        assert any(c.category == "tag-added" for c in changes)

    def test_field_reorder_is_breaking(self):
        reordered = _spec(
            classes={
                "core.Thing": WireClass(
                    cls="Thing",
                    module="core/thing.py",
                    state="tuple",
                    fields=(WireField("b"), WireField("a")),
                )
            }
        )
        changes = diff_specs(_spec(), reordered)
        assert has_breaking(changes)
        assert any(c.category == "field-reordered" for c in changes)

    def test_required_append_breaking_optional_append_compatible(self):
        def with_tail(optional):
            return _spec(
                classes={
                    "core.Thing": WireClass(
                        cls="Thing",
                        module="core/thing.py",
                        state="tuple",
                        optional_tail=optional,
                        fields=(
                            WireField("a"),
                            WireField("b"),
                            WireField("c", optional=optional, guard="c" if optional else None),
                        ),
                    )
                }
            )

        assert has_breaking(diff_specs(_spec(), with_tail(False)))
        changes = diff_specs(_spec(), with_tail(True))
        assert not has_breaking(changes)
        assert any(c.category == "optional-field-added" for c in changes)

    def test_verb_removal_breaking_fallback_addition_compatible(self):
        gone = _spec(verbs={})
        assert has_breaking(diff_specs(_spec(), gone))
        added = _spec(
            verbs={
                "get": WireVerb(seed=True),
                "get_delta": WireVerb(seed=False, fallbacks=("probe:delta_sync",)),
            }
        )
        assert not has_breaking(diff_specs(_spec(), added))

    def test_new_verb_without_fallback_is_breaking(self):
        added = _spec(
            verbs={"get": WireVerb(seed=True), "zap": WireVerb(seed=False)}
        )
        changes = diff_specs(_spec(), added)
        assert has_breaking(changes)
        assert any(c.category == "verb-without-fallback" for c in changes)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_spec_writes_fingerprinted_json(self, tmp_path, capsys):
        out = tmp_path / "spec.json"
        assert obiwire_main(["spec", str(SRC), "--out", str(out), "--jobs", "4"]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["fingerprint"] == WireSpec.from_dict(payload).fingerprint()
        assert "OBJECT_SCHEMA" in payload["tags"]

    def test_check_matches_committed_baseline(self, capsys):
        code = obiwire_main(
            ["check", str(SRC), "--baseline", str(REPO / ".github" / "wire-baseline.json")]
        )
        assert code == 0
        assert "matches baseline" in capsys.readouterr().out

    def test_check_fails_on_drift_and_update_repairs(self, tmp_path, capsys):
        stale = tmp_path / "wire-baseline.json"
        spec = WireSpec.load(REPO / ".github" / "wire-baseline.json")
        spec.tags["OBJECT_SCHEMA"] = 0x2A
        stale.write_text(spec.to_json(), encoding="utf-8")
        assert obiwire_main(["check", str(SRC), "--baseline", str(stale)]) == 1
        out = capsys.readouterr().out
        assert "drifted" in out and "tag-value-changed" in out
        assert obiwire_main(["check", str(SRC), "--baseline", str(stale), "--update"]) == 0
        assert obiwire_main(["check", str(SRC), "--baseline", str(stale)]) == 0

    def test_check_missing_baseline_is_usage_error(self, tmp_path, capsys):
        code = obiwire_main(
            ["check", str(SRC), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 2

    def test_diff_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(_spec().to_json(), encoding="utf-8")
        new.write_text(_spec().to_json(), encoding="utf-8")
        assert obiwire_main(["diff", str(old), str(new)]) == 0
        broken = _spec(tags={"NONE": 1, "INT": 3})
        new.write_text(broken.to_json(), encoding="utf-8")
        assert obiwire_main(["diff", str(old), str(new)]) == 1

    def test_diff_json_format(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(_spec().to_json(), encoding="utf-8")
        new.write_text(
            _spec(tags={"NONE": 0, "INT": 3, "NEW": 9}).to_json(), encoding="utf-8"
        )
        assert obiwire_main(["diff", str(old), str(new), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breaking"] is False
        assert payload["changes"][0]["category"] == "tag-added"

    def test_jobs_parallel_spec_is_identical(self, tmp_path):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        assert obiwire_main(["spec", str(SRC), "--out", str(serial)]) == 0
        assert obiwire_main(["spec", str(SRC), "--out", str(parallel), "--jobs", "8"]) == 0
        assert serial.read_text() == parallel.read_text()
