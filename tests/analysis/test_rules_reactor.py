"""Unit tests for OBI401 (blocking-call-in-reactor)."""

from __future__ import annotations


class TestLoopCallbackScope:
    def test_sleep_in_loop_callback_flagged(self, lint):
        findings = lint(
            """
            import time
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(mask):
                time.sleep(1.0)
            """,
            rule="OBI401",
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_undecorated_helper_not_flagged(self, lint):
        findings = lint(
            """
            import time

            def worker_body():
                time.sleep(1.0)
            """,
            rule="OBI401",
        )
        assert findings == []

    def test_nested_def_runs_elsewhere(self, lint):
        findings = lint(
            """
            import time
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(mask):
                def deferred():
                    time.sleep(1.0)
                return deferred
            """,
            rule="OBI401",
        )
        assert findings == []

    def test_async_def_counts_as_loop_hosted(self, lint):
        findings = lint(
            """
            import time

            async def pump():
                time.sleep(0.1)
            """,
            rule="OBI401",
        )
        assert len(findings) == 1
        assert "coroutine" in findings[0].message


class TestSocketModes:
    def test_recv_flagged_in_blocking_module(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(sock):
                return sock.recv(4096)
            """,
            rule="OBI401",
        )
        assert len(findings) == 1

    def test_recv_exempt_when_module_goes_nonblocking(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            def setup(sock):
                sock.setblocking(False)

            @loop_callback
            def on_events(sock):
                return sock.recv(4096)
            """,
            rule="OBI401",
        )
        assert findings == []

    def test_connect_flagged_even_nonblocking(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            def setup(sock):
                sock.setblocking(False)

            @loop_callback
            def on_events(sock, addr):
                sock.connect(addr)
            """,
            rule="OBI401",
        )
        assert len(findings) == 1


class TestWaitsAndLocks:
    def test_thread_join_flagged(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(worker):
                worker.join()
            """,
            rule="OBI401",
        )
        assert len(findings) == 1

    def test_string_literal_join_exempt(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(parts):
                return ", ".join(parts)
            """,
            rule="OBI401",
        )
        assert findings == []

    def test_with_lock_flagged(self, lint):
        findings = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(self):
                with self._lock:
                    self._n += 1
            """,
            rule="OBI401",
        )
        assert len(findings) == 1
        assert "lock acquired" in findings[0].message

    def test_acquire_flagged_unless_nonblocking(self, lint):
        flagged = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(self):
                self._lock.acquire()
            """,
            rule="OBI401",
        )
        assert len(flagged) == 1
        clean = lint(
            """
            from repro.simnet.reactor import loop_callback

            @loop_callback
            def on_events(self):
                return self._lock.acquire(blocking=False)
            """,
            rule="OBI401",
        )
        assert clean == []
