"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.costs import CostModel
from repro.core.runtime import Site, World


@pytest.fixture
def world():
    """A deterministic two-way loopback world with the calibrated costs."""
    with World.loopback() as w:
        yield w


@pytest.fixture
def zero_world():
    """A loopback world with all CPU costs zeroed (timing-free tests)."""
    with World.loopback(costs=CostModel.zero()) as w:
        yield w


@pytest.fixture
def sites(world) -> tuple[Site, Site]:
    """(provider, consumer) on the calibrated world."""
    return world.create_site("S2"), world.create_site("S1")


@pytest.fixture
def zsites(zero_world) -> tuple[Site, Site]:
    """(provider, consumer) on the zero-cost world."""
    return zero_world.create_site("S2"), zero_world.create_site("S1")
