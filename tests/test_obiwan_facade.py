"""Tests for the public facade: what `from repro import obiwan` promises."""

import pytest

from repro import obiwan


class TestSurface:
    def test_all_names_resolve(self):
        for name in obiwan.__all__:
            assert hasattr(obiwan, name), name

    def test_compile_aliases_compile_class(self):
        assert obiwan.compile is obiwan.compile_class

    def test_link_presets_exported(self):
        assert obiwan.LAN_10MBPS.bandwidth_bps == 10e6
        assert obiwan.WIRELESS_GPRS.latency_s > obiwan.LAN_10MBPS.latency_s

    def test_errors_catchable_from_facade(self):
        assert issubclass(obiwan.EncapsulationError, obiwan.ObiwanError)
        assert issubclass(obiwan.DisconnectedError, obiwan.ObiwanError)

    def test_package_root_reexports(self):
        import repro

        assert repro.obiwan is obiwan
        assert isinstance(repro.__version__, str)


class TestDocstringQuickstartActuallyRuns:
    def test_module_docstring_scenario(self):
        """The scenario in obiwan's module docstring, executed."""

        @obiwan.compile
        class FacadeAgenda:
            def __init__(self):
                self.entries = []

            def add(self, text):
                self.entries.append(text)

            def all(self):
                return list(self.entries)

        world = obiwan.World.loopback()
        office = world.create_site("office-pc")
        pda = world.create_site("pda")

        master = FacadeAgenda()
        office.export(master, name="facade-agenda")

        stub = pda.remote_stub("facade-agenda")
        stub.add("via rmi")
        assert master.entries == ["via rmi"]

        replica = pda.replicate("facade-agenda")
        replica.add("via replica")
        pda.put_back(replica)
        assert master.entries == ["via rmi", "via replica"]

    def test_modes_from_facade(self):
        assert obiwan.Incremental(3).chunk == 3
        assert obiwan.Transitive().unbounded
        assert obiwan.Cluster(size=4).clustered

    def test_is_obiwan_and_interface_of(self):
        @obiwan.compile
        class FacadeProbe:
            def poke(self):
                return "ok"

        probe = FacadeProbe()
        assert obiwan.is_obiwan(probe)
        assert "poke" in obiwan.interface_of(probe)
        assert obiwan.obi_id_of(probe) == obiwan.obi_id_of(probe)
