"""Trace assembly, critical-path extraction, and time attribution on
hand-built span sets with known answers."""

from __future__ import annotations

import pytest

from repro.obs.assemble import Trace, assemble_traces, gather_spans
from repro.obs.critical_path import critical_path, slow_spans, time_by_kind
from repro.obs.spans import Span, SpanCollector, next_seq


def span(
    span_id: str,
    parent_id: str | None,
    kind: str,
    start: float,
    duration: float,
    *,
    site: str = "S1",
    trace_id: str = "trace:t",
) -> Span:
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        kind=kind,
        name=kind,
        site=site,
        start=start,
        duration=duration,
        seq=next_seq(),
    )


@pytest.fixture
def cascade() -> list[Span]:
    """A two-site fault cascade with a known critical path.

    fault(0..10) on S1 contains demand(1..9) then splice(9.5..10);
    demand contains rmi.invoke(1..6) — which covers the provider-side
    serve(2..5) on S2 — then integrate(6..9).  Every span here bounds
    the cascade, so the critical path is the whole chain in
    chronological order; ``test_overlapped_sibling_stays_off_path``
    covers the pruning case.
    """
    return [
        span("f", None, "fault", 0.0, 10.0),
        span("d", "f", "demand", 1.0, 8.0),
        span("i", "d", "rmi.invoke", 1.0, 5.0),
        span("s", "i", "rmi.serve", 2.0, 3.0, site="S2"),
        span("g", "d", "integrate", 6.0, 3.0),
        span("p", "f", "splice", 9.5, 0.5),
    ]


class TestGather:
    def test_pools_collectors_and_iterables(self):
        collector = SpanCollector()
        a, b = span("a", None, "x", 0.0, 1.0), span("b", None, "y", 1.0, 1.0)
        collector.record(a)
        pool = gather_spans(collector, [b])
        assert pool == [a, b]


class TestTrace:
    def test_tree_shape(self, cascade):
        trace = Trace("trace:t", cascade)
        assert trace.root.kind == "fault"
        assert [child.kind for child in trace.children(trace.root)] == [
            "demand",
            "splice",
        ]
        assert [(depth, s.kind) for depth, s in trace.walk()] == [
            (0, "fault"),
            (1, "demand"),
            (2, "rmi.invoke"),
            (3, "rmi.serve"),
            (2, "integrate"),
            (1, "splice"),
        ]

    def test_sites_and_counts(self, cascade):
        trace = Trace("trace:t", cascade)
        assert trace.sites() == ["S1", "S2"]
        assert trace.count_by_kind()["fault"] == 1
        assert trace.find(site="S2")[0].kind == "rmi.serve"
        assert trace.duration == pytest.approx(10.0)
        assert len(trace) == 6

    def test_orphans_become_roots(self):
        orphan = span("o", "never-arrived", "integrate", 5.0, 1.0)
        trace = Trace("trace:t", [span("r", None, "fault", 0.0, 2.0), orphan])
        assert len(trace.roots) == 2
        assert trace.root.kind == "fault"  # earliest root wins

    def test_empty_trace_has_no_root(self):
        with pytest.raises(ValueError):
            Trace("trace:t", []).root

    def test_render_marks_errors(self, cascade):
        cascade[3].status = "error"
        text = Trace("trace:t", cascade).render()
        assert "sites=S1,S2" in text
        assert "!error" in text

    def test_assemble_groups_by_trace_id(self, cascade):
        other = span("z", None, "fault", -1.0, 0.5, trace_id="trace:u")
        traces = assemble_traces(cascade + [other])
        assert [t.trace_id for t in traces] == ["trace:u", "trace:t"]


class TestCriticalPath:
    def test_backward_walk_finds_the_bounding_chain(self, cascade):
        path = critical_path(Trace("trace:t", cascade))
        assert [s.kind for s in path.spans] == [
            "fault",
            "demand",
            "rmi.invoke",
            "rmi.serve",
            "integrate",
            "splice",
        ]
        assert path.duration == pytest.approx(10.0)
        assert "critical path" in path.render()
        assert len(path) == 6

    def test_overlapped_sibling_stays_off_path(self):
        spans = [
            span("r", None, "fault", 0.0, 10.0),
            span("a", "r", "demand", 0.0, 10.0),
            span("b", "r", "refresh", 0.0, 5.0),  # fully overlapped by a
        ]
        path = critical_path(Trace("trace:t", spans))
        assert [s.span_id for s in path.spans] == ["r", "a"]

    def test_empty_trace_yields_empty_path(self):
        assert critical_path(Trace("trace:t", [])).spans == []

    def test_self_time_attribution(self, cascade):
        totals = time_by_kind(cascade)
        # fault 10 − (demand 8 + splice 0.5); demand 8 − (invoke 5 + integrate 3)
        assert totals["fault"] == pytest.approx(1.5)
        assert totals["demand"] == pytest.approx(0.0)
        assert totals["rmi.invoke"] == pytest.approx(2.0)  # the wire time
        assert totals["rmi.serve"] == pytest.approx(3.0)
        # descending order, no double counting
        assert sum(totals.values()) == pytest.approx(10.0)
        assert list(totals)[0] == "rmi.serve"

    def test_skew_clips_to_zero(self):
        spans = [
            span("r", None, "fault", 0.0, 1.0),
            span("c", "r", "demand", 0.0, 2.0),  # child outlives parent (skew)
        ]
        totals = time_by_kind(spans)
        assert totals["fault"] == 0.0

    def test_slow_spans_sorted_slowest_first(self, cascade):
        flagged = slow_spans(cascade, 4.0)
        assert [s.kind for s in flagged] == ["fault", "demand", "rmi.invoke"]
