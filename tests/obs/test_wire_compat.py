"""Trace-context wire compatibility.

The trace field follows the prefetch precedent: an untraced request
serializes to the legacy 4-tuple — byte-identical to what a pre-tracing
peer emits and expects — and the 5-tuple only appears when a caller
actually stamps context.  Mixed deployments (traced consumer against
untraced provider, and the reverse) must interoperate unchanged.
"""

from __future__ import annotations

from repro.core.interfaces import Incremental
from repro.rmi.protocol import InvokeRequest
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from tests.models import make_chain


class TestFrameCompat:
    def test_untraced_request_keeps_the_legacy_state_shape(self):
        request = InvokeRequest("obj:1", "get", (1,), {"k": 2})
        state = request.__getstate__()
        assert len(state) == 4  # what a pre-tracing decoder expects

    def test_untraced_request_bytes_identical_to_legacy_encoding(self):
        with_field = InvokeRequest("obj:1", "get", (1,), {"k": 2})
        explicit_none = InvokeRequest("obj:1", "get", (1,), {"k": 2}, trace=None)
        assert Encoder().encode(with_field) == Encoder().encode(explicit_none)

    def test_traced_request_widens_to_five_and_round_trips(self):
        request = InvokeRequest("obj:1", "get", (), {}, trace=("trace:7", "span:9"))
        assert len(request.__getstate__()) == 5
        decoded = Decoder().decode(Encoder().encode(request))
        assert decoded.trace == ("trace:7", "span:9")
        assert decoded.object_id == "obj:1"

    def test_legacy_four_tuple_decodes_with_trace_none(self):
        """A frame from a peer that predates tracing installs trace=None."""
        request = InvokeRequest.__new__(InvokeRequest)
        request.__setstate__(("obj:1", "get", (1,), {"k": 2}))
        assert request.trace is None
        assert request.args == (1,)

    def test_untraced_caller_never_stamps(self):
        decoded = Decoder().decode(
            Encoder().encode(InvokeRequest("obj:1", "get"))
        )
        assert decoded.trace is None


class TestMixedDeployment:
    def _walk(self, consumer, head) -> list[int]:
        seen = [head.get_index()]
        node = head.get_next()
        while node is not None:
            seen.append(node.get_index())
            node = node.get_next()
        return seen

    def test_traced_consumer_against_untraced_provider(self, zsites):
        provider, consumer = zsites
        collector = consumer.enable_tracing()
        assert not provider.tracing_enabled

        provider.export(make_chain(4), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1))
        assert self._walk(consumer, head) == [0, 1, 2, 3]

        kinds = {span.kind for span in collector.spans()}
        assert "replicate" in kinds
        assert "fault" in kinds
        assert "rmi.invoke" in kinds

    def test_untraced_consumer_against_traced_provider(self, zsites):
        provider, consumer = zsites
        collector = provider.enable_tracing()
        assert not consumer.tracing_enabled

        provider.export(make_chain(4), name="chain")
        head = consumer.replicate("chain", mode=Incremental(1))
        assert self._walk(consumer, head) == [0, 1, 2, 3]

        # The untraced consumer never stamps context, so no rmi.serve
        # wrapper fires at the provider — the requests look exactly
        # legacy.  The provider's own local work (package builds) still
        # records, each as its own root trace.
        recorded = collector.spans()
        assert {span.kind for span in recorded} == {"build_package"}
        assert all(span.parent_id is None for span in recorded)

    def test_disable_tracing_restores_the_null_path(self, zsites):
        provider, consumer = zsites
        collector = consumer.enable_tracing()
        provider.export(make_chain(3), name="chain")
        consumer.replicate("chain", mode=Incremental(1))
        recorded = len(collector.spans())
        assert recorded > 0

        consumer.disable_tracing()
        assert not consumer.tracing_enabled
        provider.export(make_chain(3), name="chain2")
        head = consumer.replicate("chain2", mode=Incremental(1))
        assert head.get_index() == 0
        assert len(collector.spans()) == recorded  # nothing new recorded

    def test_enable_tracing_is_idempotent(self, zsites):
        _provider, consumer = zsites
        first = consumer.enable_tracing()
        second = consumer.enable_tracing()
        assert first is second
