"""Exporters: JSONL round-trip and Chrome trace_event structure."""

from __future__ import annotations

import json

from repro.obs.export import chrome_trace, from_jsonl, to_chrome_json, to_jsonl
from repro.obs.spans import Span, next_seq


def make_spans() -> list[Span]:
    return [
        Span(
            trace_id="trace:t",
            span_id="span:1",
            parent_id=None,
            kind="fault",
            name="obj:1",
            site="S1",
            start=0.001,
            duration=0.004,
            attributes={"local_hit": False},
            seq=next_seq(),
        ),
        Span(
            trace_id="trace:t",
            span_id="span:2",
            parent_id="span:1",
            kind="rmi.serve",
            name="demand",
            site="S2",
            start=0.002,
            duration=0.002,
            status="error",
            attributes={"error": "KeyError"},
            seq=next_seq(),
        ),
    ]


class TestJsonl:
    def test_one_object_per_line(self):
        text = to_jsonl(make_spans())
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "fault"

    def test_round_trip_preserves_everything_observable(self):
        original = make_spans()
        restored = from_jsonl(to_jsonl(original))
        assert [s.jsonable() for s in restored] == [s.jsonable() for s in original]

    def test_blank_lines_skipped(self):
        text = to_jsonl(make_spans()) + "\n\n"
        assert len(from_jsonl(text)) == 2

    def test_non_json_attribute_values_stringified(self):
        spans = make_spans()
        spans[0].attributes["obj"] = object()
        restored = from_jsonl(to_jsonl(spans))  # must not raise
        assert isinstance(restored[0].attributes["obj"], str)


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(make_spans())
        assert doc["displayTimeUnit"] == "ms"
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(metadata) == 2  # one process_name per site
        assert len(complete) == 2
        assert {m["args"]["name"] for m in metadata} == {"site S1", "site S2"}

    def test_sites_get_stable_distinct_pids(self):
        doc = chrome_trace(make_spans())
        by_site = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert by_site == {"site S1": 1, "site S2": 2}

    def test_event_carries_span_identity_in_microseconds(self):
        doc = chrome_trace(make_spans())
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["name"] == "obj:1"
        assert event["cat"] == "fault"
        assert event["ts"] == 1000.0  # 0.001 s -> µs
        assert event["dur"] == 4000.0
        assert event["args"]["trace_id"] == "trace:t"
        assert event["args"]["span_id"] == "span:1"
        assert "parent_id" not in event["args"]  # roots omit it
        child = doc["traceEvents"][-1]
        assert child["args"]["parent_id"] == "span:1"
        assert child["args"]["status"] == "error"

    def test_to_chrome_json_is_valid_json(self):
        doc = json.loads(to_chrome_json(make_spans()))
        assert len(doc["traceEvents"]) == 4
