"""End-to-end acceptance: the 3-site traced fault cascade.

Drives ``obitrace record``'s workload (S1 masters, S2 replicates and
relays, S3 replicates through S2) and checks the assembled cross-site
trace against independent ground truth: the fault-path stats the sites
already keep, the REQUEST frames the network recorder saw, and the
structure of the known cascade.  Then exercises the CLI itself.
"""

from __future__ import annotations

import json

import pytest

from repro.core.telemetry import snapshot
from repro.obs.cli import main, record_cascade
from repro.obs.critical_path import critical_path
from repro.obs.export import to_chrome_json

LENGTH = 8


@pytest.fixture(scope="module")
def recording():
    return record_cascade(length=LENGTH)


def test_one_cross_site_trace(recording):
    trace = recording.trace
    assert trace.root.kind == "workload"
    assert trace.sites() == ["S2", "S1", "S3"]
    assert recording.sums == {
        "S2": sum(range(LENGTH)),
        "S3": sum(range(LENGTH)),
    }


def test_span_counts_match_the_known_cascade(recording):
    counts = recording.trace.count_by_kind()
    # Chunk-1 walks: each site past the head faults once per remaining node.
    assert counts["fault"] == 2 * (LENGTH - 1)
    assert counts["demand"] == 2 * (LENGTH - 1)
    assert counts["splice"] == 2 * (LENGTH - 1)
    # Two replications, each one package; every demand builds one more.
    assert counts["build_package"] == 2 + 2 * (LENGTH - 1)
    assert counts["integrate"] == 2 + 2 * (LENGTH - 1)
    assert counts["replicate"] == 2
    assert counts["workload"] == 1


def test_counts_agree_with_fault_path_stats(recording):
    """The trace and the sites' own counters describe the same run."""
    by_site = {
        site: len(recording.trace.find(kind="fault", site=site))
        for site in ("S2", "S3")
    }
    assert by_site == {"S2": LENGTH - 1, "S3": LENGTH - 1}


def test_fault_spans_match_site_telemetry(zsites):
    """Per-site fault spans equal the site's own faults_resolved counter."""
    provider, consumer = zsites
    collector = consumer.enable_tracing()
    from repro.core.interfaces import Incremental
    from tests.models import make_chain

    provider.export(make_chain(5), name="chain")
    node = consumer.replicate("chain", mode=Incremental(1))
    while node is not None:
        node.get_index()
        node = node.get_next()

    fault_spans = [s for s in collector.spans() if s.kind == "fault"]
    assert len(fault_spans) == snapshot(consumer).faults_resolved == 4


def test_frames_reconcile_with_invoke_spans(recording):
    assert recording.request_frames == recording.request_spans
    assert recording.reconciled


def test_critical_path_spans_the_cascade(recording):
    path = critical_path(recording.trace)
    assert path.spans[0].kind == "workload"
    assert path.duration == pytest.approx(recording.trace.root.duration)
    # The path must actually descend through the protocol, not stop at
    # the root: workload -> replicate/fault -> demand -> invoke -> ...
    assert len(path.spans) >= 5
    kinds = {span.kind for span in path.spans}
    assert "rmi.invoke" in kinds


def test_chrome_export_is_valid(recording):
    doc = json.loads(to_chrome_json(recording.spans))
    lanes = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in lanes} == {"site S1", "site S2", "site S3"}
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(recording.spans)


def test_collectors_dropped_nothing(recording):
    for name, collector in recording.collectors.items():
        stats = collector.stats()
        assert stats["dropped"] == 0, name
        assert stats["high_water"] <= stats["recorded"]


def test_cascade_sites_end_consistent():
    """Telemetry agrees after a traced run (tracing is observation only)."""
    recording = record_cascade(length=4)
    assert recording.reconciled
    # Site objects are gone (world closed); the collectors still tell the
    # story — and match what the telemetry render would have shown.
    total = sum(c.stats()["recorded"] for c in recording.collectors.values())
    assert total == len(recording.spans)


class TestCli:
    def test_record_timeline(self, capsys):
        assert main(["record", "--length", "4", "--slow-ms", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "trace trace:" in out
        assert "critical path" in out
        assert "reconciliation" in out and "OK" in out

    def test_record_chrome_to_file(self, tmp_path, capsys):
        target = tmp_path / "cascade.json"
        assert (
            main(
                [
                    "record",
                    "--length",
                    "4",
                    "--format",
                    "chrome",
                    "--out",
                    str(target),
                ]
            )
            == 0
        )
        doc = json.loads(target.read_text())
        assert doc["traceEvents"]

    def test_record_then_analyze_round_trip(self, tmp_path, capsys):
        export = tmp_path / "cascade.jsonl"
        assert (
            main(
                ["record", "--length", "4", "--format", "jsonl", "--out", str(export)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", str(export)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "self time by kind" in out
