"""Thread-local trace context and Tracer/NullTracer semantics."""

from __future__ import annotations

import threading

import pytest

from repro.obs.context import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    annotate,
    current,
    deactivate,
)
from repro.obs.spans import SpanCollector


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def tracer():
    collector = SpanCollector()
    clock = FakeClock()
    tracer = Tracer("S1", collector=collector, clock=clock)
    return tracer, collector, clock


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False

    def test_span_is_one_shared_noop(self):
        a = NULL_TRACER.span("fault", name="x", attr=1)
        b = NULL_TRACER.span("replicate")
        assert a is b  # no allocation per call — the disabled-path contract

    def test_noop_span_protocol(self):
        with NULL_TRACER.span("fault") as span:
            span.set(key="value")
        assert current() is None

    def test_noop_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("fault"):
                raise RuntimeError("boom")


class TestForeignContext:
    def test_activate_sets_current(self):
        token = activate("trace:9", "span:9")
        try:
            assert current() == ("trace:9", "span:9")
        finally:
            deactivate(token)
        assert current() is None

    def test_nested_activates_unwind_in_order(self):
        outer = activate("trace:1", "span:1")
        inner = activate("trace:1", "span:2")
        assert current() == ("trace:1", "span:2")
        deactivate(inner)
        assert current() == ("trace:1", "span:1")
        deactivate(outer)
        assert current() is None

    def test_deactivate_rejects_stale_token(self):
        token = activate("trace:1", "span:1")
        deactivate(token)
        with pytest.raises(RuntimeError):
            deactivate(token)

    def test_deactivate_rejects_garbage_token(self):
        with pytest.raises(RuntimeError):
            deactivate("nonsense")

    def test_annotate_ignores_foreign_context(self):
        token = activate("trace:1", "span:1")
        try:
            annotate(key="value")  # no local span — must be a silent no-op
        finally:
            deactivate(token)

    def test_context_is_thread_local(self):
        seen = []
        token = activate("trace:1", "span:1")
        try:
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join()
        finally:
            deactivate(token)
        assert seen == [None]


class TestTracer:
    def test_root_span_gets_fresh_trace(self, tracer):
        tracer, collector, clock = tracer
        with tracer.span("fault", name="obj:1"):
            clock.t = 0.5
        [span] = collector.spans()
        assert span.kind == "fault"
        assert span.name == "obj:1"
        assert span.site == "S1"
        assert span.parent_id is None
        assert span.trace_id.startswith("trace:")
        assert span.duration == pytest.approx(0.5)
        assert span.status == "ok"

    def test_nested_span_parents_and_shares_trace(self, tracer):
        tracer, collector, _clock = tracer
        with tracer.span("fault"):
            outer = current()
            with tracer.span("demand"):
                inner = current()
        assert outer is not None and inner is not None
        assert outer[0] == inner[0]  # same trace
        demand, fault = collector.spans()  # completion order: inner first
        assert demand.kind == "demand"
        assert demand.parent_id == fault.span_id
        assert fault.parent_id is None
        assert current() is None

    def test_span_under_foreign_context_adopts_it(self, tracer):
        tracer, collector, _clock = tracer
        token = activate("trace:wire", "span:wire")
        try:
            with tracer.span("rmi.serve"):
                pass
        finally:
            deactivate(token)
        [span] = collector.spans()
        assert span.trace_id == "trace:wire"
        assert span.parent_id == "span:wire"

    def test_set_and_annotate_reach_the_live_span(self, tracer):
        tracer, collector, _clock = tracer
        with tracer.span("fault", seed=1) as span:
            span.set(direct=2)
            annotate(ambient=3)  # how low layers (tcp pool) tag the span
        [recorded] = collector.spans()
        assert recorded.attributes == {"seed": 1, "direct": 2, "ambient": 3}

    def test_exception_marks_error_and_propagates(self, tracer):
        tracer, collector, _clock = tracer
        with pytest.raises(KeyError):
            with tracer.span("fault"):
                raise KeyError("missing")
        [span] = collector.spans()
        assert span.status == "error"
        assert span.attributes["error"] == "KeyError"
        assert current() is None

    def test_sibling_spans_order_by_seq(self, tracer):
        tracer, collector, _clock = tracer
        with tracer.span("replicate"):
            with tracer.span("rmi.invoke"):
                pass
            with tracer.span("integrate"):
                pass
        invoke, integrate, _replicate = collector.spans()
        assert invoke.seq < integrate.seq  # zero-cost clock ties break on seq
