"""Protocol conformance at the span level.

tests/integration/test_figure1_protocol.py pins the paper's Figure 1 to
exact *frame* sequences; these tests pin the same operations to exact
*span trees*.  Replication is lookup + get (one package build, one
integrate); an object fault is demand + integrate + splice.  Any extra
or missing span is a protocol regression, not a tracing detail.
"""

from __future__ import annotations

import pytest

from repro.core.interfaces import Incremental
from repro.obs.assemble import assemble_traces, gather_spans
from tests.models import Box, make_chain


def tree(trace) -> list[tuple[int, str, str, str]]:
    """The comparable view: (depth, kind, name, site) per span, DFS."""
    return [(d, s.kind, s.name, s.site) for d, s in trace.walk()]


@pytest.fixture
def traced(zsites):
    provider, consumer = zsites
    return provider, consumer, provider.enable_tracing(), consumer.enable_tracing()


def test_figure1_replicate_span_tree(traced):
    provider, consumer, pc, cc = traced
    provider.export(Box("v"), name="box")
    consumer.replicate("box")

    [trace] = assemble_traces(gather_spans(pc, cc))
    [integrate] = trace.find(kind="integrate")
    box_id = integrate.name  # the master's object id
    assert tree(trace) == [
        (0, "replicate", "box", "S1"),
        (1, "rmi.invoke", "lookup", "S1"),
        (2, "rmi.serve", "lookup", "S2"),
        (1, "rmi.invoke", "get", "S1"),
        (2, "rmi.serve", "get", "S2"),
        (3, "build_package", "build_package", "S2"),
        (1, "integrate", box_id, "S1"),
    ]
    [build] = trace.find(kind="build_package")
    assert build.attributes["root"] == box_id


def test_figure1_fault_span_tree(traced):
    provider, consumer, pc, cc = traced
    provider.export(make_chain(3), name="chain")
    head = consumer.replicate("chain", mode=Incremental(1))
    for collector in (pc, cc):
        collector.drain()  # isolate the fault cascade

    head.get_next().get_index()  # invoking through the frontier proxy faults

    [trace] = assemble_traces(gather_spans(pc, cc))
    target = trace.root.name
    assert tree(trace) == [
        (0, "fault", target, "S1"),
        (1, "demand", target, "S1"),
        (2, "rmi.invoke", "demand", "S1"),
        (3, "rmi.serve", "demand", "S2"),
        (4, "build_package", "build_package", "S2"),
        (2, "integrate", target, "S1"),
        (1, "splice", target, "S1"),
    ]
    # splice reports whether references were rewritten
    [splice] = trace.find(kind="splice")
    assert "rewritten" in splice.attributes


def test_local_hit_fault_is_a_leaf(traced):
    """A coalesced/already-resolved fault short-circuits: no demand."""
    provider, consumer, pc, cc = traced
    provider.export(make_chain(3), name="chain")
    head = consumer.replicate("chain", mode=Incremental(2))
    node = head.get_next()  # chunk of 2 came up front: no network fault
    assert node.get_index() == 1
    faults = [s for s in gather_spans(pc, cc) if s.kind == "fault"]
    assert faults == []  # resolved replicas never enter the fault path


def test_each_root_operation_is_its_own_trace(traced):
    provider, consumer, pc, cc = traced
    provider.export(make_chain(3), name="chain")
    head = consumer.replicate("chain", mode=Incremental(1))
    node = head.get_next()
    assert node.get_index() == 1  # fault 1 resolves the frontier
    assert node.get_next().get_index() == 2  # fault 2, next frontier

    traces = assemble_traces(gather_spans(pc, cc))
    assert [t.root.kind for t in traces] == ["replicate", "fault", "fault"]
    assert len({t.trace_id for t in traces}) == 3
