"""The frame-level bridge: TraceRecorder.filter and .to_spans.

The network recorder and the span collector watch the same run from two
altitudes; the bridge must let the two views join (by request id) and
reconcile (REQUEST frames vs invoke spans).
"""

from __future__ import annotations

from repro.core.interfaces import Incremental
from repro.obs.assemble import assemble_traces
from repro.simnet.message import MessageKind
from repro.simnet.trace import TraceRecorder
from tests.models import make_chain


def _run_walk(world, provider, consumer):
    with TraceRecorder(world.network) as recorder:
        provider.export(make_chain(4), name="chain")
        node = consumer.replicate("chain", mode=Incremental(1))
        while node is not None:
            node.get_index()
            node = node.get_next()
    return recorder


def test_filter_isolates_one_round_trip(world):
    provider, consumer = world.create_site("S2"), world.create_site("S1")
    recorder = _run_walk(world, provider, consumer)
    request = next(
        e for e in recorder.events if e.kind is MessageKind.REQUEST
    )
    frames = recorder.filter(request_id=request.request_id)
    assert [f.kind for f in frames] == [MessageKind.REQUEST, MessageKind.RESPONSE]
    assert frames[0].src == frames[1].dst == "S1"


def test_filter_criteria_compose(world):
    provider, consumer = world.create_site("S2"), world.create_site("S1")
    recorder = _run_walk(world, provider, consumer)
    requests = recorder.filter(kind=MessageKind.REQUEST, src="S1", dst="S2")
    assert len(requests) == len(
        [e for e in recorder.events if e.kind is MessageKind.REQUEST]
    )
    assert recorder.filter(src="nowhere") == []


def test_to_spans_pairs_round_trips(world):
    provider, consumer = world.create_site("S2"), world.create_site("S1")
    recorder = _run_walk(world, provider, consumer)
    spans = recorder.to_spans(trace_id="trace:net")

    round_trips = [s for s in spans if s.kind == "net.round_trip"]
    requests = [e for e in recorder.events if e.kind is MessageKind.REQUEST]
    assert len(round_trips) == len(requests)
    for span in round_trips:
        assert span.trace_id == "trace:net"
        assert span.parent_id is None
        assert span.site == "S1"  # the requester's side
        assert span.duration > 0
        assert span.attributes["dst"] == "S2"
        assert span.attributes["bytes_out"] > 0
        assert span.attributes["bytes_in"] > 0

    # sorted on (start, seq) — assemble-ready
    assert spans == sorted(spans, key=lambda s: (s.start, s.seq))
    [trace] = assemble_traces(spans)
    assert len(trace.roots) == len(spans)


def test_to_spans_reconciles_with_invoke_spans(world):
    """Frame count == span count for the same walk, recorded both ways."""
    provider, consumer = world.create_site("S2"), world.create_site("S1")
    collector = consumer.enable_tracing()
    recorder = _run_walk(world, provider, consumer)

    invoke_spans = [
        s
        for s in collector.spans()
        if s.kind in ("rmi.invoke", "rmi.invoke_batch")
    ]
    net_spans = recorder.to_spans()
    assert len(net_spans) == len(invoke_spans)
    assert all(s.kind == "net.round_trip" for s in net_spans)
