"""SpanCollector counter semantics under concurrency.

The collector sits on the fault path, which exists because resolution is
concurrent — so, like ``FaultPathStats`` (tests/core/test_fault_stats.py),
its bookkeeping must be exact: N recording threads must never lose a
span, overflow drops must be counted one-for-one, and ``stats()`` must be
mutually consistent.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import DEFAULT_CAPACITY, Span, SpanCollector, next_seq

THREADS = 8
PER_THREAD = 300


def make_span(index: int = 0, **overrides: object) -> Span:
    fields: dict = dict(
        trace_id="trace:t",
        span_id=f"span:{index}",
        parent_id=None,
        kind="unit",
        name=f"s{index}",
        site="S1",
        start=float(index),
        seq=next_seq(),
    )
    fields.update(overrides)
    return Span(**fields)


def _hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def run():
        barrier.wait()
        worker()

    pool = [threading.Thread(target=run) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestSpanCollector:
    def test_defaults(self):
        collector = SpanCollector()
        assert collector.capacity == DEFAULT_CAPACITY
        assert collector.stats() == {
            "recorded": 0,
            "dropped": 0,
            "held": 0,
            "high_water": 0,
        }
        assert len(collector) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanCollector(0)

    def test_record_and_snapshot(self):
        collector = SpanCollector()
        first, second = make_span(1), make_span(2)
        assert collector.record(first)
        assert collector.record(second)
        assert collector.spans() == [first, second]
        assert collector.stats()["recorded"] == 2

    def test_overflow_drops_newest_and_counts(self):
        collector = SpanCollector(capacity=2)
        kept = [make_span(1), make_span(2)]
        for span in kept:
            assert collector.record(span)
        assert not collector.record(make_span(3))
        assert collector.spans() == kept  # the cascade's head survives
        assert collector.stats() == {
            "recorded": 2,
            "dropped": 1,
            "held": 2,
            "high_water": 2,
        }

    def test_drain_keeps_run_totals(self):
        collector = SpanCollector(capacity=2)
        collector.record(make_span(1))
        collector.record(make_span(2))
        collector.record(make_span(3))  # dropped
        drained = collector.drain()
        assert len(drained) == 2
        assert collector.spans() == []
        # recorded/dropped/high-water describe the whole run, not the buffer
        assert collector.stats() == {
            "recorded": 2,
            "dropped": 1,
            "held": 0,
            "high_water": 2,
        }
        # space freed by the drain is usable again
        assert collector.record(make_span(4))

    def test_concurrent_records_are_exact(self):
        collector = SpanCollector()

        def worker():
            for index in range(PER_THREAD):
                collector.record(make_span(index))

        _hammer(worker)
        stats = collector.stats()
        assert stats["recorded"] == THREADS * PER_THREAD
        assert stats["dropped"] == 0
        assert stats["held"] == THREADS * PER_THREAD
        assert stats["high_water"] == THREADS * PER_THREAD

    def test_concurrent_overflow_accounting_is_exact(self):
        """recorded + dropped must equal attempts even when the capacity
        boundary is crossed under contention."""
        capacity = THREADS * PER_THREAD // 2
        collector = SpanCollector(capacity=capacity)

        def worker():
            for index in range(PER_THREAD):
                collector.record(make_span(index))

        _hammer(worker)
        stats = collector.stats()
        assert stats["recorded"] == capacity
        assert stats["dropped"] == THREADS * PER_THREAD - capacity
        assert stats["held"] == capacity
        assert stats["high_water"] == capacity

    def test_no_span_lost_across_concurrent_drains(self):
        """recorders + drainers in parallel: every recorded span lands
        either in some drain's return or in the final residue."""
        collector = SpanCollector()
        harvested: list[Span] = []
        harvested_lock = threading.Lock()

        def recorder():
            for index in range(PER_THREAD):
                collector.record(make_span(index))

        def drainer():
            for _ in range(PER_THREAD // 3):
                batch = collector.drain()
                with harvested_lock:
                    harvested.extend(batch)

        barrier = threading.Barrier(THREADS + 2)
        threads = [
            *(
                threading.Thread(target=lambda: (barrier.wait(), recorder()))
                for _ in range(THREADS)
            ),
            *(
                threading.Thread(target=lambda: (barrier.wait(), drainer()))
                for _ in range(2)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = len(harvested) + len(collector.spans())
        assert total == THREADS * PER_THREAD
        assert collector.stats()["recorded"] == THREADS * PER_THREAD


class TestSpan:
    def test_end_and_jsonable(self):
        span = make_span(7, start=1.5, duration=0.25)
        span.attributes["k"] = "v"
        assert span.end == 1.75
        view = span.jsonable()
        assert view["span_id"] == "span:7"
        assert view["attributes"] == {"k": "v"}
        # jsonable copies the dict — mutating it must not touch the span
        view["attributes"]["x"] = 1
        assert "x" not in span.attributes

    def test_seq_is_monotonic(self):
        assert next_seq() < next_seq() < next_seq()
