"""Tests for last-writer-wins consistency."""

import pytest

from repro.consistency.lww import LwwCoordinator, LwwReplica
from repro.util.errors import ConsistencyError


@pytest.fixture
def lww(trio):
    world, master_site, consumer_a, consumer_b, master = trio
    LwwCoordinator.export_on(master_site)
    return world, master_site, consumer_a, consumer_b, master


def test_fresh_write_applies(lww):
    world, _m, consumer_a, _b, master = lww
    protocol = LwwReplica(consumer_a)
    replica = consumer_a.replicate("counter")
    replica.increment(3)
    world.clock.advance(0.001)
    protocol.write_back(replica)
    assert master.value == 3


def test_older_write_rejected(lww):
    world, master_site, consumer_a, consumer_b, master = lww
    pa = LwwReplica(consumer_a)
    ra = consumer_a.replicate("counter")
    rb = consumer_b.replicate("counter")

    world.clock.advance(1.0)
    ra.increment(10)
    pa.write_back(ra)
    accepted_at = world.clock.now()

    # Replay an explicitly older write through the coordinator.
    from repro.core.replication import build_put

    rb.increment(99)
    package = build_put(consumer_b, [rb])
    stub = consumer_b.endpoint.stub(
        consumer_b.naming.lookup("lww-coordinator"), ["try_put"]
    )
    with pytest.raises(ConsistencyError, match="newer state"):
        stub.try_put(package, accepted_at - 0.5)
    assert master.value == 10


def test_tie_timestamp_rejected(lww):
    world, _m, consumer_a, consumer_b, master = lww
    pa = LwwReplica(consumer_a)
    ra = consumer_a.replicate("counter")
    rb = consumer_b.replicate("counter")
    world.clock.advance(1.0)
    ra.increment(1)
    pa.write_back(ra)

    from repro.core.meta import obi_id_of
    from repro.core.replication import build_put

    stub = consumer_b.endpoint.stub(
        consumer_b.naming.lookup("lww-coordinator"), ["try_put", "last_write_at"]
    )
    exact = stub.last_write_at(obi_id_of(rb))
    rb.increment(9)
    with pytest.raises(ConsistencyError):
        stub.try_put(build_put(consumer_b, [rb]), exact)
    assert master.value == 1


def test_newer_write_supersedes(lww):
    world, _m, consumer_a, consumer_b, master = lww
    pa, pb = LwwReplica(consumer_a), LwwReplica(consumer_b)
    ra = consumer_a.replicate("counter")
    rb = consumer_b.replicate("counter")
    world.clock.advance(0.5)
    ra.increment(1)
    pa.write_back(ra)
    world.clock.advance(0.5)
    rb.increment(2)
    pb.write_back(rb)
    assert master.value == 2


def test_last_write_at_visible(lww):
    world, master_site, consumer_a, _b, _master = lww
    protocol = LwwReplica(consumer_a)
    replica = consumer_a.replicate("counter")
    from repro.core.meta import obi_id_of

    oid = obi_id_of(replica)
    world.clock.advance(2.0)
    protocol.write_back(replica)
    stub = consumer_a.endpoint.stub(
        consumer_a.naming.lookup("lww-coordinator"), ["last_write_at"]
    )
    assert stub.last_write_at(oid) == pytest.approx(world.clock.now(), abs=0.1)
    assert stub.last_write_at("never") is None


def test_replica_version_tracks_accepted_write(lww):
    world, _m, consumer_a, _b, _master = lww
    protocol = LwwReplica(consumer_a)
    replica = consumer_a.replicate("counter")
    from repro.core.meta import obi_id_of

    world.clock.advance(0.1)
    protocol.write_back(replica)
    info = consumer_a.replica_info(obi_id_of(replica))
    assert info.version == 2
