"""Consistency protocols over the delta put path (PR 4).

LWW and vector coordinators gained ``try_put_delta``/``vector_put_delta``
variants: the same arbitration, but timestamps/vectors are stamped only
when the merge actually applies — a ``NEED_FULL`` answer leaves the
coordinator's bookkeeping untouched and the consumer retries full-state.
"""

import pytest

from repro.consistency.lww import LwwCoordinator, LwwReplica
from repro.consistency.vector import VectorCoordinator, VectorReplica
from repro.core.meta import obi_id_of
from repro.core.replication import build_put_delta
from repro.util.errors import ConsistencyError


@pytest.fixture
def delta_trio(trio):
    world, master_site, consumer_a, consumer_b, master = trio
    master_site.delta_sync = True
    consumer_a.delta_sync = True
    consumer_b.delta_sync = True
    return world, master_site, consumer_a, consumer_b, master


class TestLwwDelta:
    def test_write_back_ships_a_delta(self, delta_trio):
        _world, master_site, consumer_a, _b, master = delta_trio
        LwwCoordinator.export_on(master_site)
        protocol = LwwReplica(consumer_a)
        replica = consumer_a.replicate("counter")
        replica.increment(3)
        protocol.write_back(replica)
        assert master.read() == 3
        assert consumer_a.sync_stats.puts_delta == 1
        assert consumer_a.sync_stats.puts_full == 0

    def test_clean_replica_write_back_takes_full_path(self, delta_trio):
        _world, master_site, consumer_a, _b, master = delta_trio
        LwwCoordinator.export_on(master_site)
        protocol = LwwReplica(consumer_a)
        replica = consumer_a.replicate("counter")
        protocol.write_back(replica)  # nothing dirty: full put, still correct
        assert consumer_a.sync_stats.puts_full == 1
        assert master.read() == 0

    def test_need_full_downgrade_then_lww_still_arbitrates(self, delta_trio):
        _world, master_site, consumer_a, _b, master = delta_trio
        LwwCoordinator.export_on(master_site)
        protocol = LwwReplica(consumer_a)
        replica = consumer_a.replicate("counter")
        master_site.touch(master)  # master version moves: delta put cannot merge
        replica.increment(5)
        protocol.write_back(replica)
        assert master.read() == 5
        assert consumer_a.sync_stats.need_full_downgrades == 1
        assert consumer_a.sync_stats.puts_full == 1

    def test_stale_delta_write_rejected_before_any_merge(self, delta_trio):
        _world, master_site, consumer_a, consumer_b, master = delta_trio
        coordinator = LwwCoordinator.export_on(master_site)
        protocol_b = LwwReplica(consumer_b)
        replica_a = consumer_a.replicate("counter")
        replica_b = consumer_b.replicate("counter")
        replica_b.increment(10)
        protocol_b.write_back(replica_b)
        stamped = coordinator.last_write_at(obi_id_of(master))
        # A delta put carrying a tie timestamp is a genuine concurrent
        # write: rejected before any merge, register untouched.
        replica_a.increment(1)
        snap = consumer_a.dirty_tracker.capture(replica_a)
        package = build_put_delta(consumer_a, [(replica_a, snap.fields)])
        with pytest.raises(ConsistencyError, match="newer state"):
            coordinator.try_put_delta(package, stamped)
        assert master.read() == 10
        assert coordinator.last_write_at(obi_id_of(master)) == stamped


class TestVectorDelta:
    def test_write_back_ships_a_delta_and_bumps_the_vector(self, delta_trio):
        _world, master_site, consumer_a, _b, master = delta_trio
        coordinator = VectorCoordinator.export_on(master_site)
        protocol = VectorReplica(consumer_a)
        replica = protocol.track(consumer_a.replicate("counter"))
        replica.increment(4)
        protocol.write_back(replica)
        assert master.read() == 4
        assert consumer_a.sync_stats.puts_delta == 1
        vector = coordinator.vector_of(obi_id_of(master))
        assert vector.counters.get("A") == 1

    def test_concurrent_delta_writes_conflict_without_merging(self, delta_trio):
        _world, master_site, consumer_a, consumer_b, master = delta_trio
        coordinator = VectorCoordinator.export_on(master_site)
        protocol_a = VectorReplica(consumer_a)
        protocol_b = VectorReplica(consumer_b)
        replica_a = protocol_a.track(consumer_a.replicate("counter"))
        replica_b = protocol_b.track(consumer_b.replicate("counter"))
        replica_b.increment(10)
        protocol_b.write_back(replica_b)
        replica_a.increment(1)  # concurrent with B's write
        vector_before = coordinator.vector_of(obi_id_of(master))
        with pytest.raises(ConsistencyError, match="concurrent update"):
            protocol_a.write_back(replica_a)
        assert master.read() == 10
        assert coordinator.vector_of(obi_id_of(master)) == vector_before

    def test_need_full_downgrade_stamps_the_vector_once(self, delta_trio):
        _world, master_site, consumer_a, _b, master = delta_trio
        coordinator = VectorCoordinator.export_on(master_site)
        protocol = VectorReplica(consumer_a)
        replica = protocol.track(consumer_a.replicate("counter"))
        master_site.touch(master)  # core version moves: delta cannot merge
        replica.increment(2)
        protocol.write_back(replica)
        assert master.read() == 2
        assert consumer_a.sync_stats.need_full_downgrades == 1
        assert coordinator.vector_of(obi_id_of(master)).counters.get("A") == 1
