"""Tests for lease-based consistency."""

import pytest

from repro.consistency.base import ReadPolicy
from repro.consistency.lease import LeaseConsistency
from repro.util.errors import StaleReplicaError


def test_duration_must_be_positive(trio):
    _w, _m, consumer_a, _b, _master = trio
    with pytest.raises(ValueError):
        LeaseConsistency(consumer_a, duration=0)


def test_read_within_lease_is_local(trio):
    world, _m, consumer_a, _b, _master = trio
    lease = LeaseConsistency(consumer_a, duration=10.0)
    replica = lease.track(consumer_a.replicate("counter"))
    before = world.network.stats.total_messages
    assert lease.read(replica) is replica
    assert world.network.stats.total_messages == before
    assert lease.remaining(replica) > 0


def test_expired_lease_refreshes_and_renews(trio):
    world, master_site, consumer_a, _b, master = trio
    lease = LeaseConsistency(consumer_a, duration=0.5, policy=ReadPolicy.REFRESH)
    replica = lease.track(consumer_a.replicate("counter"))
    master.value = 77
    master_site.touch(master)
    world.clock.advance(1.0)
    assert lease.remaining(replica) < 0
    fresh = lease.read(replica)
    assert fresh.read() == 77
    assert lease.remaining(replica) > 0


def test_expired_lease_raises_under_raise_policy(trio):
    world, _m, consumer_a, _b, _master = trio
    lease = LeaseConsistency(consumer_a, duration=0.1, policy=ReadPolicy.RAISE)
    replica = lease.track(consumer_a.replicate("counter"))
    world.clock.advance(0.2)
    with pytest.raises(StaleReplicaError):
        lease.read(replica)


def test_serve_stale_policy_ignores_expiry(trio):
    world, master_site, consumer_a, _b, master = trio
    lease = LeaseConsistency(consumer_a, duration=0.1, policy=ReadPolicy.SERVE_STALE)
    replica = lease.track(consumer_a.replicate("counter"))
    master.value = 5
    master_site.touch(master)
    world.clock.advance(1.0)
    assert lease.read(replica).read() == 0


def test_write_back_renews_lease(trio):
    world, _m, consumer_a, _b, master = trio
    lease = LeaseConsistency(consumer_a, duration=1.0)
    replica = lease.track(consumer_a.replicate("counter"))
    world.clock.advance(2.0)
    replica.increment()
    lease.write_back(replica)
    assert master.value == 1
    assert lease.remaining(replica) > 0


def test_never_leased_replica_counts_as_expired(trio):
    _w, _m, consumer_a, _b, _master = trio
    lease = LeaseConsistency(consumer_a, duration=1.0)
    replica = consumer_a.replicate("counter")  # not tracked
    assert lease.remaining(replica) == float("-inf")
    fresh = lease.read(replica)  # REFRESH policy establishes a lease
    assert lease.remaining(fresh) > 0
