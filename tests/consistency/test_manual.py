"""Tests for manual consistency (the paper's default)."""

from repro.consistency.manual import ManualConsistency


def test_reads_serve_the_local_replica(trio):
    world, master_site, consumer_a, _b, master = trio
    protocol = ManualConsistency(consumer_a)
    replica = consumer_a.replicate("counter")
    master.value = 99
    master_site.touch(master)
    # Nothing implicit: the stale replica is what a read returns.
    assert protocol.read(replica) is replica
    assert replica.read() == 0


def test_pull_refreshes(trio):
    world, master_site, consumer_a, _b, master = trio
    protocol = ManualConsistency(consumer_a)
    replica = consumer_a.replicate("counter")
    master.value = 42
    master_site.touch(master)
    protocol.pull(replica)
    assert replica.read() == 42


def test_push_updates_master(trio):
    world, _m, consumer_a, _b, master = trio
    protocol = ManualConsistency(consumer_a)
    replica = consumer_a.replicate("counter")
    replica.increment(7)
    version = protocol.push(replica)
    assert master.value == 7
    assert version == 2


def test_write_back_alone_does_not_push(trio):
    world, _m, consumer_a, _b, master = trio
    protocol = ManualConsistency(consumer_a)
    replica = consumer_a.replicate("counter")
    replica.increment()
    protocol.write_back(replica)
    assert master.value == 0  # only push() moves data


def test_two_consumers_see_each_other_only_via_pull(trio):
    world, _m, consumer_a, consumer_b, master = trio
    pa, pb = ManualConsistency(consumer_a), ManualConsistency(consumer_b)
    ra = consumer_a.replicate("counter")
    rb = consumer_b.replicate("counter")
    ra.increment(5)
    pa.push(ra)
    assert rb.read() == 0
    pb.pull(rb)
    assert rb.read() == 5
