"""Tests for version vectors: algebra (with hypothesis) and the protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.vector import VectorCoordinator, VectorReplica, VersionVector
from repro.util.errors import ConsistencyError

# ----------------------------------------------------------------------
# algebra
# ----------------------------------------------------------------------
sites = st.sampled_from(["s1", "s2", "s3", "s4"])
vectors = st.dictionaries(sites, st.integers(min_value=0, max_value=20)).map(VersionVector)


class TestAlgebra:
    def test_empty_vector_included_in_everything(self):
        assert VersionVector({"a": 1}).includes(VersionVector())

    def test_includes_is_pointwise(self):
        big = VersionVector({"a": 2, "b": 1})
        small = VersionVector({"a": 1})
        assert big.includes(small)
        assert not small.includes(big)

    def test_concurrency(self):
        a = VersionVector({"x": 1})
        b = VersionVector({"y": 1})
        assert a.concurrent_with(b)
        assert not a.concurrent_with(a)

    def test_bump(self):
        v = VersionVector()
        v.bump("s")
        v.bump("s")
        assert v.counters == {"s": 2}

    def test_zero_entries_do_not_matter_for_equality(self):
        assert VersionVector({"a": 0}) == VersionVector()

    @given(vectors, vectors)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_upper_bound(self, a, b):
        merged = a.merge(b)
        assert merged.includes(a)
        assert merged.includes(b)

    @given(vectors, vectors)
    @settings(max_examples=200, deadline=None)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(vectors, vectors, vectors)
    @settings(max_examples=100, deadline=None)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(vectors)
    @settings(max_examples=100, deadline=None)
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(vectors, vectors)
    @settings(max_examples=200, deadline=None)
    def test_order_trichotomy(self, a, b):
        relations = [a.includes(b), b.includes(a), a.concurrent_with(b)]
        assert any(relations)
        if a.concurrent_with(b):
            assert not a.includes(b) and not b.includes(a)

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_wire_roundtrip(self, a):
        from repro.serial.decoder import Decoder
        from repro.serial.encoder import Encoder

        assert Decoder().decode(Encoder().encode(a)) == a


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
@pytest.fixture
def vector_setup(trio):
    world, master_site, consumer_a, consumer_b, master = trio
    VectorCoordinator.export_on(master_site)
    return world, master_site, consumer_a, consumer_b, master


class TestProtocol:
    def test_tracked_write_applies_and_advances_vector(self, vector_setup):
        _w, _m, consumer_a, _b, master = vector_setup
        protocol = VectorReplica(consumer_a)
        replica = protocol.track(consumer_a.replicate("counter"))
        replica.increment(4)
        protocol.write_back(replica)
        assert master.value == 4
        assert protocol.base_vector(replica).counters.get("A") == 1

    def test_untracked_write_rejected(self, vector_setup):
        _w, _m, consumer_a, _b, _master = vector_setup
        protocol = VectorReplica(consumer_a)
        replica = consumer_a.replicate("counter")
        with pytest.raises(ConsistencyError, match="not tracked"):
            protocol.write_back(replica)

    def test_concurrent_write_conflicts_without_resolver(self, vector_setup):
        _w, _m, consumer_a, consumer_b, master = vector_setup
        pa = VectorReplica(consumer_a)
        pb = VectorReplica(consumer_b)
        ra = pa.track(consumer_a.replicate("counter"))
        rb = pb.track(consumer_b.replicate("counter"))
        ra.increment(1)
        pa.write_back(ra)
        rb.increment(2)
        with pytest.raises(ConsistencyError, match="concurrent"):
            pb.write_back(rb)
        assert master.value == 1  # the losing write never landed

    def test_resolver_merges_and_retries(self, vector_setup):
        _w, _m, consumer_a, consumer_b, master = vector_setup

        def add_both(replica, fresh_state):
            replica.value = replica.value + fresh_state["value"]

        pa = VectorReplica(consumer_a)
        pb = VectorReplica(consumer_b, resolver=add_both)
        ra = pa.track(consumer_a.replicate("counter"))
        rb = pb.track(consumer_b.replicate("counter"))
        ra.increment(10)
        pa.write_back(ra)
        rb.increment(5)
        pb.write_back(rb)  # conflict -> merge(5, 10) = 15 -> retry
        assert master.value == 15

    def test_sequential_writes_never_conflict(self, vector_setup):
        _w, _m, consumer_a, _b, master = vector_setup
        protocol = VectorReplica(consumer_a)
        replica = protocol.track(consumer_a.replicate("counter"))
        for expected in (1, 2, 3):
            replica.increment()
            protocol.write_back(replica)
        assert master.value == 3

    def test_fresh_state_exposes_master_state_and_vector(self, vector_setup):
        _w, master_site, consumer_a, _b, master = vector_setup
        protocol = VectorReplica(consumer_a)
        replica = protocol.track(consumer_a.replicate("counter"))
        replica.increment(9)
        protocol.write_back(replica)
        from repro.core.meta import obi_id_of

        stub = consumer_a.endpoint.stub(
            consumer_a.naming.lookup("vector-coordinator"), ["fresh_state"]
        )
        fresh = stub.fresh_state(obi_id_of(replica))
        assert fresh["state"]["value"] == 9
        assert fresh["vector"].counters.get("A") == 1
