"""Tests for epidemic update dissemination."""

import pytest

from repro.consistency.epidemic import UpdateDisseminator, UpdateSubscriber
from repro.core.meta import obi_id_of


@pytest.fixture
def epidemic(trio):
    world, master_site, consumer_a, consumer_b, master = trio
    UpdateDisseminator.export_on(master_site)
    return world, master_site, consumer_a, consumer_b, master


def test_update_pushed_to_subscriber(epidemic):
    _w, _m, consumer_a, consumer_b, master = epidemic
    sub_b = UpdateSubscriber(consumer_b)
    rb = sub_b.track(consumer_b.replicate("counter"))
    ra = consumer_a.replicate("counter")
    ra.increment(6)
    consumer_a.put_back(ra)
    assert rb.read() == 6
    assert sub_b.updates_received == 1


def test_multiple_subscribers_all_converge(epidemic):
    _w, _m, consumer_a, consumer_b, master = epidemic
    sub_a = UpdateSubscriber(consumer_a)
    sub_b = UpdateSubscriber(consumer_b)
    ra = sub_a.track(consumer_a.replicate("counter"))
    rb = sub_b.track(consumer_b.replicate("counter"))
    ra.increment(2)
    sub_a.write_back(ra)
    assert ra.read() == rb.read() == 2


def test_touch_also_disseminates(epidemic):
    """Master-side writes announced with touch() reach subscribers."""
    _w, master_site, _a, consumer_b, master = epidemic
    sub_b = UpdateSubscriber(consumer_b)
    rb = sub_b.track(consumer_b.replicate("counter"))
    master.value = 31
    master_site.touch(master)
    assert rb.read() == 31


def test_offline_subscriber_does_not_break_dissemination(epidemic):
    world, _m, consumer_a, consumer_b, master = epidemic
    sub_b = UpdateSubscriber(consumer_b)
    rb = sub_b.track(consumer_b.replicate("counter"))
    world.network.disconnect("B")
    ra = consumer_a.replicate("counter")
    ra.increment(4)
    consumer_a.put_back(ra)  # must not raise
    assert master.value == 4
    assert rb.read() == 0  # missed the push
    world.network.reconnect("B")
    consumer_b.refresh(rb)  # converges on demand
    assert rb.read() == 4


def test_unsubscribed_site_stops_receiving(epidemic):
    _w, _m, consumer_a, consumer_b, _master = epidemic
    sub_b = UpdateSubscriber(consumer_b)
    rb = sub_b.track(consumer_b.replicate("counter"))
    stub = consumer_b.endpoint.stub(
        consumer_b.naming.lookup("update-disseminator"),
        ["unsubscribe", "subscriber_count"],
    )
    stub.unsubscribe(obi_id_of(rb), "B")
    assert stub.subscriber_count(obi_id_of(rb)) == 0
    ra = consumer_a.replicate("counter")
    ra.increment()
    consumer_a.put_back(ra)
    assert rb.read() == 0


def test_reads_are_always_local(epidemic):
    world, _m, _a, consumer_b, _master = epidemic
    sub_b = UpdateSubscriber(consumer_b)
    rb = sub_b.track(consumer_b.replicate("counter"))
    before = world.network.stats.total_messages
    sub_b.read(rb)
    assert world.network.stats.total_messages == before
