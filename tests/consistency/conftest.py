"""Consistency-suite fixtures: a master site plus two consumers."""

import pytest

from repro.core.costs import CostModel
from repro.core.runtime import World
from tests.models import Counter


@pytest.fixture
def trio():
    """(world, master_site, consumer_a, consumer_b) with a named master
    Counter exported as 'counter'."""
    with World.loopback(costs=CostModel.zero()) as world:
        master_site = world.create_site("M")
        consumer_a = world.create_site("A")
        consumer_b = world.create_site("B")
        master = Counter(0)
        master_site.export(master, name="counter")
        yield world, master_site, consumer_a, consumer_b, master
