"""Tests for invalidation-based consistency."""

import pytest

from repro.consistency.base import ReadPolicy
from repro.consistency.invalidation import InvalidationConsumer, InvalidationMaster
from repro.core.meta import obi_id_of
from repro.util.errors import StaleReplicaError


@pytest.fixture
def invalidation(trio):
    world, master_site, consumer_a, consumer_b, master = trio
    InvalidationMaster.export_on(master_site)
    return world, master_site, consumer_a, consumer_b, master


def test_writer_invalidates_other_holders(invalidation):
    _w, _m, consumer_a, consumer_b, _master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b)
    ra = pa.track(consumer_a.replicate("counter"))
    rb = pb.track(consumer_b.replicate("counter"))
    ra.increment()
    pa.write_back(ra)
    assert pb.is_stale(rb)
    assert not pa.is_stale(ra)  # the writer stays fresh


def test_refresh_policy_transparently_refreshes(invalidation):
    _w, _m, consumer_a, consumer_b, master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b, policy=ReadPolicy.REFRESH)
    ra = pa.track(consumer_a.replicate("counter"))
    rb = pb.track(consumer_b.replicate("counter"))
    ra.increment(8)
    pa.write_back(ra)
    fresh = pb.read(rb)
    assert fresh.read() == 8
    assert not pb.is_stale(rb)


def test_raise_policy(invalidation):
    _w, _m, consumer_a, consumer_b, _master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b, policy=ReadPolicy.RAISE)
    ra = pa.track(consumer_a.replicate("counter"))
    rb = pb.track(consumer_b.replicate("counter"))
    ra.increment()
    pa.write_back(ra)
    with pytest.raises(StaleReplicaError):
        pb.read(rb)


def test_serve_stale_policy(invalidation):
    _w, _m, consumer_a, consumer_b, _master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b, policy=ReadPolicy.SERVE_STALE)
    ra = pa.track(consumer_a.replicate("counter"))
    rb = pb.track(consumer_b.replicate("counter"))
    ra.increment(3)
    pa.write_back(ra)
    assert pb.read(rb).read() == 0  # stale value, by choice


def test_fresh_replica_reads_without_traffic(invalidation):
    world, _m, consumer_a, _b, _master = invalidation
    protocol = InvalidationConsumer(consumer_a)
    replica = protocol.track(consumer_a.replicate("counter"))
    before = world.network.stats.total_messages
    protocol.read(replica)
    assert world.network.stats.total_messages == before


def test_offline_holder_misses_invalidation_but_stays_usable(invalidation):
    world, _m, consumer_a, consumer_b, _master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b, policy=ReadPolicy.SERVE_STALE)
    ra = pa.track(consumer_a.replicate("counter"))
    rb = pb.track(consumer_b.replicate("counter"))
    world.network.disconnect("B")
    ra.increment()
    pa.write_back(ra)  # B unreachable: fan-out must not fail the put
    assert not pb.is_stale(rb)  # it never heard — bounded by reconnect
    world.network.reconnect("B")
    assert pb.read(rb).read() == 0


def test_master_tracks_holders(invalidation):
    _w, master_site, consumer_a, consumer_b, _master = invalidation
    pa = InvalidationConsumer(consumer_a)
    pb = InvalidationConsumer(consumer_b)
    ra = pa.track(consumer_a.replicate("counter"))
    pb.track(consumer_b.replicate("counter"))
    stub = consumer_a.endpoint.stub(
        consumer_a.naming.lookup("invalidation-master"), ["holders_of", "unsubscribe"]
    )
    assert stub.holders_of(obi_id_of(ra)) == ["A", "B"]
    stub.unsubscribe(obi_id_of(ra), "B")
    assert stub.holders_of(obi_id_of(ra)) == ["A"]
