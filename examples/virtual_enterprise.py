"""Virtual enterprise: collaborative catalogue across three companies.

The paper's motivating domain: "a virtual enterprise grouping several
companies from different countries".  A supplier hosts a product
catalogue (a linked list of products, each with a price history).  Two
partner companies browse it with **cluster replication** (cheap bulk
fetch over a WAN), edit concurrently under **version vectors**, and
resolve the inevitable conflict with a domain resolver.

Run:  python examples/virtual_enterprise.py
"""

from repro import obiwan
from repro.consistency import VectorCoordinator, VectorReplica
from repro.util.errors import ConsistencyError


@obiwan.compile
class Product:
    """One catalogue entry."""

    def __init__(self, sku: str = "", price: float = 0.0, nxt: "Product | None" = None):
        self.sku = sku
        self.price = price
        self.stock = 0
        self.next = nxt

    def get_sku(self) -> str:
        return self.sku

    def get_price(self) -> float:
        return self.price

    def set_price(self, price: float) -> None:
        self.price = price

    def reserve(self, units: int) -> None:
        self.stock -= units

    def restock(self, units: int) -> None:
        self.stock += units

    def get_stock(self) -> int:
        return self.stock

    def get_next(self) -> "Product | None":
        return self.next


@obiwan.compile
class Catalogue:
    """The catalogue head: named entry point to the product list."""

    def __init__(self, company: str = ""):
        self.company = company
        self.head: Product | None = None

    def get_company(self) -> str:
        return self.company

    def get_head(self) -> "Product | None":
        return self.head

    def set_head(self, head: "Product | None") -> None:
        self.head = head


def build_catalogue(n_products: int) -> Catalogue:
    catalogue = Catalogue("ACME Components")
    head: Product | None = None
    for index in range(n_products - 1, -1, -1):
        head = Product(sku=f"SKU-{index:04d}", price=10.0 + index, nxt=head)
    catalogue.set_head(head)
    return catalogue


def main() -> None:
    # The partners are across the Internet, not a LAN.
    world = obiwan.World.loopback(link=obiwan.WAN)
    supplier = world.create_site("acme.example")
    partner_de = world.create_site("partner.de")
    partner_jp = world.create_site("partner.jp")

    catalogue = build_catalogue(40)
    supplier.export(catalogue, name="catalogue")
    coordinator = VectorCoordinator.export_on(supplier)

    # --- bulk browse with clusters over the WAN --------------------------
    t0 = world.clock.now()
    de_cat = partner_de.replicate("catalogue", mode=obiwan.Cluster(size=20))
    browse_cost = (world.clock.now() - t0) * 1e3
    count = 0
    node = de_cat.get_head()
    while node is not None and not isinstance(node, obiwan.ProxyOutBase):
        count += 1
        node = node.get_next()
    # The 20-object cluster is the catalogue head + the first 19 products.
    print(
        f"partner.de fetched the catalogue head + {count} products as one "
        f"cluster in {browse_cost:.0f} ms (WAN)"
    )

    # Walking past the cluster frontier faults in the next cluster.
    frontier = node
    print("frontier is a proxy-out:", isinstance(frontier, obiwan.ProxyOutBase))
    print("first SKU past frontier:", frontier.get_sku())

    # --- concurrent edits under version vectors --------------------------
    # Both partners replicate the same product individually (per-object
    # pair: individually updatable).
    sku_ref = supplier.export(catalogue.get_head())  # the first product
    de_product = partner_de.replicate(sku_ref)
    jp_product = partner_jp.replicate(sku_ref)

    def prefer_lower_price(replica: Product, fresh_state: dict) -> None:
        # Domain rule: in a price war, the lower price wins; stock is
        # taken from the fresher master state.
        replica.price = min(replica.price, fresh_state["price"])
        replica.stock = fresh_state["stock"]

    de_vectors = VectorReplica(partner_de, resolver=None)
    jp_vectors = VectorReplica(partner_jp, resolver=prefer_lower_price)
    de_vectors.track(de_product)
    jp_vectors.track(jp_product)

    de_product.set_price(9.50)
    de_vectors.write_back(de_product)
    print(f"partner.de set price to {catalogue.get_head().get_price():.2f}")

    jp_product.set_price(9.80)  # concurrent: based on the old state
    try:
        VectorReplica(partner_jp).write_back(jp_product)
    except ConsistencyError as error:
        print("untracked write rejected:", type(error).__name__)
    jp_vectors.write_back(jp_product)  # resolver merges: min(9.80, 9.50)
    print(f"after conflict resolution, master price = {catalogue.get_head().get_price():.2f}")

    # --- access control: the public price list is read-only ----------------
    from repro.obiwan import AccessPolicy, SecurityError

    public_list = Product(sku="PUBLIC-PRICES", price=1.0)
    supplier.export_guarded(
        public_list, AccessPolicy.read_only(), name="public-prices"
    )
    viewer = partner_jp.replicate("public-prices")
    print(f"\npublic price list readable: {viewer.get_sku()} @ {viewer.get_price():.2f}")
    viewer.set_price(0.01)
    try:
        partner_jp.put_back(viewer)
    except SecurityError:
        print("write-back to the public list denied (read-only export)")

    # --- traffic summary --------------------------------------------------
    stats = world.network.stats
    print(
        f"\ntotal traffic: {stats.total_messages} messages / {stats.total_bytes} bytes; "
        f"simulated elapsed {world.clock.now():.3f} s"
    )
    print(
        "bytes supplier<->partner.de:",
        stats.bytes_between("acme.example", "partner.de"),
    )


if __name__ == "__main__":
    main()
