"""Mobile agenda: the paper's info-appliance scenario.

A user keeps an agenda on the office PC and carries a PDA.  Before
leaving, the PDA hoards the agenda (whole transitive closure).  In the
taxi there is no coverage: the user keeps working on the local replica,
and a colleague edits the office copy concurrently.  On reconnect, the
node reconciles — one entry conflicts and is resolved by merging.

Run:  python examples/mobile_agenda.py
"""

from repro import obiwan
from repro.mobility import MobileNode, ReconcileAction


@obiwan.compile
class Agenda:
    """A day's appointments."""

    def __init__(self, owner: str = ""):
        self.owner = owner
        self.entries: list[str] = []

    def add(self, text: str) -> None:
        self.entries.append(text)

    def remove(self, text: str) -> None:
        self.entries.remove(text)

    def all(self) -> list[str]:
        return list(self.entries)

    def count(self) -> int:
        return len(self.entries)


def main() -> None:
    world = obiwan.World.loopback(link=obiwan.WIRELESS_WLAN)
    office = world.create_site("office-pc")
    pda_site = world.create_site("pda")

    master = Agenda("alice")
    master.add("09:00 standup")
    master.add("12:30 lunch w/ Bob")
    office.export(master, name="agenda")

    pda = MobileNode(pda_site)

    # --- before leaving: hoard ------------------------------------------
    agenda = pda.hoard("agenda")
    print("hoarded:", agenda.all())
    print("hoard complete (safe to disconnect):", pda.hoard_store.is_complete("agenda"))

    # --- in the taxi: no coverage ---------------------------------------
    pda.go_offline(voluntary=False)

    # Plain RMI would fail; the fallback invoker serves the replica and
    # flags possible staleness — "even if such data is not up to date".
    result = pda.call("agenda", "count")
    print(
        f"offline read: {result.value} entries "
        f"(served by {result.served_by.value}, possibly stale: {result.possibly_stale})"
    )

    agenda.add("15:00 call travel agency")  # disconnected write, LMI

    # Meanwhile a colleague updates the office copy.
    master.add("16:00 budget review")
    office.touch(master)

    # --- back online: reconcile -----------------------------------------
    def union_resolver(site, replica) -> ReconcileAction:
        # Merge: keep both sides' entries (order-preserving union).
        local = replica.all()
        site.refresh(replica)  # replica now holds master state
        merged = list(dict.fromkeys([*replica.all(), *local]))
        replica.entries = merged
        site.put_back(replica)
        return ReconcileAction.PUSHED

    report = pda.go_online(on_conflict=union_resolver)
    print("reconciliation:", report)
    print("agenda after merge:")
    for entry in master.all():
        print("   -", entry)

    # --- a relaxed transaction, validated at commit ----------------------
    with pda.transaction() as tx:
        tx.write(agenda, "add", "18:00 gym")
        tx.read(agenda, "count")
    print("transaction committed; master count:", master.count())


if __name__ == "__main__":
    main()
