"""News gathering with mobile agents.

The OBIWAN authors' companion work ("World Wide News Gathering Automatic
Management", Veiga & Ferreira) manages news collection across the web;
the ICDCS paper itself repeatedly includes "an agent" alongside "an
application" as the thing that keeps working while disconnected.  This
example sends an agent around three news sites:

1. the agent's *state* migrates — hop by hop — through each site's
   AgentHost; no code moves (every site loads the same obicomp output);
2. at each stop it replicates that site's headline feed (a cluster
   fetch) and filters locally at LMI speed;
3. it comes home with the digest, and telemetry shows what the trip
   cost each site.

Run:  python examples/news_gathering.py
"""

from repro import obiwan
from repro.mobility import AgentHost, launch_agent


@obiwan.compile
class NewsFeed:
    """A site's headline list."""

    def __init__(self, source: str = ""):
        self.source = source
        self.headlines: list[str] = []

    def publish(self, headline: str) -> None:
        self.headlines.append(headline)

    def all_headlines(self) -> list[str]:
        return list(self.headlines)

    def source_name(self) -> str:
        return self.source


@obiwan.compile
class NewsGatheringAgent:
    """Visits feeds, keeps only headlines matching its topic."""

    def __init__(self, topic: str = ""):
        self.topic = topic
        self.digest: list[tuple[str, str]] = []
        self.headlines_scanned = 0

    def on_arrive(self, site) -> int:
        # Replicate this site's feed as one cluster and filter locally —
        # the expensive scan happens at LMI speed, not over the wire.
        feed = site.replicate(f"feed@{site.name}", mode=obiwan.Cluster())
        matches = 0
        for headline in feed.all_headlines():
            self.headlines_scanned += 1
            if self.topic.lower() in headline.lower():
                self.digest.append((feed.source_name(), headline))
                matches += 1
        site.evict(feed)  # the agent travels light
        return matches

    def report(self) -> list[tuple[str, str]]:
        return list(self.digest)


FEEDS = {
    "reuters-lisbon": [
        "Mobile middleware wins distributed systems award",
        "Markets steady as bandwidth prices fall",
        "Replication platform OBIWAN demonstrated at ICDCS",
    ],
    "wire-newyork": [
        "City rolls out wireless network in taxis",
        "Replication debate: clusters versus objects",
        "Weather: sunny with a chance of disconnections",
    ],
    "gazette-tokyo": [
        "PDAs outsell laptops for the first time",
        "Incremental replication cuts mobile data bills",
        "Local team wins robot football league",
    ],
}


def main() -> None:
    world = obiwan.World.loopback(link=obiwan.WAN)
    home = world.create_site("home-office")

    for site_name, headlines in FEEDS.items():
        site = world.create_site(site_name)
        AgentHost(site)
        feed = NewsFeed(site_name)
        for headline in headlines:
            feed.publish(headline)
        site.export(feed, name=f"feed@{site_name}")

    agent = NewsGatheringAgent(topic="replication")
    itinerary = list(FEEDS)
    print(f"launching agent on itinerary: {' -> '.join(itinerary)}\n")

    trip = launch_agent(home, agent, itinerary)

    print(f"agent visited {trip.sites_visited}, "
          f"scanned {trip.agent.headlines_scanned} headlines")
    print("matches per site:", {site: count for site, count in trip.visits})
    print("\ndigest on 'replication':")
    for source, headline in trip.agent.report():
        print(f"   [{source}] {headline}")

    print("\nper-site telemetry after the trip:")
    for site in world.sites.values():
        snap = obiwan.snapshot(site)
        print(
            f"   {snap.site:15s} sent {snap.bytes_sent:6d} B in "
            f"{snap.messages_sent} msgs; {snap.replicas} replicas held"
        )
    print(f"\nsimulated trip time: {world.clock.now():.3f} s over the WAN")


if __name__ == "__main__":
    main()
