"""Porting existing applications onto OBIWAN (paper Section 3.2).

Two starting points, both handled by obicomp:

1. a **legacy, non-distributed class** — ported untouched; OBIWAN derives
   the interface and generates the proxies;
2. an **RMI-style implementation class** (business methods mixed with
   RMI plumbing) — obicomp strips the plumbing and produces a clean
   local class.

The example also uses obicomp's source-emitting mode, which writes the
generated interface + proxy classes out as Python code — the analogue of
the Java tool's source augmentation.

Run:  python examples/porting_legacy.py
"""

from repro import obiwan


# ---------------------------------------------------------------------------
# 1. A legacy class, written years ago with no distribution in mind.
# ---------------------------------------------------------------------------
class InventoryLedger:
    """Plain Python: no OBIWAN imports, no decorators."""

    def __init__(self):
        self.movements = []

    def record(self, item, delta):
        self.movements.append((item, delta))

    def balance(self, item):
        return sum(delta for name, delta in self.movements if name == item)

    def movement_count(self):
        return len(self.movements)


# ---------------------------------------------------------------------------
# 2. An RMI-era implementation class: business logic entangled with
#    remote plumbing (export/bind/lookup-style methods).
# ---------------------------------------------------------------------------
class PriceServiceRemoteImpl:
    """The 'typical RMI-based approach' the paper describes."""

    def __init__(self):
        self.prices = {}

    # --- business logic -------------------------------------------------
    def quote(self, item):
        return self.prices.get(item, 0.0)

    def update_quote(self, item, price):
        self.prices[item] = price

    # --- RMI plumbing obicomp strips ------------------------------------
    def export(self):  # pragma: no cover - plumbing placeholder
        raise NotImplementedError("legacy RMI plumbing")

    def bind(self, name):  # pragma: no cover - plumbing placeholder
        raise NotImplementedError("legacy RMI plumbing")


def main() -> None:
    # --- port both classes ------------------------------------------------
    Ledger = obiwan.port_legacy_class(InventoryLedger)
    print("ported legacy class; derived interface:", obiwan.interface_of(Ledger))

    PriceService = obiwan.port_rmi_class(PriceServiceRemoteImpl)
    print(
        f"ported RMI class {PriceServiceRemoteImpl.__name__} -> {PriceService.__name__}; "
        f"interface: {obiwan.interface_of(PriceService)}"
    )

    # --- and use them, distributed, unchanged -----------------------------
    world = obiwan.World.loopback()
    warehouse = world.create_site("warehouse")
    shop = world.create_site("shop")

    ledger = Ledger()
    ledger.record("widget", +100)
    warehouse.export(ledger, name="ledger")

    prices = PriceService()
    prices.update_quote("widget", 4.99)
    warehouse.export(prices, name="prices")

    # The shop replicates the ledger, works locally, pushes back.
    shop_ledger = shop.replicate("ledger")
    shop_ledger.record("widget", -3)
    shop.put_back(shop_ledger)
    print("warehouse balance after shop sale:", ledger.balance("widget"))

    # The stripped RMI class serves quotes remotely or on a replica.
    quote_stub = shop.remote_stub("prices")
    print("RMI quote:", quote_stub.quote("widget"))

    # --- emit the generated sources (the obicomp tool's output) -----------
    module_source = obiwan.emit_module([Ledger, PriceService])
    line_count = len(module_source.splitlines())
    print(f"\nobicomp emitted {line_count} lines of generated code; excerpt:")
    for line in module_source.splitlines():
        if line.startswith("class "):
            print("   ", line)

    # The emitted module is valid Python:
    namespace: dict = {}
    exec(compile(module_source, "<obicomp-output>", "exec"), namespace)
    print(
        "emitted module defines:",
        sorted(name for name in namespace if not name.startswith("__"))[:8],
    )


if __name__ == "__main__":
    main()
