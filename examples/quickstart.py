"""Quickstart: the paper's Figure 1 scenario, end to end.

Two sites: S2 holds a graph of objects A -> B -> C; S1 obtains a
reference from the name server and replicates incrementally.  Watch the
object faults resolve, then push an update back and refresh.

Run:  python examples/quickstart.py
"""

from repro import obiwan


@obiwan.compile
class Document:
    """A tiny linked document: every section points to the next."""

    def __init__(self, title: str = "", body: str = "", nxt: "Document | None" = None):
        self.title = title
        self.body = body
        self.next = nxt

    def get_title(self) -> str:
        return self.title

    def get_body(self) -> str:
        return self.body

    def set_body(self, body: str) -> None:
        self.body = body

    def get_next(self) -> "Document | None":
        return self.next


def main() -> None:
    # A world is a network plus a name server; loopback runs on
    # deterministic simulated time calibrated to the paper's testbed.
    world = obiwan.World.loopback()
    s2 = world.create_site("S2")  # the provider (holds the masters)
    s1 = world.create_site("S1")  # the consumer

    # S2 creates the graph A -> B -> C and registers A in the name server.
    c = Document("C", "gamma")
    b = Document("B", "beta", c)
    a = Document("A", "alpha", b)
    s2.export(a, name="document")

    # --- the run-time choice: RMI or LMI -------------------------------
    stub = s1.remote_stub("document")  # RMI: every call crosses the wire
    print("RMI  get_title():", stub.get_title())

    replica = s1.replicate("document")  # LMI: replicate, then local calls
    print("LMI  get_title():", replica.get_title())

    # --- incremental replication & object faults ------------------------
    # Only A was replicated; A'.next is a proxy-out standing in for B.
    print("A'.next is a proxy-out:", isinstance(replica.next, obiwan.ProxyOutBase))

    # Invoking any interface method on the proxy faults: B is demanded,
    # spliced into A' (updateMember), and the call proceeds.
    print("fault -> B title:", replica.next.get_title())
    print("A'.next is now the replica:", not isinstance(replica.next, obiwan.ProxyOutBase))

    # The same happens transitively for C.
    b_replica = replica.next
    print("fault -> C title:", b_replica.next.get_title())

    # --- updating master and replica -------------------------------------
    b_replica.set_body("beta, edited at S1")
    version = s1.put_back(b_replica)  # put: replica -> master
    print(f"put_back applied; master B body = {b.body!r} (version {version})")

    b.body = "beta, edited at S2"
    s2.touch(b)  # master-side writes announce themselves
    s1.refresh(b_replica)  # get: master -> replica
    print(f"refresh applied; replica B body = {b_replica.get_body()!r}")

    # --- what it cost ----------------------------------------------------
    stats = world.network.stats
    print(
        f"\nnetwork: {stats.total_messages} messages, {stats.total_bytes} bytes; "
        f"simulated time {world.clock.now() * 1e3:.2f} ms"
    )
    print("proxy GC:", s1.gc_stats)


if __name__ == "__main__":
    main()
