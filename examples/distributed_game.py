"""Distributed game: shared world state with epidemic updates.

The paper's list of target applications includes "a distributed game
involving people anywhere in the world".  A game server masters the
world state (a board of rooms plus a scoreboard).  Players replicate the
board once (cluster fetch) and subscribe to **epidemic update
dissemination** for the scoreboard, so score reads are always local and
always fresh.  A player on a flaky cellular link drops out mid-game and
converges after reconnecting.

Run:  python examples/distributed_game.py
"""

from repro import obiwan
from repro.consistency import UpdateDisseminator, UpdateSubscriber
from repro.mobility import MobileNode


@obiwan.compile
class Room:
    """One tile of the game world."""

    def __init__(self, name: str = "", treasure: int = 0, nxt: "Room | None" = None):
        self.name = name
        self.treasure = treasure
        self.next = nxt

    def get_name(self) -> str:
        return self.name

    def loot(self) -> int:
        taken, self.treasure = self.treasure, 0
        return taken

    def get_treasure(self) -> int:
        return self.treasure

    def get_next(self) -> "Room | None":
        return self.next


@obiwan.compile
class Scoreboard:
    """Player → score; small, hot, shared by everyone."""

    def __init__(self):
        self.scores: dict[str, int] = {}

    def award(self, player: str, points: int) -> None:
        self.scores[player] = self.scores.get(player, 0) + points

    def score_of(self, player: str) -> int:
        return self.scores.get(player, 0)

    def leaderboard(self) -> list[tuple[str, int]]:
        return sorted(self.scores.items(), key=lambda kv: -kv[1])


def main() -> None:
    world = obiwan.World.loopback(link=obiwan.WIRELESS_WLAN)
    server = world.create_site("game-server")
    alice_site = world.create_site("alice-laptop")
    bob_site = world.create_site("bob-phone")

    # Build a 12-room dungeon and a scoreboard.
    head = None
    for index in range(11, -1, -1):
        head = Room(name=f"room-{index}", treasure=index * 10, nxt=head)
    scoreboard = Scoreboard()
    server.export(head, name="dungeon")
    server.export(scoreboard, name="scoreboard")
    UpdateDisseminator.export_on(server)

    # Players fetch the dungeon as one cluster (cheap bulk world load)
    # and subscribe to scoreboard pushes.
    alice_dungeon = alice_site.replicate("dungeon", mode=obiwan.Cluster())
    alice_board = alice_site.replicate("scoreboard")
    alice_updates = UpdateSubscriber(alice_site)
    alice_updates.track(alice_board)

    bob = MobileNode(bob_site)
    bob_board = bob.hoard("scoreboard")
    bob_updates = UpdateSubscriber(bob_site)
    bob_updates.track(bob_board)

    # --- play -------------------------------------------------------------
    # Alice loots the first three rooms on her replica, awards herself the
    # points locally, and puts the scoreboard back — the put is what bumps
    # the master version and triggers dissemination.  (An RMI-stub write
    # would mutate the master silently: versioned change detection only
    # observes put/touch.)
    room, looted = alice_dungeon, 0
    for _ in range(3):
        looted += room.loot()
        room = room.get_next()
    alice_board.award("alice", looted)
    alice_site.put_back(alice_board)
    print(f"alice looted {looted}; her local board shows", alice_board.leaderboard())
    print("bob's board converged too:", bob_board.leaderboard())

    # --- bob drops off the network -----------------------------------------
    bob.go_offline(voluntary=False)
    alice_board.award("alice", 25)  # play continues without bob
    alice_site.put_back(alice_board)
    print("while bob is offline, his stale board shows:", bob_board.leaderboard())

    # Bob still *reads* scores (paper: continue working, possibly stale).
    result = bob.call("scoreboard", "score_of", "alice")
    print(
        f"bob reads alice={result.value} "
        f"(served by {result.served_by.value}, possibly stale: {result.possibly_stale})"
    )

    # --- reconnect and converge --------------------------------------------
    bob.go_online()
    bob_site.refresh(bob_board)
    print("after reconnect, bob's board:", bob_board.leaderboard())

    stats = world.network.stats
    print(
        f"\ntraffic: {stats.total_messages} messages / {stats.total_bytes} bytes; "
        f"simulated elapsed {world.clock.now() * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
